//! Wire-batching throughput bench: how much does batching at every layer
//! (batched wire ops → corked framing → WAL group commit) buy over the
//! one-op-one-frame-one-fsync baseline?
//!
//! ```text
//! cargo run -p knactor-bench --bin wire --release          # full
//! cargo run -p knactor-bench --bin wire --release -- quick # CI variant
//! ```
//!
//! A real [`knactor_net::server::ExchangeServer`] on loopback TCP, a real
//! [`knactor_net::client::TcpClient`], and — for the fsync rows — a real
//! WAL fsynced on commit. Stores use a zero-delay durable profile (no
//! simulated apiserver latencies), so the measured cost is the genuine
//! wire + framing + fsync pipeline and nothing else.
//!
//! The matrix is batch size {1, 16, 64, 256} × fsync {off, on}. Batch 1
//! is the per-record baseline: one `create` request, one frame, one
//! fsync per record. Larger sizes send one `BatchCommit` per chunk, which
//! the server stages as one WAL group and acknowledges after a single
//! covering fsync. Emits `BENCH_wire.json`; the headline number is
//! `speedup_batch64_fsync` (acceptance floor: ≥ 3×).

use knactor_logstore::LogExchange;
use knactor_net::client::TcpClient;
use knactor_net::server::ExchangeServer;
use knactor_net::ExchangeApi;
use knactor_rbac::Subject;
use knactor_store::profile::WatchDelivery;
use knactor_store::{BatchOp, DataExchange, EngineProfile};
use knactor_types::{ObjectKey, StoreId};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

/// Durable profile with no simulated per-op delays: the bench measures
/// the real pipeline, not the apiserver's modelled latency.
fn bench_profile(dir: &std::path::Path, store: &str, fsync: bool) -> EngineProfile {
    let mut wal = dir.to_path_buf();
    wal.push(format!("{}.wal", store.replace('/', "_")));
    EngineProfile {
        name: if fsync { "wal-fsync" } else { "wal-nofsync" }.to_string(),
        wal_path: Some(wal),
        fsync,
        read_delay: Duration::ZERO,
        write_delay: Duration::ZERO,
        watch: WatchDelivery::Push,
        history_cap: knactor_store::profile::DEFAULT_HISTORY_CAP,
        watch_lag_cap: knactor_store::profile::DEFAULT_WATCH_LAG_CAP,
    }
}

/// Sum of one counter across its label sets in a scraped snapshot.
fn counter_total(snapshot: &knactor_types::metrics::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

/// Write `records` objects into a fresh store, `batch` per request.
/// Returns (records/sec, fsyncs consumed).
async fn run_config(
    server: &ExchangeServer,
    client: &TcpClient,
    data_dir: &std::path::Path,
    records: usize,
    batch: usize,
    fsync: bool,
) -> (f64, u64) {
    let store_name = format!("wire/b{batch}-{}", if fsync { "fsync" } else { "nofsync" });
    let store = StoreId::new(store_name.as_str());
    server
        .object
        .create_store(store.clone(), bench_profile(data_dir, &store_name, fsync))
        .expect("create bench store");

    let fsyncs_before = counter_total(
        &client.metrics().await.expect("scrape metrics"),
        "knactor_wal_fsyncs_total",
    );
    let start = Instant::now();
    if batch == 1 {
        // Per-record baseline: one request, one frame, one fsync each.
        for i in 0..records {
            client
                .create(
                    store.clone(),
                    ObjectKey::new(format!("k{i:06}").as_str()),
                    json!({"i": i, "payload": "0123456789abcdef"}),
                )
                .await
                .expect("create");
        }
    } else {
        for chunk_start in (0..records).step_by(batch) {
            let ops: Vec<BatchOp> = (chunk_start..(chunk_start + batch).min(records))
                .map(|i| BatchOp::Create {
                    key: ObjectKey::new(format!("k{i:06}").as_str()),
                    value: json!({"i": i, "payload": "0123456789abcdef"}),
                })
                .collect();
            let items = client
                .batch_commit(store.clone(), ops)
                .await
                .expect("batch_commit");
            for item in items {
                item.into_revision().expect("per-item commit");
            }
        }
    }
    let elapsed = start.elapsed();
    let fsyncs_after = counter_total(
        &client.metrics().await.expect("scrape metrics"),
        "knactor_wal_fsyncs_total",
    );

    // Everything acked must be readable: the batches really committed.
    let (objects, _) = client.list(store).await.expect("list");
    assert_eq!(objects.len(), records, "committed records");

    let throughput = records as f64 / elapsed.as_secs_f64();
    (throughput, fsyncs_after - fsyncs_before)
}

async fn run(records: usize) -> serde_json::Value {
    let data_dir = std::env::temp_dir().join(format!("knactor-wire-bench-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).expect("bench data dir");
    let server = ExchangeServer::bind(
        "127.0.0.1:0",
        Arc::new(DataExchange::new()),
        Arc::new(LogExchange::new()),
    )
    .await
    .expect("bind server");
    let client = TcpClient::connect(server.local_addr(), Subject::operator("wire-bench"))
        .await
        .expect("connect");

    let mut rows = Vec::new();
    let mut by_key = std::collections::BTreeMap::new();
    for fsync in [false, true] {
        for batch in BATCH_SIZES {
            let (throughput, fsyncs) =
                run_config(&server, &client, &data_dir, records, batch, fsync).await;
            eprintln!(
                "batch={batch:>3} fsync={fsync:5} -> {throughput:>10.0} rec/s ({fsyncs} fsyncs)"
            );
            by_key.insert((fsync, batch), throughput);
            rows.push(json!({
                "batch": batch,
                "fsync": fsync,
                "records": records,
                "records_per_sec": throughput,
                "fsyncs": fsyncs,
            }));
        }
    }

    let speedup = |fsync: bool, batch: usize| by_key[&(fsync, batch)] / by_key[&(fsync, 1)];
    let speedup_batch64_fsync = speedup(true, 64);

    // Server-side batching observability, scraped over the same wire.
    let snapshot = client.metrics().await.expect("scrape metrics");
    let group_records = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "knactor_wal_group_commit_records")
        .map(|h| json!({"count": h.count, "max": h.max_ns}));

    let _ = std::fs::remove_dir_all(&data_dir);

    json!({
        "description": "Wire-batching throughput bench (cargo run -p knactor-bench --bin wire --release). Real TCP server + client on loopback; each config writes the same records into a fresh WAL-backed store, batch 1 as single create requests, larger batches as one BatchCommit per chunk (one frame out, one WAL group fsync to cover the chunk). records_per_sec is sustained write throughput; speedups are vs the batch-1 row with the same fsync setting.",
        "records_per_config": records,
        "configs": rows,
        "speedup_vs_batch1": {
            "nofsync": {
                "batch16": speedup(false, 16),
                "batch64": speedup(false, 64),
                "batch256": speedup(false, 256),
            },
            "fsync": {
                "batch16": speedup(true, 16),
                "batch64": speedup(true, 64),
                "batch256": speedup(true, 256),
            },
        },
        "speedup_batch64_fsync": speedup_batch64_fsync,
        "wal_group_commit_records": group_records,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let records = if quick { 512 } else { 2048 };

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(run(records));

    let pretty = serde_json::to_string(&result).unwrap();
    println!("{pretty}");
    std::fs::write("BENCH_wire.json", format!("{pretty}\n")).expect("write BENCH_wire.json");
    eprintln!("wrote BENCH_wire.json");

    let speedup = result["speedup_batch64_fsync"].as_f64().unwrap();
    assert!(
        speedup >= 3.0,
        "batch-64 fsync speedup {speedup:.2}x below the 3x floor"
    );
}
