//! Property tests for the WAL: arbitrary event sequences round-trip
//! through append/replay, and an arbitrarily torn tail always recovers
//! to a clean prefix — recovery may discard the incomplete final record,
//! it must never error on a torn tail, lose a complete earlier record,
//! or leave the file in a state a reopen would reject.

use knactor_store::{EventKind, Wal, WatchEvent};
use knactor_types::{ObjectKey, Revision, Value};
use proptest::prelude::*;
use serde_json::json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh WAL path per proptest case (cases run concurrently within a
/// test and the same process hosts many cases).
fn tmp_wal() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "knactor-prop-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::create_dir_all(&dir);
    dir.push("wal.log");
    let _ = std::fs::remove_file(&dir);
    dir
}

fn any_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Created),
        Just(EventKind::Updated),
        Just(EventKind::Deleted),
    ]
}

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(json!(null)),
        any::<bool>().prop_map(|b| json!(b)),
        any::<i64>().prop_map(|n| json!(n)),
        // Include characters the WAL's line format must escape properly:
        // newlines inside values must not read as record boundaries.
        "[a-zA-Z0-9 \\n\"{}:,]{0,24}".prop_map(|s| json!(s)),
        (any::<i32>(), "[a-z]{0,8}").prop_map(|(n, s)| json!({"n": n, "s": s})),
    ]
}

/// An event sequence with the revision continuity the store guarantees
/// (dense, starting at 1) — the shape `Wal::recover` verifies.
fn any_events() -> impl Strategy<Value = Vec<WatchEvent>> {
    proptest::collection::vec(("[a-z0-9-]{1,10}", any_kind(), any_value()), 1..12).prop_map(
        |entries| {
            entries
                .into_iter()
                .enumerate()
                .map(|(i, (key, kind, value))| WatchEvent {
                    revision: Revision(i as u64 + 1),
                    kind,
                    key: ObjectKey::new(key),
                    value: Arc::new(value),
                })
                .collect()
        },
    )
}

fn write_wal(path: &PathBuf, events: &[WatchEvent]) {
    let wal = Wal::open(path, false).unwrap();
    for event in events {
        wal.append(event).unwrap();
    }
}

proptest! {
    /// Append then replay: every event comes back identical, in order.
    #[test]
    fn wal_roundtrips_any_event_sequence(events in any_events()) {
        let path = tmp_wal();
        write_wal(&path, &events);
        let replayed = Wal::replay(&path).unwrap();
        prop_assert_eq!(replayed, events);
        let _ = std::fs::remove_file(&path);
    }

    /// Truncate the log at *any* byte offset: recovery yields a strict
    /// prefix of the original events (all of them when the cut spares the
    /// tail), and reopening truncates the file so a second recovery sees
    /// a fully clean log.
    #[test]
    fn torn_tail_always_recovers_a_prefix(events in any_events(), cut in any::<u64>()) {
        let path = tmp_wal();
        write_wal(&path, &events);
        let full_len = std::fs::metadata(&path).unwrap().len();
        let cut = cut % (full_len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
        }

        // Recovery never errors on a torn tail...
        let recovery = Wal::recover(&path).unwrap();
        // ...returns a prefix of what was appended...
        prop_assert!(recovery.events.len() <= events.len());
        for (got, want) in recovery.events.iter().zip(&events) {
            prop_assert_eq!(got, want);
        }
        // ...loses nothing when the cut only grazed the final record...
        if cut == full_len {
            prop_assert_eq!(recovery.events.len(), events.len());
            prop_assert_eq!(recovery.torn_bytes, 0);
        }
        // ...and accounts for every byte: the valid prefix plus the torn
        // tail is exactly the file on disk.
        prop_assert_eq!(recovery.valid_len + recovery.torn_bytes, cut);

        // Reopening repairs the file in place; a second recovery is clean
        // and agrees on the events.
        let (wal, replayed) = Wal::open_recovering(&path, false).unwrap();
        drop(wal);
        prop_assert_eq!(&replayed, &recovery.events);
        let clean = Wal::recover(&path).unwrap();
        prop_assert_eq!(clean.torn_bytes, 0);
        prop_assert!(!clean.needs_terminator);
        prop_assert_eq!(clean.events, recovery.events);
        let _ = std::fs::remove_file(&path);
    }

    /// A recovered-from-torn-tail WAL accepts new appends, and the glued
    /// log replays as recovered-prefix + new events — the crash/restart
    /// write path end to end.
    #[test]
    fn recovered_wal_extends_cleanly(events in any_events(), cut in any::<u64>()) {
        let path = tmp_wal();
        write_wal(&path, &events);
        let full_len = std::fs::metadata(&path).unwrap().len();
        let cut = cut % (full_len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
        }

        let (wal, mut recovered) = Wal::open_recovering(&path, false).unwrap();
        let next = WatchEvent {
            revision: Revision(recovered.len() as u64 + 1),
            kind: EventKind::Created,
            key: ObjectKey::new("post-recovery"),
            value: Arc::new(json!({"fresh": true})),
        };
        wal.append(&next).unwrap();
        drop(wal);
        recovered.push(next);
        prop_assert_eq!(Wal::replay(&path).unwrap(), recovered);
        let _ = std::fs::remove_file(&path);
    }
}
