//! Multi-threaded stress for the sharded store engine: under real
//! parallelism (writer pools, reader pools, live watchers) the engine
//! must keep the same observable semantics as a single-mutex store —
//! strictly monotonic gapless revisions, exactly-once in-order watch
//! delivery, and OCC rejection of stale writes.

use knactor_store::ObjectStore;
use knactor_types::{Error, ObjectKey, Revision};
use serde_json::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_writers_readers_and_watchers_preserve_invariants() {
    const WRITERS: usize = 8;
    const ITERS: u64 = 200;
    const KEYS_PER_WRITER: u64 = 8;

    let store = Arc::new(ObjectStore::in_memory("stress/store"));
    store
        .create(ObjectKey::new("shared"), json!({"n": 0}))
        .unwrap();
    let mut rx = store.watch().unwrap();

    let commits = Arc::new(AtomicU64::new(1)); // the create above
    let occ_rejections = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = store.get(&ObjectKey::new("shared"));
                    let _ = store.get(&ObjectKey::new(format!("w{r}-0")));
                    let _ = store.list();
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let commits = Arc::clone(&commits);
            let occ = Arc::clone(&occ_rejections);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    // Disjoint keys: every write must succeed.
                    let key = ObjectKey::new(format!("w{w}-{}", i % KEYS_PER_WRITER));
                    if i < KEYS_PER_WRITER {
                        store.create(key, json!({"w": w, "i": i})).unwrap();
                    } else {
                        store.update(&key, json!({"w": w, "i": i}), None).unwrap();
                    }
                    commits.fetch_add(1, Ordering::Relaxed);
                    // Shared key: read-then-conditional-write races with
                    // every other writer; stale revisions must conflict,
                    // fresh ones must commit.
                    let cur = store.get(&ObjectKey::new("shared")).unwrap();
                    match store.update(
                        &ObjectKey::new("shared"),
                        json!({"n": i, "w": w}),
                        Some(cur.revision),
                    ) {
                        Ok(_) => {
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(Error::Conflict { expected, actual }) => {
                            assert!(actual > expected, "conflict must cite a newer revision");
                            occ.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Exactly one revision per successful commit, none lost or double
    // counted.
    let total = commits.load(Ordering::Relaxed);
    assert_eq!(store.revision(), Revision(total));

    // The watch stream saw every commit exactly once, in revision order,
    // with no gaps.
    let mut expect = 1u64;
    while let Ok(e) = rx.try_recv() {
        assert_eq!(e.revision, Revision(expect), "gapless in-order delivery");
        expect += 1;
    }
    assert_eq!(expect - 1, total, "every commit delivered exactly once");
}

/// Concurrent patches to one key (the integrator write pattern) lose no
/// fields: the store's internal read-merge-CAS retry absorbs races, and
/// the rare patch that still surfaces a conflict can simply be retried.
#[test]
fn concurrent_patches_merge_without_losing_fields() {
    const THREADS: usize = 4;
    const PATCHES: usize = 50;

    let store = Arc::new(ObjectStore::in_memory("stress/patch"));
    store.create(ObjectKey::new("obj"), json!({})).unwrap();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..PATCHES {
                    let patch = json!({ (format!("f{t}_{i}")): i });
                    loop {
                        match store.patch(&ObjectKey::new("obj"), &patch, false) {
                            Ok(_) => break,
                            Err(Error::Conflict { .. }) => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let obj = store.get(&ObjectKey::new("obj")).unwrap();
    for t in 0..THREADS {
        for i in 0..PATCHES {
            let field = format!("f{t}_{i}");
            assert_eq!(
                obj.value[field.as_str()],
                json!(i),
                "field {field} lost by a concurrent merge"
            );
        }
    }
}

/// The outbox drainer under a subscribe/unsubscribe storm: churner
/// threads register watches and drop them immediately while writers keep
/// committing, so the CAS-elected drainer constantly loses its election,
/// stands down mid-queue, re-checks the outbox, and prunes dead
/// subscribers. Through all of it a watcher that stays subscribed must
/// see every commit exactly once, in revision order — an event enqueued
/// during a drainer hand-off must never be stranded or delivered out of
/// order.
#[test]
fn outbox_drainer_survives_subscriber_churn() {
    const WRITERS: usize = 4;
    const ITERS: u64 = 300;
    const CHURNERS: usize = 4;

    let store = Arc::new(ObjectStore::in_memory("stress/churn"));
    // Anchor watcher: subscribed before the first commit, must see all.
    let mut anchor = store.watch().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (0..CHURNERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Subscribe at the live edge, maybe peek, then drop:
                    // the dead sender is what the drainer must prune while
                    // events are in flight.
                    if let Ok(mut rx) = store.watch_from(store.revision()) {
                        if spins.is_multiple_of(3) {
                            let _ = rx.try_recv();
                        }
                    }
                    spins += 1;
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let key = ObjectKey::new(format!("w{w}-{i}"));
                    store.create(key, json!({"w": w, "i": i})).unwrap();
                }
            })
        })
        .collect();

    // A mid-stream subscriber joining while the storm is in full swing:
    // its stream must be consecutive from wherever it joined.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let joined_at = store.revision();
    let mut mid = store
        .watch_from(joined_at)
        .expect("join point is current, never beyond history");

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }

    let total = WRITERS as u64 * ITERS;
    assert_eq!(store.revision(), Revision(total));

    // Anchor: every commit exactly once, in order, none stranded in the
    // outbox by a drainer hand-off.
    let mut expect = 1u64;
    while let Ok(e) = anchor.try_recv() {
        assert_eq!(e.revision, Revision(expect), "gapless in-order delivery");
        expect += 1;
    }
    assert_eq!(expect - 1, total, "anchor watcher missed commits");

    // Mid-stream: consecutive from its join revision through the end.
    let mut expect = joined_at.0 + 1;
    while let Ok(e) = mid.try_recv() {
        assert_eq!(
            e.revision,
            Revision(expect),
            "mid-join stream must be consecutive"
        );
        expect += 1;
    }
    assert_eq!(expect - 1, total, "mid-join watcher missed the tail");
}
