//! End-to-end observability: a real composition runs against a TCP
//! exchange while `Metrics` requests scrape the registry over the wire —
//! mid-flight and after drain — and the scraped numbers must agree with
//! ground truth (records appended, objects written, faults injected).
//!
//! The registry is process-global, so every assertion here is scoped by
//! label (test-unique store and integrator names) or computed as a delta
//! across snapshots; other tests in this binary cannot disturb them.

use knactor::net::{FaultPlan, FaultProxy, ResilientClient, RetryPolicy};
use knactor::prelude::*;
use knactor::types::metrics::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const OBS_DXG: &str = "\
Input:
  A: Obs/v1/A/a
  B: Obs/v1/B/b
DXG:
  B:
    copied: A.tag
";

fn counter<'a>(
    snap: &'a MetricsSnapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a CounterSnapshot> {
    snap.counters.iter().find(|c| {
        c.name == name
            && labels
                .iter()
                .all(|(k, v)| c.labels.iter().any(|(ck, cv)| ck == k && cv == v))
    })
}

fn counter_value(snap: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    counter(snap, name, labels).map_or(0, |c| c.value)
}

fn histogram<'a>(
    snap: &'a MetricsSnapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a HistogramSnapshot> {
    snap.histograms.iter().find(|h| {
        h.name == name
            && labels
                .iter()
                .all(|(k, v)| h.labels.iter().any(|(hk, hv)| hk == k && hv == v))
    })
}

async fn scrape(addr: std::net::SocketAddr) -> MetricsSnapshot {
    let client = TcpClient::connect(addr, Subject::operator("scraper"))
        .await
        .unwrap();
    client.metrics().await.unwrap()
}

/// A retail-shaped composition (cast edge + sync relay) deployed through
/// `Composer::apply` against a TCP exchange. Scrapes over the wire must
/// see the activity while it happens, and after drain the activation
/// counters must equal the records actually delivered — the registry is
/// a second, independent witness of zero loss.
#[tokio::test]
async fn scraped_metrics_agree_with_delivered_records() {
    const RECORDS: usize = 24;
    const OBJECTS: usize = 6;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::operator("obs"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    for s in ["obsa/state", "obsb/state"] {
        api.create_store(s.into(), ProfileSpec::Instant)
            .await
            .unwrap();
    }
    for l in ["obsev/log", "obsout/log"] {
        api.log_create_store(l.into()).await.unwrap();
    }

    let mut bindings = BTreeMap::new();
    bindings.insert("A".to_string(), CastBinding::correlated("obsa/state"));
    bindings.insert("B".to_string(), CastBinding::correlated("obsb/state"));
    let composition = Composition::new()
        .with_cast(Dxg::parse(OBS_DXG).unwrap(), bindings, CastMode::Direct)
        .with_sync(SyncConfig {
            name: "obs-relay".to_string(),
            source: StoreId::new("obsev/log"),
            dest: SyncDest::Log(StoreId::new("obsout/log")),
            query: QuerySpec {
                ops: vec![OpSpec::Rename {
                    from: "n".into(),
                    to: "m".into(),
                }],
            },
            mode: SyncMode::Stream,
            max_batch: 1,
        });
    let composer = Composer::new("obs-e2e", Arc::clone(&api));
    let report = composer.apply(composition).await.unwrap();
    assert_eq!(report.spawned, vec!["cast:B", "sync:obs-relay"]);

    // Traffic through both edges.
    for i in 0..RECORDS {
        api.log_append("obsev/log".into(), json!({"n": i}))
            .await
            .unwrap();
    }
    for i in 0..OBJECTS {
        api.create(
            "obsa/state".into(),
            format!("obs-{i}").as_str().into(),
            json!({"tag": format!("t{i}")}),
        )
        .await
        .unwrap();
    }

    // Mid-flight scrape: the wire endpoint answers while integrators are
    // actively processing, and already shows this test's stores.
    let mid = scrape(server.local_addr()).await;
    assert!(
        counter_value(&mid, "knactor_store_ops_total", &[("store", "obsa/state")]) > 0,
        "mid-flight scrape must already see store traffic"
    );

    // Barriers: every record and object delivered, then drain.
    knactor::testkit::await_log_records(&api, "obsout/log", RECORDS, Duration::from_secs(15))
        .await
        .unwrap();
    for i in 0..OBJECTS {
        knactor::testkit::await_object_state(
            &api,
            "obsb/state",
            format!("obs-{i}").as_str(),
            Duration::from_secs(15),
            |v| v["copied"] == json!(format!("t{i}")),
        )
        .await
        .unwrap();
    }
    composer.drain_all().await.unwrap();

    let snap = scrape(server.local_addr()).await;

    // Zero-loss cross-check: the sync activated exactly once per record
    // that reached the output log — counted independently by the
    // integrator's own instrumentation.
    let delivered = api.log_read("obsout/log".into(), 0).await.unwrap().len();
    assert_eq!(delivered, RECORDS);
    assert_eq!(
        counter_value(
            &snap,
            "knactor_activations_total",
            &[("integrator", "sync:obs-relay")]
        ),
        delivered as u64,
        "sync activations must equal records delivered"
    );
    let stage = histogram(
        &snap,
        "knactor_activation_stage_seconds",
        &[
            ("integrator", "sync:obs-relay"),
            ("stage", "process-record"),
        ],
    )
    .expect("per-stage histogram for the sync");
    assert_eq!(stage.count, delivered as u64);

    // The cast edge activated (watch coalescing may batch object events,
    // never skip them) and its stage histograms exist. The composer
    // names the edge's cast config `<composer>:<alias>`.
    assert!(
        counter_value(
            &snap,
            "knactor_activations_total",
            &[("integrator", "cast:obs-e2e:B")]
        ) >= 1,
        "cast edge must have recorded activations: {:?}",
        snap.counters
            .iter()
            .filter(|c| c.name == "knactor_activations_total")
            .collect::<Vec<_>>()
    );
    for stage in ["read-sources", "evaluate"] {
        assert!(
            snap.histograms.iter().any(|h| {
                h.name == "knactor_activation_stage_seconds"
                    && h.labels.iter().any(|(k, v)| k == "stage" && v == stage)
                    && h.count > 0
            }),
            "missing populated stage histogram {stage}"
        );
    }

    // Store-level counters carry the writes this test performed.
    assert!(
        counter_value(
            &snap,
            "knactor_store_ops_total",
            &[("store", "obsa/state"), ("op", "create")]
        ) >= OBJECTS as u64
    );
    assert!(
        counter_value(
            &snap,
            "knactor_log_appends_total",
            &[("store", "obsev/log")]
        ) >= RECORDS as u64
    );

    // The composer's own apply landed in its labelled histogram, and its
    // health view bundles the same snapshot for programmatic callers.
    let apply = histogram(
        &snap,
        "knactor_composer_apply_seconds",
        &[("composer", "obs-e2e")],
    )
    .expect("composer apply histogram");
    assert!(apply.count >= 1);
    let health = composer.health().await;
    assert!(health.all_running(), "edges: {:?}", health.edges);
    assert_eq!(health.edges.len(), 2);
    assert!(histogram(
        &health.metrics,
        "knactor_composer_apply_seconds",
        &[("composer", "obs-e2e")]
    )
    .is_some());

    // And the same snapshot renders as a scrape-ready exposition.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE knactor_activations_total counter"));
    assert!(prom.contains("# TYPE knactor_activation_stage_seconds histogram"));
    assert!(prom.contains("knactor_store_ops_total{op=\"create\",store=\"obsa/state\"}"));

    composer.shutdown_all().await;
    server.shutdown().await;
}

/// End-to-end self-tuning: an edge deployed in the slower Direct mode
/// over a Redis-profiled TCP exchange (modelled 250µs reads / 300µs
/// writes) carries streaming load while the tuner scrapes, scores, and —
/// live, via an ordinary minimal-diff `Composer::apply` — switches it to
/// pushdown. The switch must lose nothing, duplicate nothing, keep the
/// edge's task (reconfigure-in-place, no restart), and surface
/// `knactor_planner_replans_total` / `knactor_planner_cost` in a wire
/// scrape.
#[tokio::test]
async fn tuner_switches_edge_live_with_zero_loss_and_planner_metrics() {
    use knactor::core::tuner::{Tuner, TunerConfig, TunerPolicy};

    const TUNE_DXG: &str = "\
Input:
  A: Tune/v1/A/a
  B: Tune/v1/B/b
DXG:
  B:
    copied: A.tag
";
    const POST: usize = 40;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::operator("tune"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    // Redis-profiled stores: direct execution pays the modelled read and
    // write windows per activation; pushdown folds them into the
    // exchange-side UDF. That asymmetry is what the tuner must find.
    for s in ["tunea/state", "tuneb/state"] {
        api.create_store(s.into(), ProfileSpec::Redis)
            .await
            .unwrap();
    }

    let mut bindings = BTreeMap::new();
    bindings.insert("A".to_string(), CastBinding::correlated("tunea/state"));
    bindings.insert("B".to_string(), CastBinding::correlated("tuneb/state"));
    let composer = Arc::new(Composer::new("tune-e2e", Arc::clone(&api)));
    composer
        .apply(Composition::new().with_cast(
            Dxg::parse(TUNE_DXG).unwrap(),
            bindings,
            CastMode::Direct,
        ))
        .await
        .unwrap();
    let instance_before = composer.edge_instance("cast:B").await;

    // Independent duplicate audit: watch the target store from the
    // beginning and count post-hoc how often each key was written.
    let mut target_events = api
        .watch("tuneb/state".into(), Revision::ZERO)
        .await
        .unwrap();

    let tuner = Tuner::spawn(
        Arc::clone(&composer),
        TunerConfig {
            interval: Duration::from_millis(250),
            policy: TunerPolicy {
                hysteresis: 0.2,
                cooldown: Duration::from_secs(1),
                min_activations: 5,
            },
            shard_map: None,
            pushdown_udf: "tune-e2e-udf".to_string(),
        },
    );

    // Streaming load until the tuner re-plans (bounded): the switch must
    // happen *under* traffic, not in a quiet gap.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut written = 0usize;
    let mut switched = false;
    while std::time::Instant::now() < deadline {
        api.create(
            "tunea/state".into(),
            format!("tk-{written}").as_str().into(),
            json!({"tag": format!("t{written}")}),
        )
        .await
        .unwrap();
        written += 1;
        if written.is_multiple_of(10) {
            if let Some(applied) = composer.applied().await {
                let section = applied.cast.expect("cast section stays applied");
                if let Some(CastMode::Pushdown { udf_name }) = section.mode_overrides.get("B") {
                    assert_eq!(udf_name, "tune-e2e-udf");
                    switched = true;
                    break;
                }
            }
        }
        tokio::time::sleep(Duration::from_millis(4)).await;
    }
    assert!(switched, "tuner never re-planned the edge to pushdown");

    // The switch was a reconfigure, not a respawn.
    assert_eq!(composer.edge_instance("cast:B").await, instance_before);

    // Post-switch traffic proves the pushdown edge carries load.
    for _ in 0..POST {
        api.create(
            "tunea/state".into(),
            format!("tk-{written}").as_str().into(),
            json!({"tag": format!("t{written}")}),
        )
        .await
        .unwrap();
        written += 1;
    }

    // Barrier: last key propagated, then drain the edge.
    let last = written - 1;
    knactor::testkit::await_object_state(
        &api,
        "tuneb/state",
        format!("tk-{last}").as_str(),
        Duration::from_secs(15),
        |v| v["copied"] == json!(format!("t{last}")),
    )
    .await
    .unwrap();
    composer.drain_all().await.unwrap();

    // Zero loss: every source key landed in the target with the right
    // value, across the live re-plan.
    let audit = |v: &serde_json::Value, i: usize| v["copied"] == json!(format!("t{i}"));
    for i in 0..written {
        knactor::testkit::await_object_state(
            &api,
            "tuneb/state",
            format!("tk-{i}").as_str(),
            Duration::from_secs(15),
            |v| audit(v, i),
        )
        .await
        .unwrap_or_else(|e| panic!("key tk-{i} lost or wrong across re-plan: {e}"));
    }
    let (objects, _) = api.list("tuneb/state".into()).await.unwrap();
    assert_eq!(
        objects.len(),
        written,
        "target must hold exactly the source keys"
    );

    // Zero duplicates: the watch saw each key mutated exactly once.
    tokio::time::sleep(Duration::from_millis(200)).await;
    let mut per_key: BTreeMap<String, usize> = BTreeMap::new();
    while let Ok(event) = target_events.try_recv() {
        if !event.is_delete() {
            *per_key.entry(event.key.as_str().to_string()).or_default() += 1;
        }
    }
    assert_eq!(
        per_key.len(),
        written,
        "every key must have produced an event"
    );
    for (key, n) in &per_key {
        assert_eq!(*n, 1, "key {key} written {n} times across the re-plan");
    }

    // Planner metrics surface in a wire scrape.
    let snap = scrape(server.local_addr()).await;
    assert!(
        counter_value(
            &snap,
            "knactor_planner_replans_total",
            &[("composer", "tune-e2e")]
        ) >= 1,
        "re-plan must be counted"
    );
    assert!(
        snap.gauges.iter().any(|g| {
            g.name == "knactor_planner_cost"
                && g.labels
                    .iter()
                    .any(|(k, v)| k == "composer" && v == "tune-e2e")
        }),
        "per-candidate cost gauges must be scrapeable"
    );
    let pd_stage = histogram(
        &snap,
        "knactor_activation_stage_seconds",
        &[
            ("integrator", "cast:tune-e2e:B"),
            ("stage", "pushdown-execute"),
        ],
    )
    .expect("switched edge must have recorded pushdown stages");
    assert!(pd_stage.count > 0);

    tuner.shutdown().await;
    composer.shutdown_all().await;
    server.shutdown().await;
}

/// Injected wire faults are visible in the registry: every drop the
/// proxy performs shows up in `knactor_fault_injections_total`, and the
/// client's recovery shows up as retries — while scrapes themselves ride
/// the same flaky wire and still succeed.
#[tokio::test]
async fn fault_injections_and_retries_surface_in_metrics() {
    const WRITES: u64 = 30;
    let seed = 0x0B5E_EE01;

    // Delta baseline: fault/retry counters are process-global and other
    // tests in this binary may retry too, so assert on growth.
    let before = knactor::core::metrics::global().snapshot();
    let injected_before: u64 = before
        .counters
        .iter()
        .filter(|c| c.name == "knactor_fault_injections_total")
        .map(|c| c.value)
        .sum();
    let retries_before = counter_value(&before, "knactor_client_retries_total", &[]);

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let proxy = FaultProxy::spawn(
        server.local_addr(),
        FaultPlan {
            drop_frame: 0.25,
            ..FaultPlan::none(seed)
        },
    )
    .await
    .unwrap();
    let client = ResilientClient::connect(
        proxy.local_addr(),
        Subject::integrator("obs-chaos"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    api.create_store("obschaos/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for i in 0..WRITES {
        api.create(
            "obschaos/state".into(),
            format!("k-{i}").as_str().into(),
            json!({"n": i}),
        )
        .await
        .unwrap();
    }

    // Scrape through the same flaky proxy: observability must survive
    // the chaos it is reporting on.
    let snap = api.metrics().await.unwrap();
    let dropped = proxy
        .stats()
        .frames_dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(dropped > 0, "the plan must actually have dropped frames");
    let injected_after: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "knactor_fault_injections_total")
        .map(|c| c.value)
        .sum();
    assert!(
        injected_after >= injected_before + dropped,
        "registry saw {injected_after} injections (baseline {injected_before}), proxy dropped {dropped}"
    );
    assert!(
        counter_value(&snap, "knactor_fault_injections_total", &[("kind", "drop")]) >= dropped,
        "drops must be attributed to kind=\"drop\""
    );
    let retries_after = counter_value(&snap, "knactor_client_retries_total", &[]);
    assert!(
        retries_after > retries_before,
        "dropped requests must surface as client retries"
    );

    // The writes themselves still all landed, exactly once.
    let audit = TcpClient::connect(server.local_addr(), Subject::operator("audit"))
        .await
        .unwrap();
    let (objects, revision) = audit.list("obschaos/state".into()).await.unwrap();
    assert_eq!(objects.len() as u64, WRITES);
    assert_eq!(revision, Revision(WRITES));

    proxy.shutdown();
    server.shutdown().await;
}

/// The replication metrics surface in a scrape and agree with ground
/// truth: acks flow (`knactor_repl_acks_total`), the lag gauge exists
/// for the replicated store (`knactor_repl_lag_records`), and a
/// promotion bumps `knactor_failover_total`. Uses a test-unique store
/// label plus delta baselines — the registry is process-global.
#[tokio::test]
async fn replication_metrics_surface_in_scrape() {
    use knactor::net::{ReplicatedExchange, RetryPolicy};

    const WRITES: u64 = 25;
    let store = "obsrepl/state";

    let before = knactor::types::metrics::global().snapshot();
    let failovers_before = counter_value(&before, "knactor_failover_total", &[]);

    let cluster = ReplicatedExchange::launch(1).await.unwrap();
    let router = cluster.router(RetryPolicy::fast(7)).await.unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(router);
    api.create_store(store.into(), ProfileSpec::Replicated { acks: 1 })
        .await
        .unwrap();
    for i in 0..WRITES {
        api.create(
            store.into(),
            ObjectKey::new(format!("m-{i}")),
            json!({"i": i}),
        )
        .await
        .unwrap();
    }

    // Scrape the leader over the wire.
    let snap = scrape(cluster.node(0).addr()).await;
    let acks = counter_value(&snap, "knactor_repl_acks_total", &[("store", store)]);
    assert!(
        acks >= WRITES,
        "every acked write needs at least one follower ack; scraped {acks} < {WRITES}"
    );
    let lag = snap
        .gauges
        .iter()
        .find(|g| {
            g.name == "knactor_repl_lag_records"
                && g.labels.iter().any(|(k, v)| k == "store" && v == store)
        })
        .expect("lag gauge must be registered for the replicated store");
    assert!(
        lag.value >= 0,
        "replication lag cannot be negative, scraped {}",
        lag.value
    );

    // A promotion is a failover: the counter must move.
    let follower = TcpClient::connect(cluster.node(1).addr(), Subject::operator("obs"))
        .await
        .unwrap();
    follower.repl_promote(1).await.unwrap();
    let after = scrape(cluster.node(1).addr()).await;
    let failovers_after = counter_value(&after, "knactor_failover_total", &[]);
    assert!(
        failovers_after > failovers_before,
        "promotion must bump knactor_failover_total ({failovers_before} -> {failovers_after})"
    );

    cluster.shutdown().await;
}
