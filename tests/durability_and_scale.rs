//! Cross-crate integration: durability (WAL recovery through the whole
//! stack) and scale (many concurrent exchanges).

use knactor::apps::retail::knactor_app::{self, RetailOptions};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

#[tokio::test]
async fn durable_store_survives_restart_mid_flow() {
    let dir = std::env::temp_dir().join(format!("knactor-it-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: write orders into a durable store, then "crash".
    {
        let exchange = DataExchange::new();
        let store = exchange
            .create_store(
                "checkout/state",
                EngineProfile::apiserver(&dir, "checkout/state"),
            )
            .unwrap();
        for i in 0..5 {
            store
                .create(
                    ObjectKey::new(format!("o{i}")),
                    sample_order(100.0 + i as f64),
                )
                .unwrap();
        }
        store
            .patch(
                &ObjectKey::new("o0"),
                &json!({"status": "checked-out"}),
                false,
            )
            .unwrap();
        // Dropped here — simulating a process crash after fsync'd commits.
    }

    // Phase 2: a new exchange process recovers everything from the WAL.
    let exchange = DataExchange::new();
    let store = exchange
        .create_store(
            "checkout/state",
            EngineProfile::apiserver(&dir, "checkout/state"),
        )
        .unwrap();
    assert_eq!(store.len(), 5);
    assert_eq!(
        store.get(&ObjectKey::new("o0")).unwrap().value["status"],
        json!("checked-out")
    );
    // Revision continuity: new writes continue the sequence.
    let rev_before = store.revision();
    store
        .create(ObjectKey::new("post-crash"), json!({}))
        .unwrap();
    assert_eq!(store.revision(), rev_before.next());

    let _ = std::fs::remove_dir_all(&dir);
}

#[tokio::test]
async fn fifty_concurrent_orders_all_complete() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = Arc::new(
        knactor_app::deploy(Arc::clone(&api), RetailOptions::default())
            .await
            .unwrap(),
    );

    let mut tasks = Vec::new();
    for i in 0..50 {
        let app = Arc::clone(&app);
        tasks.push(tokio::spawn(async move {
            let cost = if i % 2 == 0 { 1500.0 } else { 60.0 };
            app.place_order(
                &format!("bulk-{i}"),
                sample_order(cost),
                Duration::from_secs(30),
            )
            .await
            .unwrap()
        }));
    }
    for (i, t) in tasks.into_iter().enumerate() {
        let done = t.await.unwrap();
        assert_eq!(done["order"]["paymentID"], json!(format!("pay-bulk-{i}")));
    }

    // Every shipment picked the right method for its price.
    for i in 0..50 {
        let shipment = api
            .get("shipping/state".into(), format!("bulk-{i}").as_str().into())
            .await
            .unwrap();
        let expected = if i % 2 == 0 { "air" } else { "ground" };
        assert_eq!(shipment.value["method"], json!(expected), "order bulk-{i}");
    }

    Arc::try_unwrap(app)
        .ok()
        .expect("sole owner")
        .shutdown()
        .await;
}

#[tokio::test]
async fn retention_cleans_consumed_orders() {
    // State retention (§3.3): orders fully processed by their consumers
    // are garbage-collected under RefCounted retention.
    let (object, _log, client) = knactor::net::loopback::in_process(Subject::operator("retention"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    api.create_store("orders/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    let store = object.store(&StoreId::new("orders/state")).unwrap();
    store.set_retention(RetentionPolicy::RefCounted);

    api.create("orders/state".into(), "done".into(), json!({"v": 1}))
        .await
        .unwrap();
    api.register_consumer("orders/state".into(), "done".into(), "archiver".into())
        .await
        .unwrap();
    let collected = api
        .mark_processed("orders/state".into(), "done".into(), "archiver".into())
        .await
        .unwrap();
    assert_eq!(collected, vec![ObjectKey::new("done")]);
    assert!(api.get("orders/state".into(), "done".into()).await.is_err());
}
