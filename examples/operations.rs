//! Operational features beyond the happy path: multi-store transactions,
//! state retention with garbage collection, and exchange-level tracing.
//!
//! ```text
//! cargo run --example operations
//! ```

use knactor::prelude::*;
use knactor::store::TxOp;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() -> Result<()> {
    let (object, _log, client) = knactor::net::loopback::in_process(Subject::operator("ops"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    api.create_store("orders/state".into(), ProfileSpec::Instant)
        .await?;
    api.create_store("ledger/state".into(), ProfileSpec::Instant)
        .await?;

    // ---- transactions -----------------------------------------------------
    println!("== transactions ==");
    let rev = api
        .create("orders/state".into(), "o1".into(), json!({"total": 99.0}))
        .await?;
    // Atomically mark the order settled AND write the ledger entry.
    api.transact(vec![
        TxOp {
            store: "orders/state".into(),
            key: "o1".into(),
            patch: json!({"settled": true}),
            upsert: false,
            expected: Some(rev),
        },
        TxOp {
            store: "ledger/state".into(),
            key: "entry-o1".into(),
            patch: json!({"order": "o1", "amount": 99.0}),
            upsert: true,
            expected: None,
        },
    ])
    .await?;
    println!("  order + ledger committed atomically");

    // A stale precondition aborts both writes.
    let stale = api
        .transact(vec![
            TxOp {
                store: "orders/state".into(),
                key: "o1".into(),
                patch: json!({"settled": false}),
                upsert: false,
                expected: Some(rev), // stale: the tx above bumped it
            },
            TxOp {
                store: "ledger/state".into(),
                key: "entry-o1-dup".into(),
                patch: json!({}),
                upsert: true,
                expected: None,
            },
        ])
        .await;
    println!("  stale transaction refused: {}", stale.unwrap_err());
    assert!(api
        .get("ledger/state".into(), "entry-o1-dup".into())
        .await
        .is_err());

    // ---- retention ---------------------------------------------------------
    println!("\n== state retention ==");
    let store = object.store(&"orders/state".into())?;
    store.set_retention(RetentionPolicy::RefCounted);
    api.create("orders/state".into(), "o2".into(), json!({"total": 5.0}))
        .await?;
    api.register_consumer("orders/state".into(), "o2".into(), "archiver".into())
        .await?;
    api.register_consumer("orders/state".into(), "o2".into(), "billing".into())
        .await?;
    api.mark_processed("orders/state".into(), "o2".into(), "archiver".into())
        .await?;
    println!(
        "  after archiver: o2 still present ({} objects)",
        store.len()
    );
    let collected = api
        .mark_processed("orders/state".into(), "o2".into(), "billing".into())
        .await?;
    println!(
        "  after billing:  collected {:?} ({} objects left)",
        collected,
        store.len()
    );

    // ---- telemetry -----------------------------------------------------------
    println!("\n== exchange tracing ==");
    let traces = TraceCollector::new();
    let dxg = Dxg::parse(
        "Input:\n  O: g/v/Orders/orders\n  L: g/v/Ledger/ledger\nDXG:\n  L:\n    copyOfTotal: O.total\n",
    )?;
    let mut bindings = std::collections::BTreeMap::new();
    bindings.insert("O".to_string(), CastBinding::correlated("orders/state"));
    bindings.insert("L".to_string(), CastBinding::correlated("ledger/state"));
    let cast = Cast::new(Arc::clone(&api)).with_traces(traces.clone());
    cast.activate_once(
        &CastConfig {
            name: "ops".into(),
            dxg,
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        },
        &"o1".into(),
    )
    .await?;
    for span in traces.trace("o1") {
        println!(
            "  [{}] {:<14} {:?}",
            span.component, span.stage, span.duration
        );
    }

    // ---- graceful shutdown under supervision ----------------------------------
    println!("\n== supervised runtime ==");
    let runtime = Runtime::new();
    runtime
        .deploy_pre_externalized(
            Knactor::builder("ledger")
                .object_store("state")
                .reconciler(FnReconciler::new(|_ctx: ReconcilerCtx, _e| async move {
                    Ok(())
                }))
                .build(),
            Arc::clone(&api),
        )
        .await?;
    println!("  deployed: {:?}", runtime.task_names());
    tokio::time::sleep(Duration::from_millis(20)).await;
    runtime.shutdown().await;
    println!("  shut down cleanly");
    Ok(())
}
