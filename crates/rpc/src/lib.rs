//! # knactor-rpc
//!
//! The **API-centric baseline**: the composition mechanisms the paper
//! compares against (Fig. 1a).
//!
//! * [`rpc`] — a miniature gRPC-style framework: services register
//!   `Service/Method` handlers; clients make synchronous request/response
//!   calls over the same framed TCP transport the exchanges use (so the
//!   Table 2 comparison isolates the *composition mechanism*, not the
//!   socket layer).
//! * [`pubsub`] — a miniature message broker (EMQX stand-in): topics,
//!   publish, subscribe. The smart-home baseline composes House, Motion,
//!   and Lamp through it.
//!
//! The per-service **stub modules** that a Protobuf toolchain would
//! generate live with the applications (`knactor-apps`), because their
//! size and churn is exactly what Table 1 measures.

pub mod pubsub;
pub mod rpc;

pub use pubsub::Broker;
pub use rpc::{RpcClient, RpcServer};
