//! Property-based tests for the foundational types.

use knactor_types::{value, FieldPath};
use proptest::prelude::*;
use serde_json::json;

/// Strategy for path strings made of simple identifier fields and indices.
fn path_strategy() -> impl Strategy<Value = FieldPath> {
    let seg = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(knactor_types::path::Segment::Field),
        (0usize..8).prop_map(knactor_types::path::Segment::Index),
    ];
    proptest::collection::vec(seg, 0..6).prop_map(|mut segments| {
        // A printable path cannot *start* with a field after an index-only
        // prefix issue; any sequence is representable, but a leading index
        // renders as `[i]` which parses back fine, so keep as-is. However
        // two adjacent Fields render with a '.' separator only when not
        // first — all sequences round-trip.
        if let Some(knactor_types::path::Segment::Index(_)) = segments.first() {
            // Leading index is fine: "[3].a" round-trips.
        }
        segments.dedup_by(|_, _| false);
        FieldPath { segments }
    })
}

/// Strategy for small JSON values.
fn value_strategy() -> impl Strategy<Value = serde_json::Value> {
    let leaf = prop_oneof![
        Just(json!(null)),
        any::<bool>().prop_map(|b| json!(b)),
        any::<i32>().prop_map(|n| json!(n)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| json!(s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(serde_json::Value::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4)
                .prop_map(|m| { serde_json::Value::Object(m.into_iter().collect()) }),
        ]
    })
}

proptest! {
    /// parse(display(p)) == p for all machine-generated paths.
    #[test]
    fn path_display_parse_roundtrip(p in path_strategy()) {
        let rendered = p.to_string();
        let parsed = FieldPath::parse(&rendered).unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// After a successful set, get returns exactly what was written.
    #[test]
    fn set_then_get(mut base in value_strategy(), p in path_strategy(), v in value_strategy()) {
        if value::set_path(&mut base, &p, v.clone()).is_ok() {
            prop_assert_eq!(value::get_path(&base, &p), Some(&v));
        }
    }

    /// Merging a value into itself is idempotent.
    #[test]
    fn merge_idempotent(v in value_strategy()) {
        let mut once = v.clone();
        value::merge(&mut once, &v);
        prop_assert_eq!(&once, &v);
    }

    /// Merge with an empty object patch is identity on objects.
    #[test]
    fn merge_empty_patch_identity(v in value_strategy()) {
        prop_assume!(v.is_object());
        let mut merged = v.clone();
        value::merge(&mut merged, &json!({}));
        prop_assert_eq!(merged, v);
    }

    /// Every leaf path reported by leaf_paths resolves via get_path.
    #[test]
    fn leaf_paths_resolve(v in value_strategy()) {
        for p in value::leaf_paths(&v) {
            prop_assert!(value::get_path(&v, &p).is_some(), "path {} must resolve", p);
        }
    }

    /// is_prefix_of is reflexive and antisymmetric-on-length.
    #[test]
    fn prefix_laws(a in path_strategy(), b in path_strategy()) {
        prop_assert!(a.is_prefix_of(&a));
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(a, b);
        }
    }
}
