//! The online-retail case study (Fig. 3b, Fig. 5, Fig. 6), end to end.
//!
//! ```text
//! cargo run --example online_retail
//! ```
//!
//! Deploys the 11-knactor retail app, places two orders (one above and
//! one below the air-shipping threshold), shows the state that flowed
//! through the exchange, then **reconfigures the integrator at run time**
//! (the T2 task of Table 1) and demonstrates the new policy — zero
//! service rebuilds.

use knactor::apps::retail::knactor_app::{self, retail_dxg, RetailOptions};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() -> Result<()> {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    println!("deploying the retail app (11 knactors + 1 Cast integrator)...");
    let app = knactor_app::deploy(
        Arc::clone(&api),
        RetailOptions {
            shipment_processing: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .await?;

    // Order 1: expensive → the DXG's conditional policy picks air.
    let done = app
        .place_order("order-1", sample_order(1500.0), Duration::from_secs(10))
        .await?;
    let shipment = api.get("shipping/state".into(), "order-1".into()).await?;
    println!("\norder-1 (cost 1500):");
    println!("  order.shippingCost = {}", done["order"]["shippingCost"]);
    println!("  order.paymentID    = {}", done["order"]["paymentID"]);
    println!("  order.trackingID   = {}", done["order"]["trackingID"]);
    println!(
        "  shipment.method    = {} (cost > 1000 -> air)",
        shipment.value["method"]
    );

    // Order 2: cheap → ground.
    app.place_order("order-2", sample_order(60.0), Duration::from_secs(10))
        .await?;
    let shipment = api.get("shipping/state".into(), "order-2".into()).await?;
    println!("\norder-2 (cost 60):");
    println!(
        "  shipment.method    = {} (cost <= 1000 -> ground)",
        shipment.value["method"]
    );

    // Run-time reconfiguration: raise the air threshold to 2000 (task
    // T2). One integrator call; no knactor is touched.
    println!("\nreconfiguring the integrator: air threshold 1000 -> 2000 ...");
    let new_spec = std::fs::read_to_string(knactor::apps::crate_file("assets/retail_dxg.yaml"))?
        .replace("C.order.cost > 1000", "C.order.cost > 2000");
    let report = app.apply_dxg(Dxg::parse(&new_spec)?).await?;
    println!(
        "  composer diff: {} reconfigured, {} spawned, {} stopped, {} untouched",
        report.reconfigured.len(),
        report.spawned.len(),
        report.stopped.len(),
        report.untouched.len()
    );

    app.place_order("order-3", sample_order(1500.0), Duration::from_secs(10))
        .await?;
    let shipment = api.get("shipping/state".into(), "order-3".into()).await?;
    println!("order-3 (cost 1500, new policy):");
    println!(
        "  shipment.method    = {} (1500 <= 2000 -> ground now)",
        shipment.value["method"]
    );
    assert_eq!(shipment.value["method"], serde_json::json!("ground"));

    // For the curious: the original DXG, statically analyzed.
    let dxg = retail_dxg()?;
    let analysis = knactor::dxg::analyze::analyze(&dxg);
    println!(
        "\nDXG: {} assignments, analysis findings: {}, plan: {} write steps",
        dxg.assignments.len(),
        analysis.findings.len(),
        Plan::build(&dxg)?.write_ops()
    );

    app.shutdown().await;
    println!("done");
    Ok(())
}
