//! Property tests for the expression language.

use knactor_expr::{eval, parse_expr, Env, FnRegistry};
use proptest::prelude::*;
use serde_json::json;

/// Generate small random expression *sources* from a grammar, so the tests
/// exercise the parser and printer together.
fn expr_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..1000u32).prop_map(|n| n.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("\"s\"".to_string()),
        Just("true".to_string()),
        Just("null".to_string()),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} == {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, c, b)| format!("({a} if {c} else {b})")),
            inner.clone().prop_map(|a| format!("(not {a})")),
            inner.clone().prop_map(|a| format!("[{a} for v in xs]")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("[{a}, {b}]")),
        ]
    })
}

fn env() -> Env {
    let mut e = Env::new();
    e.bind("x", json!(3.0));
    e.bind("y", json!("hello"));
    e.bind("xs", json!([1.0, 2.0, 3.0]));
    e
}

proptest! {
    /// Parsing never panics on arbitrary printable input.
    #[test]
    fn parse_total(src in "[ -~]{0,80}") {
        let _ = parse_expr(&src);
    }

    /// parse ∘ print ∘ parse is a fixpoint: the printed form of a parsed
    /// expression re-parses to the identical AST.
    #[test]
    fn print_parse_fixpoint(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let printed = ast.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("printed form '{printed}' failed: {e}"));
            prop_assert_eq!(reparsed, ast);
        }
    }

    /// Evaluation is deterministic: two evaluations agree (or both fail).
    #[test]
    fn eval_deterministic(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let e = env();
            let a = eval(&ast, &e, &fns);
            let b = eval(&ast, &e, &fns);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (eval(&ast, &e, &fns), eval(&ast, &e, &fns)) {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Evaluation never panics, whatever expression the grammar produced.
    #[test]
    fn eval_total(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let _ = eval(&ast, &env(), &fns);
        }
    }

    /// free_roots of a generated expression only ever mentions the
    /// identifiers the grammar can produce.
    #[test]
    fn free_roots_sound(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            for root in ast.free_roots() {
                prop_assert!(
                    ["x", "y", "xs", "v"].contains(&root.as_str()),
                    "unexpected root {root}"
                );
                // "v" is bound by comprehensions; it may only appear free
                // when used as a comprehension *source*, which the grammar
                // never generates.
                prop_assert_ne!(root, "v");
            }
        }
    }

    /// Comparisons always yield booleans when they succeed.
    #[test]
    fn comparisons_yield_bool(a in -100i32..100, b in -100i32..100) {
        let fns = FnRegistry::standard();
        let e = Env::new();
        for op in ["<", "<=", ">", ">=", "==", "!="] {
            let src = format!("{a} {op} {b}");
            let v = eval(&parse_expr(&src).unwrap(), &e, &fns).unwrap();
            prop_assert!(v.is_boolean(), "{src} -> {v}");
        }
    }

    /// Arithmetic on integers matches f64 arithmetic.
    #[test]
    fn arithmetic_matches_f64(a in -1000i32..1000, b in -1000i32..1000) {
        let fns = FnRegistry::standard();
        let e = Env::new();
        let v = eval(&parse_expr(&format!("{a} + {b} * 2")).unwrap(), &e, &fns).unwrap();
        prop_assert_eq!(v, json!(a as f64 + b as f64 * 2.0));
    }
}

proptest! {
    /// Constant folding preserves semantics exactly: folded and original
    /// expressions agree on the success value, and on whether evaluation
    /// errors at all (erroring sub-trees are never folded away).
    #[test]
    fn fold_preserves_semantics(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let folded = knactor_expr::fold_constants(&ast, &fns);
            let e = env();
            let a = eval(&ast, &e, &fns);
            let b = eval(&folded, &e, &fns);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "fold changed value of '{}'", src),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "fold changed outcome of '{}': {:?} vs {:?}", src, a, b),
            }
        }
    }

    /// Folding is idempotent.
    #[test]
    fn fold_idempotent(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let once = knactor_expr::fold_constants(&ast, &fns);
            let twice = knactor_expr::fold_constants(&once, &fns);
            prop_assert_eq!(once, twice);
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded well-typed generator (splitmix64, same style as net's
// prop_proto.rs): unlike `expr_src()` above, which explores arbitrary —
// often ill-typed — shapes, this one only builds expressions whose
// conditionals pick between same-typed arms and whose comprehensions map
// numeric bodies over a numeric list, so evaluation is expected to
// *succeed*, not merely not panic.
// ---------------------------------------------------------------------------

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A numeric-valued expression over `x` (number), `n` (number), and the
/// comprehension variable `v` when `in_comprehension` is set.
fn gen_num(rng: &mut SplitMix, depth: u32, in_comprehension: bool) -> String {
    if depth == 0 {
        return match rng.below(if in_comprehension { 4 } else { 3 }) {
            0 => rng.below(100).to_string(),
            1 => "x".to_string(),
            2 => "n".to_string(),
            _ => "v".to_string(),
        };
    }
    match rng.below(4) {
        0 => format!(
            "({} + {})",
            gen_num(rng, depth - 1, in_comprehension),
            gen_num(rng, depth - 1, in_comprehension)
        ),
        1 => format!(
            "({} * {})",
            gen_num(rng, depth - 1, in_comprehension),
            gen_num(rng, depth - 1, in_comprehension)
        ),
        // The headline shape: X if C else Y with numeric arms.
        2 => format!(
            "({} if {} else {})",
            gen_num(rng, depth - 1, in_comprehension),
            gen_bool(rng, depth - 1, in_comprehension),
            gen_num(rng, depth - 1, in_comprehension)
        ),
        _ => gen_num(rng, depth - 1, in_comprehension),
    }
}

/// A boolean-valued expression (comparisons of numerics, and/not).
fn gen_bool(rng: &mut SplitMix, depth: u32, in_comprehension: bool) -> String {
    if depth == 0 {
        return if rng.below(2) == 0 { "true" } else { "false" }.to_string();
    }
    match rng.below(4) {
        0 => format!(
            "({} < {})",
            gen_num(rng, depth - 1, in_comprehension),
            gen_num(rng, depth - 1, in_comprehension)
        ),
        1 => format!(
            "({} == {})",
            gen_num(rng, depth - 1, in_comprehension),
            gen_num(rng, depth - 1, in_comprehension)
        ),
        2 => format!(
            "({} and {})",
            gen_bool(rng, depth - 1, in_comprehension),
            gen_bool(rng, depth - 1, in_comprehension)
        ),
        _ => format!("(not {})", gen_bool(rng, depth - 1, in_comprehension)),
    }
}

/// Top-level shape: either a numeric conditional tree or a comprehension
/// mapping a numeric body over `xs`.
fn gen_well_typed(rng: &mut SplitMix, depth: u32) -> String {
    match rng.below(3) {
        0 => gen_num(rng, depth, false),
        1 => format!("[{} for v in xs]", gen_num(rng, depth, true)),
        _ => format!(
            "([{} for v in xs] if {} else [{} for v in xs])",
            gen_num(rng, depth.saturating_sub(1), true),
            gen_bool(rng, depth.saturating_sub(1), false),
            gen_num(rng, depth.saturating_sub(1), true)
        ),
    }
}

/// Conditionals and comprehensions over well-typed inputs: parse →
/// print → parse round-trips, and evaluation both never panics *and*
/// actually succeeds (the generator only emits type-correct programs).
#[test]
fn seeded_well_typed_conditionals_and_comprehensions() {
    let fns = FnRegistry::standard();
    let mut e = Env::new();
    e.bind("x", json!(3.0));
    e.bind("n", json!(7.0));
    e.bind("xs", json!([1.0, 2.0, 3.0, 4.0]));

    let mut rng = SplitMix(0x6B6E_6163_746F_7221);
    for case in 0..2000u32 {
        let depth = 1 + (case % 4);
        let src = gen_well_typed(&mut rng, depth);
        let ast = parse_expr(&src)
            .unwrap_or_else(|err| panic!("case {case}: generated '{src}' failed to parse: {err}"));

        // Round-trip: the printed form re-parses to the identical AST.
        let printed = ast.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("case {case}: printed '{printed}' failed: {err}"));
        assert_eq!(reparsed, ast, "case {case}: '{src}' → '{printed}'");

        // Well-typed inputs: evaluation succeeds and is deterministic.
        let a = eval(&ast, &e, &fns)
            .unwrap_or_else(|err| panic!("case {case}: eval of '{src}' errored: {err}"));
        let b = eval(&ast, &e, &fns).unwrap();
        assert_eq!(a, b, "case {case}: nondeterministic eval of '{src}'");

        // Comprehensions over a 4-element list yield 4 elements.
        if src.starts_with('[') {
            assert_eq!(
                a.as_array().map(Vec::len),
                Some(4),
                "case {case}: '{src}' -> {a}"
            );
        }
    }
}
