//! The wire protocol.
//!
//! Every frame carries one serde-JSON message. The client opens with a
//! [`Hello`] declaring its subject; after that, frames from the client are
//! [`RequestEnvelope`]s and frames from the server are [`ServerMsg`]s —
//! either a reply correlated by request id, or a pushed watch/tail event
//! correlated by subscription id.
//!
//! Authentication is out of scope (as in the paper's prototype); the
//! declared subject is trusted. The interesting control question —
//! *authorization* over states — is enforced by the exchange's RBAC.

use knactor_logstore::{AggFn, LogRecord, Query};
use knactor_store::udf::UdfAssignment;
use knactor_store::{
    BatchOp, EngineProfile, ItemResult, PutItem, StoredObject, TxOp, UdfBinding, WatchEvent,
};
use knactor_types::{Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use serde::{Deserialize, Serialize};

/// Connection opener: who is this client?
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Hello {
    /// Rendered subject, e.g. `integrator:cast` (see
    /// [`knactor_rbac::Subject`]'s `Display`).
    pub subject_kind: String,
    pub subject_name: String,
}

/// A client request with its correlation id.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RequestEnvelope {
    pub id: u64,
    pub body: Request,
}

/// A serializable engine profile (the subset a remote client may select).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum ProfileSpec {
    Instant,
    Redis,
    /// Durable engine; the WAL lives under the server's data directory.
    Apiserver,
    /// Durable with zero modelled latency: fsync WAL under the server's
    /// data directory, push watches, no simulated op delays.
    Durable,
    /// `Durable` plus a replication ack quorum: a write acknowledges only
    /// after `acks` followers have durably staged it. On a follower node
    /// the quorum wait is passive until promotion, so one spec can be
    /// broadcast to every member of a replica set.
    Replicated {
        acks: usize,
    },
    /// `Apiserver` plus a replication ack quorum: the paper-modelled
    /// engine (fsync WAL, simulated per-op latencies) whose writes also
    /// wait for `acks` followers. Use where the modelled per-op cost is
    /// the per-node serial resource replicas must overlap — the bench's
    /// replica-read sweep measures scaling on this engine for the same
    /// reason the shard sweep does.
    ReplicatedApiserver {
        acks: usize,
    },
}

impl ProfileSpec {
    /// Materialize on the server, rooting WALs under `data_dir`.
    pub fn materialize(&self, data_dir: &std::path::Path, store: &StoreId) -> EngineProfile {
        match self {
            ProfileSpec::Instant => EngineProfile::instant(),
            ProfileSpec::Redis => EngineProfile::redis(),
            ProfileSpec::Apiserver => EngineProfile::apiserver(data_dir, store.as_str()),
            ProfileSpec::Durable => EngineProfile::durable(data_dir, store.as_str()),
            ProfileSpec::Replicated { acks } => EngineProfile::durable(data_dir, store.as_str())
                .named("replicated")
                .replicated(*acks),
            ProfileSpec::ReplicatedApiserver { acks } => {
                EngineProfile::apiserver(data_dir, store.as_str())
                    .named("replicated-apiserver")
                    .replicated(*acks)
            }
        }
    }
}

/// A serializable dataflow operator (expressions as source text, compiled
/// server-side so the wire stays data-only).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "op")]
pub enum OpSpec {
    Filter {
        expr: String,
    },
    Rename {
        from: String,
        to: String,
    },
    Project {
        fields: Vec<String>,
    },
    Derive {
        field: String,
        expr: String,
    },
    Sort {
        by: String,
        descending: bool,
    },
    Aggregate {
        group_by: Option<String>,
        agg: String,
        field: Option<String>,
        as_field: String,
    },
    Limit {
        n: usize,
    },
}

/// A serializable query pipeline.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct QuerySpec {
    pub ops: Vec<OpSpec>,
}

impl QuerySpec {
    /// Compile into an executable [`Query`].
    pub fn compile(&self) -> Result<Query> {
        let mut q = Query::new();
        for op in &self.ops {
            q = match op {
                OpSpec::Filter { expr } => q.filter(expr)?,
                OpSpec::Rename { from, to } => q.rename(from.clone(), to.clone()),
                OpSpec::Project { fields } => q.project(fields.clone()),
                OpSpec::Derive { field, expr } => q.derive(field.clone(), expr)?,
                OpSpec::Sort { by, descending } => q.sort(by, *descending)?,
                OpSpec::Aggregate {
                    group_by,
                    agg,
                    field,
                    as_field,
                } => q.aggregate(
                    group_by.as_deref(),
                    AggFn::parse(agg)?,
                    field.as_deref(),
                    as_field.clone(),
                )?,
                OpSpec::Limit { n } => q.limit(*n),
            };
        }
        Ok(q)
    }
}

/// Client → server operations.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "type")]
pub enum Request {
    Ping,
    // ---- object exchange --------------------------------------------------
    CreateStore {
        store: StoreId,
        profile: ProfileSpec,
    },
    Create {
        store: StoreId,
        key: ObjectKey,
        value: Value,
    },
    Get {
        store: StoreId,
        key: ObjectKey,
    },
    List {
        store: StoreId,
    },
    Update {
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    },
    Patch {
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    },
    Delete {
        store: StoreId,
        key: ObjectKey,
    },
    /// Read many keys in one round-trip; replies `Response::Batch` with
    /// one item per key (missing keys are per-item errors).
    BatchGet {
        store: StoreId,
        keys: Vec<ObjectKey>,
    },
    /// Batched merge-writes (the integrator fast path): each item is a
    /// patch/upsert; the whole batch shares one WAL group fsync.
    BatchPut {
        store: StoreId,
        items: Vec<PutItem>,
    },
    /// General mutation batch with per-item OCC; replies
    /// `Response::Batch` with per-item revisions or errors.
    BatchCommit {
        store: StoreId,
        ops: Vec<BatchOp>,
    },
    RegisterConsumer {
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    },
    MarkProcessed {
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    },
    /// Start a watch; the reply is `Response::Watch { sub_id }` and events
    /// then arrive as `ServerMsg::Event`.
    Watch {
        store: StoreId,
        from: Revision,
    },
    /// Stop a watch subscription.
    Unwatch {
        sub_id: u64,
    },
    RegisterSchema {
        schema: Schema,
    },
    BindSchema {
        store: StoreId,
        schema: SchemaName,
    },
    GetSchema {
        schema: SchemaName,
    },
    RegisterUdf {
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    },
    ExecuteUdf {
        name: String,
        bindings: Vec<UdfBinding>,
    },
    /// Atomic multi-store patch set (§5 run-time transactions).
    Transact {
        ops: Vec<TxOp>,
    },
    // ---- log exchange -------------------------------------------------------
    LogCreateStore {
        store: StoreId,
    },
    LogAppend {
        store: StoreId,
        fields: Value,
    },
    LogAppendBatch {
        store: StoreId,
        batch: Vec<Value>,
    },
    LogRead {
        store: StoreId,
        from: u64,
    },
    LogQuery {
        store: StoreId,
        query: QuerySpec,
    },
    /// Start a log tail; events arrive as `ServerMsg::Event` with
    /// `Response::Record` payloads wrapped in `EventBody::Record`.
    LogTail {
        store: StoreId,
        from: u64,
    },
    // ---- replication --------------------------------------------------------
    /// Follower → leader: stream the store's committed events from
    /// revision `from` (exclusive). Handled exactly like `Watch` — the
    /// reply is `Response::Watch { sub_id }` and events arrive as
    /// `EventBody::Object` — but named separately so roles can fence it
    /// differently from client watches and the protocol stays explicit
    /// about which streams are replication traffic.
    ReplSubscribe {
        store: StoreId,
        from: Revision,
    },
    /// Follower → leader: `follower` has durably staged everything up to
    /// `revision`. Releases leader-side `Replicated(n)` quorum waits.
    ReplAck {
        store: StoreId,
        follower: String,
        revision: Revision,
    },
    /// Role/epoch/progress probe; doubles as the failover heartbeat. The
    /// reply is `Response::ReplStatus`.
    ReplStatus,
    /// Promote this node to leader at `epoch`. Rejected with `conflict`
    /// unless `epoch` is strictly newer than the node's current epoch —
    /// the fence that keeps a stale leader from reclaiming the role.
    ReplPromote {
        epoch: u64,
    },
    /// Read barrier: block until the local store's revision is at least
    /// `revision` (bounded wait). A router issues this before serving a
    /// session's read from a replica, which is what turns follower reads
    /// into read-your-writes reads.
    ReplWait {
        store: StoreId,
        revision: Revision,
    },
    // ---- observability ------------------------------------------------------
    /// Scrape the server's metrics registry (counters, gauges, latency
    /// histograms); the reply is `Response::Metrics`.
    Metrics,
}

/// Server → client replies.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "type")]
pub enum Response {
    Ok,
    Pong,
    Revision {
        revision: Revision,
    },
    Object {
        object: StoredObject,
    },
    Objects {
        objects: Vec<StoredObject>,
        revision: Revision,
    },
    Collected {
        keys: Vec<ObjectKey>,
    },
    Schema {
        schema: Schema,
    },
    Revisions {
        revisions: Vec<(StoreId, Revision)>,
    },
    Seq {
        seq: u64,
    },
    Records {
        records: Vec<LogRecord>,
    },
    Rows {
        rows: Vec<Value>,
    },
    Watch {
        sub_id: u64,
    },
    /// Per-item outcomes of a `BatchGet`/`BatchPut`/`BatchCommit`.
    Batch {
        items: Vec<ItemResult>,
    },
    Metrics {
        snapshot: knactor_types::metrics::MetricsSnapshot,
    },
    /// Reply to `Request::ReplStatus`: this node's role, fencing epoch,
    /// and per-store applied revisions (its replication progress).
    ReplStatus {
        leader: bool,
        epoch: u64,
        applied: Vec<(StoreId, Revision)>,
    },
    Error {
        code: String,
        message: String,
    },
}

impl Response {
    pub fn from_error(e: &Error) -> Response {
        Response::Error {
            code: e.code().to_string(),
            message: e.wire_message(),
        }
    }

    /// Convert an error response back into an `Err`, pass others through.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Error { code, message } => Err(Error::from_wire(&code, &message)),
            other => Ok(other),
        }
    }
}

/// A pushed event's payload.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "type")]
pub enum EventBody {
    Object {
        event: WatchEvent,
    },
    Record {
        record: LogRecord,
    },
    /// Retention truncated records the tailer never pulled; resume a
    /// fresh tail from `resume_from` to continue without double-reads.
    Lagged {
        missed: u64,
        resume_from: u64,
    },
    /// The store cut this watch subscription for exceeding its lag cap
    /// (the subscriber stopped reading while events kept committing).
    /// A gapless resume is `Watch { from: resume_from }`, falling back
    /// to list+rewatch on `watch_too_old`.
    WatchLagged {
        resume_from: u64,
    },
    /// The subscription ended server-side (store dropped, shutdown).
    Closed,
}

/// One frame from server to client.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", tag = "type")]
pub enum ServerMsg {
    Reply {
        id: u64,
        response: Response,
    },
    Event {
        sub_id: u64,
        body: EventBody,
    },
    /// A drained run of events for one subscription in a single frame —
    /// watch fan-out's framing amortization. Bodies are in delivery
    /// order; receivers process them exactly as N `Event` frames.
    EventBatch {
        sub_id: u64,
        bodies: Vec<EventBody>,
    },
}

pub fn encode<T: Serialize>(msg: &T) -> Result<Vec<u8>> {
    Ok(serde_json::to_vec(msg)?)
}

/// Serialize `msg` appending to `scratch` (cleared first), reusing the
/// buffer's allocation across messages. Per-connection writer loops keep
/// one scratch `String` instead of allocating per frame.
pub fn encode_into<T: Serialize>(msg: &T, scratch: &mut String) -> Result<()> {
    scratch.clear();
    serde_json::to_string_into(msg, scratch)?;
    Ok(())
}

pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    Ok(serde_json::from_slice(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn request_roundtrip() {
        let req = RequestEnvelope {
            id: 7,
            body: Request::Update {
                store: StoreId::new("checkout/state"),
                key: ObjectKey::new("order-1"),
                value: json!({"x": 1}),
                expected: Some(Revision(3)),
            },
        };
        let bytes = encode(&req).unwrap();
        let back: RequestEnvelope = decode(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn error_response_roundtrips_to_err() {
        let e = Error::Conflict {
            expected: 1,
            actual: 2,
        };
        let resp = Response::from_error(&e);
        let bytes = encode(&resp).unwrap();
        let back: Response = decode(&bytes).unwrap();
        assert_eq!(back.into_result().unwrap_err(), e);
    }

    #[test]
    fn ok_response_passes_through() {
        assert_eq!(Response::Ok.into_result().unwrap(), Response::Ok);
    }

    #[test]
    fn query_spec_compiles() {
        let spec = QuerySpec {
            ops: vec![
                OpSpec::Filter {
                    expr: "this.triggered == true".into(),
                },
                OpSpec::Rename {
                    from: "triggered".into(),
                    to: "motion".into(),
                },
                OpSpec::Aggregate {
                    group_by: None,
                    agg: "count".into(),
                    field: None,
                    as_field: "n".into(),
                },
            ],
        };
        let q = spec.compile().unwrap();
        let out = q
            .run(vec![json!({"triggered": true}), json!({"triggered": false})].into_iter())
            .unwrap();
        assert_eq!(out, vec![json!({"n": 1})]);
    }

    #[test]
    fn query_spec_bad_expr_fails_compile() {
        let spec = QuerySpec {
            ops: vec![OpSpec::Filter { expr: "1 +".into() }],
        };
        assert!(spec.compile().is_err());
    }

    #[test]
    fn profile_spec_materializes() {
        let dir = std::env::temp_dir();
        let store = StoreId::new("a/b");
        assert_eq!(
            ProfileSpec::Instant.materialize(&dir, &store).name,
            "instant"
        );
        assert_eq!(ProfileSpec::Redis.materialize(&dir, &store).name, "redis");
        let api = ProfileSpec::Apiserver.materialize(&dir, &store);
        assert!(api.is_durable());
        let repl_api = ProfileSpec::ReplicatedApiserver { acks: 1 }.materialize(&dir, &store);
        assert!(repl_api.is_durable());
        assert_eq!(repl_api.name, "replicated-apiserver");
        assert_eq!(repl_api.repl_acks, 1);
        // The modelled latencies carry over from the apiserver base.
        assert_eq!(repl_api.read_delay, api.read_delay);
        assert_eq!(repl_api.write_delay, api.write_delay);
    }

    #[test]
    fn batch_request_and_reply_roundtrip() {
        let req = RequestEnvelope {
            id: 11,
            body: Request::BatchCommit {
                store: StoreId::new("checkout/state"),
                ops: vec![
                    BatchOp::Create {
                        key: ObjectKey::new("a"),
                        value: json!({"x": 1}),
                    },
                    BatchOp::Delete {
                        key: ObjectKey::new("b"),
                    },
                ],
            },
        };
        let back: RequestEnvelope = decode(&encode(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let resp = Response::Batch {
            items: vec![
                ItemResult::Revision {
                    revision: Revision(4),
                },
                ItemResult::Error {
                    code: "not_found".into(),
                    message: "b".into(),
                },
            ],
        };
        let back: Response = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn event_batch_roundtrip() {
        let msg = ServerMsg::EventBatch {
            sub_id: 5,
            bodies: vec![
                EventBody::Record {
                    record: LogRecord {
                        seq: 1,
                        fields: json!({"a": 1}),
                    },
                },
                EventBody::Closed,
            ],
        };
        let back: ServerMsg = decode(&encode(&msg).unwrap()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn encode_into_reuses_scratch_and_matches_encode() {
        let msg = Response::Revision {
            revision: Revision(9),
        };
        let mut scratch = String::new();
        encode_into(&msg, &mut scratch).unwrap();
        assert_eq!(scratch.as_bytes(), encode(&msg).unwrap().as_slice());
        // A second encode clears the previous content.
        encode_into(&Response::Ok, &mut scratch).unwrap();
        assert_eq!(
            scratch.as_bytes(),
            encode(&Response::Ok).unwrap().as_slice()
        );
    }

    #[test]
    fn watch_lagged_event_roundtrips() {
        let msg = ServerMsg::Event {
            sub_id: 4,
            body: EventBody::WatchLagged { resume_from: 17 },
        };
        let back: ServerMsg = decode(&encode(&msg).unwrap()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn server_msg_event_roundtrip() {
        let msg = ServerMsg::Event {
            sub_id: 3,
            body: EventBody::Record {
                record: LogRecord {
                    seq: 9,
                    fields: json!({"kwh": 0.2}),
                },
            },
        };
        let back: ServerMsg = decode(&encode(&msg).unwrap()).unwrap();
        assert_eq!(back, msg);
    }
}
