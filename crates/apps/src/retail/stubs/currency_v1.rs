// >>> T1-API
//! Generated-style stub for `OnlineRetail.Currency` v1.

use knactor_rpc::RpcClient;
use knactor_types::{Error, Result};
use serde::{Deserialize, Serialize};

pub const METHOD_CONVERT: &str = "Currency.v1/Convert";

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ConvertRequest {
    pub amount: f64,
    pub from: String,
    pub to: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ConvertResponse {
    pub amount: f64,
    pub currency: String,
}

pub struct CurrencyClient<'c> {
    inner: &'c RpcClient,
}

impl<'c> CurrencyClient<'c> {
    pub fn new(inner: &'c RpcClient) -> Self {
        CurrencyClient { inner }
    }

    pub async fn convert(&self, request: ConvertRequest) -> Result<ConvertResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_CONVERT, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("ConvertResponse: {e}")))
    }
}
// <<< T1-API
