//! The JSON value tree: `Value`, `Number`, `Map`.
//!
//! Semantics follow `serde_json`: object keys are sorted (`BTreeMap`),
//! integers and floats are distinct (`json!(1) != json!(1.0)`), and the
//! `Display` form is compact JSON.

use std::collections::{btree_map, BTreeMap};
use std::fmt;

/// A JSON number. Non-negative integers normalize to the unsigned form so
/// `Number::from(1i64) == Number::from(1u64)`, while floats never compare
/// equal to integers — the same behaviour as `serde_json`.
#[derive(Clone, Copy)]
pub enum Number {
    NegInt(i64),
    PosInt(u64),
    Float(f64),
}

impl Number {
    /// `None` for NaN or infinite input, like `serde_json`.
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number::Float(f))
        } else {
            None
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::NegInt(i) => Some(i),
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::PosInt(u) => Some(u),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::NegInt(i) => Some(i as f64),
            Number::PosInt(u) => Some(u as f64),
            Number::Float(f) => Some(f),
        }
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64(), a.as_u64(), b.as_u64()) {
                (Some(x), Some(y), _, _) => x == y,
                (_, _, Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::NegInt(i) => write!(f, "{i}"),
            Number::PosInt(u) => write!(f, "{u}"),
            Number::Float(x) => f.write_str(&crate::text::format_f64(x)),
        }
    }
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(i: $t) -> Number {
                let i = i as i64;
                if i >= 0 { Number::PosInt(i as u64) } else { Number::NegInt(i) }
            }
        }
    )*};
}
macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(u: $t) -> Number { Number::PosInt(u as u64) }
        }
    )*};
}
number_from_signed!(i8, i16, i32, i64, isize);
number_from_unsigned!(u8, u16, u32, u64, usize);

/// A JSON object with sorted keys (the `preserve_order`-off representation
/// real `serde_json` uses by default).
#[derive(Clone, Default, PartialEq)]
pub struct Map {
    map: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Map {
        Map {
            map: BTreeMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        self.map.insert(key.into(), value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.map.get_mut(key)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.map.remove(key)
    }

    pub fn entry(&mut self, key: impl Into<String>) -> btree_map::Entry<'_, String, Value> {
        self.map.entry(key.into())
    }

    pub fn append(&mut self, other: &mut Map) {
        self.map.append(&mut other.map);
    }

    pub fn iter(&self) -> btree_map::Iter<'_, String, Value> {
        self.map.iter()
    }

    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, String, Value> {
        self.map.iter_mut()
    }

    pub fn keys(&self) -> btree_map::Keys<'_, String, Value> {
        self.map.keys()
    }

    pub fn values(&self) -> btree_map::Values<'_, String, Value> {
        self.map.values()
    }

    pub fn values_mut(&mut self) -> btree_map::ValuesMut<'_, String, Value> {
        self.map.values_mut()
    }

    pub fn retain(&mut self, f: impl FnMut(&String, &mut Value) -> bool) {
        self.map.retain(f);
    }
}

impl fmt::Debug for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.map.fmt(f)
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.iter()
    }
}

impl<'a> IntoIterator for &'a mut Map {
    type Item = (&'a String, &'a mut Value);
    type IntoIter = btree_map::IterMut<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.iter_mut()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        Map {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for Map {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

impl From<BTreeMap<String, Value>> for Map {
    fn from(map: BTreeMap<String, Value>) -> Map {
        Map { map }
    }
}

/// A JSON value.
#[derive(Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Replace `self` with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("Null"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Number(n) => write!(f, "Number({n})"),
            Value::String(s) => write!(f, "String({s:?})"),
            Value::Array(a) => f.debug_tuple("Array").field(a).finish(),
            Value::Object(m) => f.debug_tuple("Object").field(m).finish(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::text::write_json(self))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::from(f as f64)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Value { Value::Number(Number::from(i)) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

macro_rules! value_partial_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(other.clone())
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                Value::from(self.clone()) == *other
            }
        }
    )*};
}
value_partial_eq!(bool, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, String);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

// Shared values (`Arc<Value>`) compare transparently against plain
// `Value` literals, so `assert_eq!(obj.value, json!(..))` keeps working
// when stores hand out reference-counted objects.
impl PartialEq<Value> for std::sync::Arc<Value> {
    fn eq(&self, other: &Value) -> bool {
        **self == *other
    }
}

impl PartialEq<std::sync::Arc<Value>> for Value {
    fn eq(&self, other: &std::sync::Arc<Value>) -> bool {
        *self == **other
    }
}
