//! The **Tuner**: close the metrics→plan loop.
//!
//! The cost model in `knactor-dxg` can say which execution of an edge
//! *should* be cheaper; this task makes the system act on it. Every
//! `interval` it snapshots the process-wide metrics registry, windows it
//! against the previous scrape (`MetricsSnapshot::delta`), builds an
//! [`EdgeCostInput`] per cast edge of the applied composition, and asks
//! [`CostModel::score_edge`]. When an eligible candidate beats the
//! current choice by the hysteresis margin — and the edge is outside its
//! cooldown — the tuner issues a *minimal-diff* re-plan: the applied
//! composition plus one per-edge mode override, through the ordinary
//! [`Composer::apply`] path. Reconfigure-in-place plus drain-as-barrier
//! means a live switch loses and duplicates nothing.
//!
//! The decision core ([`DecisionState::decide`]) is a pure function of
//! an abstract clock and the scored reports, which is what the
//! oscillation property tests exercise: hysteresis makes a switch
//! require a strict improvement, the cooldown bounds switch frequency,
//! and the measured-cost cache means a switch *back* is judged against
//! the real history of the abandoned choice, not a fresh estimate.
//!
//! Shard awareness: with a [`ShardMap`] configured, an edge whose
//! bindings land on more than one shard is [`Placement::Scattered`] —
//! the cost model keeps pushdown ineligible there and the report carries
//! the hypothetical scatter cost instead.

use crate::cast::{CastBinding, CastMode, KeyBinding};
use crate::composer::Composer;
use knactor_dxg::{CostModel, EdgeCostInput, EdgeCostReport, ExecChoice, Placement};
use knactor_store::ShardMap;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pure decision parameters — everything [`DecisionState::decide`]
/// needs besides the scored reports.
#[derive(Debug, Clone)]
pub struct TunerPolicy {
    /// Fractional margin a candidate must win by: with `0.2`, switching
    /// requires the candidate to cost less than 80% of the current
    /// choice. This is the anti-oscillation hysteresis — a near-tie
    /// never flips the plan.
    pub hysteresis: f64,
    /// Minimum time between switches of the same edge (abstract clock:
    /// whatever `now` the caller feeds `decide`).
    pub cooldown: Duration,
    /// Minimum activations observed in the window before the edge's
    /// measurements are trusted at all.
    pub min_activations: u64,
}

impl Default for TunerPolicy {
    fn default() -> TunerPolicy {
        TunerPolicy {
            hysteresis: 0.2,
            cooldown: Duration::from_secs(10),
            min_activations: 20,
        }
    }
}

/// Configuration of the background tuner task.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Scrape-and-score period; also the rate window.
    pub interval: Duration,
    pub policy: TunerPolicy,
    /// Shard topology, when the exchange is sharded. `None` means
    /// unsharded: every edge is colocated.
    pub shard_map: Option<ShardMap>,
    /// Base UDF name for edges the tuner switches to pushdown (the
    /// composer suffixes `:{alias}` per edge, as always).
    pub pushdown_udf: String,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            interval: Duration::from_secs(2),
            policy: TunerPolicy::default(),
            shard_map: None,
            pushdown_udf: "tuned".to_string(),
        }
    }
}

/// One edge's scored window, as fed to [`DecisionState::decide`].
#[derive(Debug, Clone)]
pub struct EdgeObservation {
    /// Target alias of the edge (`cast:<alias>`).
    pub alias: String,
    pub report: EdgeCostReport,
    /// Activations counted inside the window.
    pub activations: u64,
}

/// A switch the decision core wants executed.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    pub alias: String,
    pub from: ExecChoice,
    pub to: ExecChoice,
    /// Expected per-activation seconds saved.
    pub expected_gain: f64,
    /// Coalescing window suggested for the observed rate, applied with
    /// the switch.
    pub coalesce: usize,
}

/// The tuner's memory between ticks: per-edge cooldown clocks and the
/// last *measured* cost of each (edge, choice). Pure — time is an
/// argument, not a syscall — so properties about its behaviour are
/// testable without a runtime.
#[derive(Debug, Clone, Default)]
pub struct DecisionState {
    last_switch: BTreeMap<String, Duration>,
    measured: BTreeMap<(String, ExecChoice), f64>,
}

impl DecisionState {
    /// Decide which edges to switch at `now`. At most one decision per
    /// edge per call; an edge inside its cooldown, below the activation
    /// floor, or without a candidate beating the hysteresis margin stays
    /// put.
    pub fn decide(
        &mut self,
        now: Duration,
        policy: &TunerPolicy,
        observations: &[EdgeObservation],
    ) -> Vec<Decision> {
        let mut out = Vec::new();
        for obs in observations {
            // Remember every *measured* cost: once an edge has actually
            // run a choice, later comparisons against that choice use
            // the measurement, never a model estimate.
            for c in &obs.report.candidates {
                if c.measured && c.eligible {
                    self.measured
                        .insert((obs.alias.clone(), c.choice), c.per_activation);
                }
            }
            if obs.activations < policy.min_activations {
                continue;
            }
            let current = obs.report.current;
            let Some(current_cost) = self.cost_of(obs, current) else {
                continue;
            };
            let best = obs
                .report
                .candidates
                .iter()
                .filter(|c| c.eligible && c.choice != current)
                .map(|c| {
                    (
                        c.choice,
                        self.cached(&obs.alias, c.choice, c.per_activation),
                    )
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));
            let Some((choice, cost)) = best else { continue };
            if cost >= current_cost * (1.0 - policy.hysteresis) {
                continue;
            }
            if let Some(&at) = self.last_switch.get(&obs.alias) {
                if now < at + policy.cooldown {
                    continue;
                }
            }
            self.last_switch.insert(obs.alias.clone(), now);
            out.push(Decision {
                alias: obs.alias.clone(),
                from: current,
                to: choice,
                expected_gain: current_cost - cost,
                coalesce: obs.report.suggested_coalesce,
            });
        }
        out
    }

    fn cached(&self, alias: &str, choice: ExecChoice, fallback: f64) -> f64 {
        self.measured
            .get(&(alias.to_string(), choice))
            .copied()
            .unwrap_or(fallback)
    }

    fn cost_of(&self, obs: &EdgeObservation, choice: ExecChoice) -> Option<f64> {
        obs.report
            .cost_of(choice)
            .map(|c| self.cached(&obs.alias, choice, c))
    }
}

/// Shard placement of one edge's bindings. Fixed keys hash through
/// [`ShardMap::owner_of_key`]; a correlated binding activates with a
/// different key per event, so over a multi-shard map its activations
/// necessarily scatter (the store participates in the key hash, but the
/// key does too).
pub fn placement_for(
    bindings: &BTreeMap<String, CastBinding>,
    shard_map: Option<&ShardMap>,
) -> Placement {
    let Some(map) = shard_map else {
        return Placement::Colocated;
    };
    if map.shard_count() <= 1 {
        return Placement::Colocated;
    }
    let mut shards = std::collections::BTreeSet::new();
    for binding in bindings.values() {
        match &binding.key {
            KeyBinding::Fixed(key) => {
                shards.insert(map.owner_of_key(binding.store.as_str(), key.as_str()));
            }
            KeyBinding::Correlated => {
                return Placement::Scattered {
                    shards: map.shard_count(),
                };
            }
        }
    }
    if shards.len() <= 1 {
        Placement::Colocated
    } else {
        Placement::Scattered {
            shards: shards.len(),
        }
    }
}

/// Build the cost-model input for one edge from a **windowed** snapshot
/// (a `MetricsSnapshot::delta` between two scrapes).
pub fn edge_input_from_window(
    window: &crate::metrics::MetricsSnapshot,
    integrator: &str,
    interval: Duration,
    placement: Placement,
) -> (EdgeCostInput, u64) {
    let activations = window
        .counter_value("knactor_activations_total", &[("integrator", integrator)])
        .unwrap_or(0);
    let mut stage_mean = BTreeMap::new();
    for h in window.histograms.iter().filter(|h| {
        h.name == "knactor_activation_stage_seconds"
            && h.labels
                .iter()
                .any(|(k, v)| k == "integrator" && v == integrator)
    }) {
        if let (Some((_, stage)), Some(mean)) = (
            h.labels.iter().find(|(k, _)| k == "stage"),
            h.mean_seconds(),
        ) {
            stage_mean.insert(stage.clone(), mean);
        }
    }
    // Client retries are process-global; attributing the window's
    // retries across the window's activations is an approximation that
    // errs toward caution (retries inflate every candidate equally).
    let retries = window
        .counter_value("knactor_client_retries_total", &[])
        .unwrap_or(0);
    let secs = interval.as_secs_f64();
    let input = EdgeCostInput {
        activation_rate: if secs > 0.0 {
            activations as f64 / secs
        } else {
            0.0
        },
        stage_mean,
        placement,
        retry_rate: if activations > 0 {
            retries as f64 / activations as f64
        } else {
            0.0
        },
    };
    (input, activations)
}

/// Handle to a running tuner task.
pub struct TunerHandle {
    stop: tokio::sync::watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl TunerHandle {
    pub async fn shutdown(self) {
        let _ = self.stop.send(true);
        let _ = self.task.await;
    }
}

/// The background tuner. [`Tuner::spawn`] starts the loop; it reads the
/// applied composition from the composer every tick and re-applies with
/// overrides when the decision core says so.
pub struct Tuner;

impl Tuner {
    pub fn spawn(composer: Arc<Composer>, config: TunerConfig) -> TunerHandle {
        let (stop, mut stop_rx) = tokio::sync::watch::channel(false);
        let task = tokio::spawn(async move {
            let registry = crate::metrics::global();
            let started = Instant::now();
            let mut prev = registry.snapshot();
            let mut state = DecisionState::default();
            loop {
                tokio::select! {
                    changed = stop_rx.changed() => {
                        if changed.is_err() || *stop_rx.borrow() {
                            return;
                        }
                    }
                    _ = tokio::time::sleep(config.interval) => {}
                }
                let current_snapshot = registry.snapshot();
                let window = current_snapshot.delta(&prev);
                prev = current_snapshot;

                let Some(composition) = composer.applied().await else {
                    continue;
                };
                let Some(section) = composition.cast.as_ref() else {
                    continue;
                };
                let model = CostModel::default();
                let mut observations = Vec::new();
                for (alias, edge_dxg) in section.dxg.edges() {
                    let integrator = format!("cast:{}:{alias}", composer.name());
                    let bindings: BTreeMap<String, CastBinding> = section
                        .bindings
                        .iter()
                        .filter(|(a, _)| edge_dxg.inputs.contains_key(*a))
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    let placement = placement_for(&bindings, config.shard_map.as_ref());
                    let (input, activations) =
                        edge_input_from_window(&window, &integrator, config.interval, placement);
                    let current = match section.mode_overrides.get(&alias).unwrap_or(&section.mode)
                    {
                        CastMode::Direct => ExecChoice::Direct,
                        CastMode::Pushdown { .. } => ExecChoice::Pushdown,
                    };
                    let report = model.score_edge(&alias, current, &input);
                    for c in &report.candidates {
                        registry
                            .gauge(
                                "knactor_planner_cost",
                                &[
                                    ("composer", composer.name()),
                                    ("edge", &alias),
                                    ("choice", &c.choice.to_string()),
                                ],
                            )
                            .set((c.per_activation * 1e9) as i64);
                    }
                    observations.push(EdgeObservation {
                        alias,
                        report,
                        activations,
                    });
                }

                let decisions = state.decide(started.elapsed(), &config.policy, &observations);
                if decisions.is_empty() {
                    continue;
                }
                let mut next = composition.clone();
                let section = next.cast.as_mut().expect("checked above");
                for d in &decisions {
                    let mode = match d.to {
                        ExecChoice::Direct => CastMode::Direct,
                        ExecChoice::Pushdown => CastMode::Pushdown {
                            udf_name: config.pushdown_udf.clone(),
                        },
                    };
                    section.mode_overrides.insert(d.alias.clone(), mode);
                    if d.coalesce > 1 {
                        section
                            .coalesce_overrides
                            .insert(d.alias.clone(), d.coalesce);
                    }
                }
                match composer.apply(next).await {
                    Ok(_) => {
                        registry
                            .counter(
                                "knactor_planner_replans_total",
                                &[("composer", composer.name())],
                            )
                            .add(decisions.len() as u64);
                    }
                    Err(_) => {
                        registry
                            .counter(
                                "knactor_planner_replan_errors_total",
                                &[("composer", composer.name())],
                            )
                            .inc();
                    }
                }
            }
        });
        TunerHandle { stop, task }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_dxg::CandidateCost;

    fn report(edge: &str, current: ExecChoice, direct: f64, pushdown: f64) -> EdgeCostReport {
        EdgeCostReport {
            edge: edge.to_string(),
            current,
            candidates: vec![
                CandidateCost {
                    choice: ExecChoice::Direct,
                    per_activation: direct,
                    measured: current == ExecChoice::Direct,
                    eligible: true,
                    note: String::new(),
                },
                CandidateCost {
                    choice: ExecChoice::Pushdown,
                    per_activation: pushdown,
                    measured: current == ExecChoice::Pushdown,
                    eligible: true,
                    note: String::new(),
                },
            ],
            suggested_coalesce: 1,
        }
    }

    fn obs(edge: &str, current: ExecChoice, direct: f64, pushdown: f64) -> EdgeObservation {
        EdgeObservation {
            alias: edge.to_string(),
            report: report(edge, current, direct, pushdown),
            activations: 100,
        }
    }

    #[test]
    fn clear_win_switches_and_near_tie_does_not() {
        let policy = TunerPolicy::default();
        let mut state = DecisionState::default();
        // 560µs direct vs 110µs pushdown: clear win.
        let d = state.decide(
            Duration::from_secs(1),
            &policy,
            &[obs("S", ExecChoice::Direct, 560e-6, 110e-6)],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, ExecChoice::Pushdown);
        // 560µs vs 500µs is inside the 20% hysteresis band: no switch.
        let mut state = DecisionState::default();
        let d = state.decide(
            Duration::from_secs(1),
            &policy,
            &[obs("S", ExecChoice::Direct, 560e-6, 500e-6)],
        );
        assert!(d.is_empty());
    }

    #[test]
    fn cooldown_suppresses_consecutive_switches() {
        let policy = TunerPolicy {
            cooldown: Duration::from_secs(10),
            ..TunerPolicy::default()
        };
        let mut state = DecisionState::default();
        let first = state.decide(
            Duration::from_secs(1),
            &policy,
            &[obs("S", ExecChoice::Direct, 200e-6, 110e-6)],
        );
        assert_eq!(first.len(), 1);
        // The switch happened; pushdown then measures far worse than
        // direct's remembered 200µs — but inside the cooldown nothing
        // may flip back.
        let back = state.decide(
            Duration::from_secs(5),
            &policy,
            &[obs("S", ExecChoice::Pushdown, 200e-6, 560e-6)],
        );
        assert!(back.is_empty(), "cooldown must suppress the flip-back");
        // After the cooldown it may.
        let later = state.decide(
            Duration::from_secs(12),
            &policy,
            &[obs("S", ExecChoice::Pushdown, 200e-6, 560e-6)],
        );
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].to, ExecChoice::Direct);
    }

    #[test]
    fn too_few_activations_never_switch() {
        let mut state = DecisionState::default();
        let mut o = obs("S", ExecChoice::Direct, 560e-6, 110e-6);
        o.activations = 3;
        let d = state.decide(Duration::from_secs(1), &TunerPolicy::default(), &[o]);
        assert!(d.is_empty());
    }

    #[test]
    fn measured_history_overrides_optimistic_estimates() {
        let policy = TunerPolicy {
            cooldown: Duration::ZERO,
            ..TunerPolicy::default()
        };
        let mut state = DecisionState::default();
        // Round 1: direct measured at 200µs — cached.
        let none = state.decide(
            Duration::from_secs(1),
            &policy,
            &[obs("S", ExecChoice::Direct, 200e-6, 190e-6)],
        );
        assert!(none.is_empty());
        // Round 2: now running pushdown (say a manual re-plan happened);
        // the model *estimates* direct at a tempting 50µs, but the cache
        // remembers it really cost 200µs — no switch.
        let mut o = obs("S", ExecChoice::Pushdown, 50e-6, 180e-6);
        o.report.candidates[0].measured = false;
        let d = state.decide(Duration::from_secs(2), &policy, &[o]);
        assert!(
            d.is_empty(),
            "estimate must not beat remembered measurement"
        );
    }

    #[test]
    fn scattered_bindings_compute_from_shard_map() {
        let map = ShardMap::uniform(4);
        let mut b = BTreeMap::new();
        b.insert("A".to_string(), CastBinding::fixed("a/state", "k1"));
        b.insert("B".to_string(), CastBinding::fixed("b/state", "k2"));
        // Fixed keys over 4 shards will (almost surely) scatter; assert
        // against the map's own answer so the test is hash-stable.
        let owners: std::collections::BTreeSet<usize> = [("a/state", "k1"), ("b/state", "k2")]
            .iter()
            .map(|(s, k)| map.owner_of_key(s, k))
            .collect();
        let placement = placement_for(&b, Some(&map));
        if owners.len() == 1 {
            assert_eq!(placement, Placement::Colocated);
        } else {
            assert_eq!(
                placement,
                Placement::Scattered {
                    shards: owners.len()
                }
            );
        }
        // Correlated bindings over a multi-shard map always scatter.
        let mut c = BTreeMap::new();
        c.insert("A".to_string(), CastBinding::correlated("a/state"));
        assert_eq!(
            placement_for(&c, Some(&map)),
            Placement::Scattered { shards: 4 }
        );
        // Unsharded or single-shard: colocated.
        assert_eq!(placement_for(&c, None), Placement::Colocated);
        assert_eq!(
            placement_for(&c, Some(&ShardMap::uniform(1))),
            Placement::Colocated
        );
    }
}
