//! Log-exchange costs: ingestion throughput and the Sync integrator's
//! dataflow operators (Fig. 4's telemetry path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use knactor_logstore::{AggFn, LogStore, Query};
use serde_json::json;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_ingest");

    group.bench_function("append", |b| {
        let log = LogStore::new("bench/ingest");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append(json!({"triggered": i.is_multiple_of(2), "sensitivity": i % 10}))
        });
    });

    group.bench_function("append_batch_100", |b| {
        b.iter_batched(
            || {
                (
                    LogStore::new("bench/batch"),
                    (0..100)
                        .map(|i| json!({"kwh": i as f64 * 0.01}))
                        .collect::<Vec<_>>(),
                )
            },
            |(log, batch)| log.append_batch(batch),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn motion_log(n: usize) -> std::sync::Arc<LogStore> {
    let log = LogStore::new("bench/motion");
    for i in 0..n {
        log.append(json!({
            "triggered": i % 3 == 0,
            "sensitivity": i % 10,
            "room": if i % 2 == 0 { "kitchen" } else { "hall" },
        }));
    }
    log
}

fn bench_query_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_query_1k");
    let log = motion_log(1000);

    let filter = Query::new().filter("this.triggered == true").unwrap();
    group.bench_function("filter", |b| {
        b.iter(|| {
            filter
                .run(log.read_all().into_iter().map(|r| r.fields))
                .unwrap()
        });
    });

    let rename = Query::new().rename("triggered", "motion");
    group.bench_function("rename", |b| {
        b.iter(|| {
            rename
                .run(log.read_all().into_iter().map(|r| r.fields))
                .unwrap()
        });
    });

    let sort = Query::new().sort("sensitivity", true).unwrap();
    group.bench_function("sort", |b| {
        b.iter(|| {
            sort.run(log.read_all().into_iter().map(|r| r.fields))
                .unwrap()
        });
    });

    let agg = Query::new()
        .aggregate(Some("room"), AggFn::Sum, Some("sensitivity"), "total")
        .unwrap();
    group.bench_function("aggregate_grouped", |b| {
        b.iter(|| {
            agg.run(log.read_all().into_iter().map(|r| r.fields))
                .unwrap()
        });
    });

    let pipeline = Query::new()
        .filter("this.triggered == true")
        .unwrap()
        .rename("triggered", "motion")
        .project(["motion", "room"])
        .limit(100);
    group.bench_function("full_pipeline", |b| {
        b.iter(|| {
            pipeline
                .run(log.read_all().into_iter().map(|r| r.fields))
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ingest, bench_query_ops);
criterion_main!(benches);
