//! Tokenizer for the DXG expression language.

use knactor_types::{Error, Result};

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Number(f64),
    Str(String),
    Ident(String),
    /// Keywords: `if`, `else`, `for`, `in`, `and`, `or`, `not`, `true`,
    /// `false`, `null` are lexed as identifiers and classified here.
    True,
    False,
    Null,
    If,
    Else,
    For,
    In,
    And,
    Or,
    Not,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
}

/// Tokenize `src`. Whitespace (including newlines, so folded YAML block
/// scalars work unmodified) separates tokens and is otherwise ignored.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err(src, start, "'=' is not an operator; use '=='"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err(src, start, "'!' is not an operator; use 'not'"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut out = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d == '\\' {
                        match bytes.get(i + 1).map(|&b| b as char) {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some('\\') => out.push('\\'),
                            Some('"') => out.push('"'),
                            Some('\'') => out.push('\''),
                            Some(other) => {
                                return Err(err(src, i, &format!("unknown escape '\\{other}'")))
                            }
                            None => return Err(err(src, i, "dangling escape")),
                        }
                        i += 2;
                    } else if d == quote {
                        i += 1;
                        closed = true;
                        break;
                    } else {
                        out.push(d);
                        i += d.len_utf8();
                    }
                }
                if !closed {
                    return Err(err(src, start, "unterminated string literal"));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut end = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    match d {
                        '0'..='9' => end += 1,
                        '.' if !seen_dot && !seen_exp => {
                            // A dot must be followed by a digit to be part
                            // of the number (else `1.name` is member access
                            // on a literal — nonsense, but lex it cleanly).
                            if bytes
                                .get(end + 1)
                                .map(|&b| (b as char).is_ascii_digit())
                                .unwrap_or(false)
                            {
                                seen_dot = true;
                                end += 1;
                            } else {
                                break;
                            }
                        }
                        'e' | 'E' if !seen_exp => {
                            seen_exp = true;
                            end += 1;
                            if bytes.get(end) == Some(&b'-') || bytes.get(end) == Some(&b'+') {
                                end += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[i..end];
                let n: f64 = text
                    .parse()
                    .map_err(|_| err_owned(src, i, format!("bad number '{text}'")))?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    if d.is_alphanumeric() || d == '_' {
                        end += d.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &src[i..end];
                let kind = match word {
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "true" | "True" => TokenKind::True,
                    "false" | "False" => TokenKind::False,
                    "null" | "None" => TokenKind::Null,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(err(src, start, &format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

fn err(src: &str, offset: usize, msg: &str) -> Error {
    err_owned(src, offset, msg.to_string())
}

fn err_owned(src: &str, offset: usize, msg: String) -> Error {
    Error::Expr(format!("{msg} at offset {offset} in '{src}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a + b * 2 >= 10"),
            vec![
                Ident("a".into()),
                Plus,
                Ident("b".into()),
                Star,
                Number(2.0),
                Ge,
                Number(10.0)
            ]
        );
    }

    #[test]
    fn lexes_keywords_vs_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("air if cost not in_flight"),
            vec![
                Ident("air".into()),
                If,
                Ident("cost".into()),
                Not,
                Ident("in_flight".into())
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds(r#""a\"b""#), vec![TokenKind::Str("a\"b".into())]);
        assert_eq!(kinds(r#"'it\'s'"#), vec![TokenKind::Str("it's".into())]);
        assert_eq!(
            kinds(r#""tab\there""#),
            vec![TokenKind::Str("tab\there".into())]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Number(1.5)]);
        assert_eq!(kinds("2e3"), vec![TokenKind::Number(2000.0)]);
        assert_eq!(kinds("1.5e-2"), vec![TokenKind::Number(0.015)]);
        // `1.name` lexes as number, dot, ident.
        assert_eq!(
            kinds("1.name"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Dot,
                TokenKind::Ident("name".into())
            ]
        );
    }

    #[test]
    fn newlines_are_whitespace() {
        // Folded YAML block scalars arrive with embedded line breaks.
        let t = kinds("currency_convert(S.quote.price,\n      S.quote.currency, this.currency)");
        assert_eq!(t.len(), 18);
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
