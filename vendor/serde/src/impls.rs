//! `Serialize`/`Deserialize` implementations for std types.

use crate::de::Deserialize;
use crate::ser::Serialize;
use crate::{Error, Number, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

fn type_err(expected: &str, got: &Value) -> Error {
    Error::msg(format!("invalid type: expected {expected}, got {got}"))
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| type_err("bool", value))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                // Route through i64/u64 to accept either integer form.
                if let Some(i) = value.as_i64() {
                    return <$t>::try_from(i)
                        .map_err(|_| type_err(stringify!($t), value));
                }
                if let Some(u) = value.as_u64() {
                    return <$t>::try_from(u)
                        .map_err(|_| type_err(stringify!($t), value));
                }
                Err(type_err(stringify!($t), value))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::from(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_err("f64", value))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::from(*self)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| type_err("f32", value))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| type_err("string", value))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_err("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(type_err("single-char string", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Arc::new)
    }
}

// No overlap with the generic impl above: `Deserialize` requires
// `Self: Sized`, which `str` can never satisfy.
impl<'de> Deserialize<'de> for Arc<str> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        String::deserialize_value(value).map(Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("array", value))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("array", value))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("array", value))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

/// Map keys serialize through `Value`: a key must render as a JSON string
/// (true for `String` and every transparent string newtype in this
/// workspace).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize_value() {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, Error> {
    K::deserialize_value(&Value::String(key.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut map = crate::Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.serialize_value());
        }
        Value::Object(map)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut map = crate::Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.serialize_value());
        }
        Value::Object(map)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| type_err("tuple array", value))?;
                if arr.len() != $len {
                    return Err(type_err(concat!("array of length ", $len), value));
                }
                let mut it = arr.iter();
                Ok(($($name::deserialize_value(it.next().unwrap())?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
    (A.0, B.1, C.2, D.3, E.4 ; 5)
    (A.0, B.1, C.2, D.3, E.4, F.5 ; 6)
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(type_err("null", other)),
        }
    }
}
