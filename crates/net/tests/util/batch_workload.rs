//! The shared batch workload used by every transport-parity suite
//! (`tcp_roundtrip.rs` single-node, `sharded_parity.rs` 4-shard): mixed
//! successes and per-item failures across `batch_commit`, `batch_put`,
//! and `batch_get`. Returns every item outcome in order so transports
//! can be compared verbatim.

use knactor_net::proto::ProfileSpec;
use knactor_net::ExchangeApi;
use knactor_store::{BatchOp, ItemResult, PutItem};
use knactor_types::{ObjectKey, Revision, StoreId};
use serde_json::json;

pub async fn batch_script(api: &dyn ExchangeApi) -> Vec<Vec<ItemResult>> {
    let store = StoreId::new("parity/batch");
    api.create_store(store.clone(), ProfileSpec::Instant)
        .await
        .unwrap();
    let mut outcomes = Vec::new();
    // Mixed commit: failing items must not poison their neighbours.
    outcomes.push(
        api.batch_commit(
            store.clone(),
            vec![
                BatchOp::Create {
                    key: ObjectKey::new("a"),
                    value: json!({"v": 1}),
                },
                BatchOp::Create {
                    key: ObjectKey::new("b"),
                    value: json!({"v": 2}),
                },
                BatchOp::Create {
                    key: ObjectKey::new("a"), // duplicate
                    value: json!({"v": 99}),
                },
                BatchOp::Update {
                    key: ObjectKey::new("ghost"), // missing
                    value: json!(0),
                    expected: None,
                },
                BatchOp::Update {
                    key: ObjectKey::new("a"),
                    value: json!({"v": 3}),
                    expected: Some(Revision(99)), // stale OCC guard
                },
                BatchOp::Patch {
                    key: ObjectKey::new("b"),
                    patch: json!({"note": "hi"}),
                    upsert: false,
                },
            ],
        )
        .await
        .unwrap(),
    );
    // Put sugar: merge-patch an existing object, upsert a new one, and
    // refuse a non-upsert put of a missing key.
    outcomes.push(
        api.batch_put(
            store.clone(),
            vec![
                PutItem {
                    key: ObjectKey::new("a"),
                    value: json!({"extra": true}),
                    upsert: false,
                },
                PutItem {
                    key: ObjectKey::new("c"),
                    value: json!({"v": 3}),
                    upsert: true,
                },
                PutItem {
                    key: ObjectKey::new("ghost"),
                    value: json!({}),
                    upsert: false,
                },
            ],
        )
        .await
        .unwrap(),
    );
    // Reads: hits interleaved with a miss.
    outcomes.push(
        api.batch_get(
            store.clone(),
            vec![
                ObjectKey::new("a"),
                ObjectKey::new("ghost"),
                ObjectKey::new("c"),
            ],
        )
        .await
        .unwrap(),
    );
    // Deletes: one real, one missing.
    outcomes.push(
        api.batch_commit(
            store,
            vec![
                BatchOp::Delete {
                    key: ObjectKey::new("b"),
                },
                BatchOp::Delete {
                    key: ObjectKey::new("ghost"),
                },
            ],
        )
        .await
        .unwrap(),
    );
    outcomes
}

/// Render item outcomes as compact comparable tags: committed revisions
/// become `rev`, objects keep their key, errors keep their typed code.
/// (Revision *numbers* are shard-local in a sharded deployment, so the
/// cross-topology comparison is on outcome shape + codes; exact revision
/// equality is asserted between same-topology transports.)
#[allow(dead_code)] // each parity suite uses a subset of this module
pub fn outcome_tags(items: &[ItemResult]) -> Vec<String> {
    items
        .iter()
        .map(|i| match i {
            ItemResult::Revision { .. } => "rev".to_string(),
            ItemResult::Object { object } => format!("obj:{}", object.key),
            ItemResult::Error { code, .. } => format!("err:{code}"),
        })
        .collect()
}
