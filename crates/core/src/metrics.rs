//! Exchange-level metrics: the registry, snapshots, and naming scheme.
//!
//! This is a re-export of [`knactor_types::metrics`] — the registry core
//! lives in the bottom-most crate so `store`, `logstore`, and `net` can
//! instrument their hot paths without depending on `knactor-core`. This
//! module is the front door applications and tests should use.
//!
//! # Naming convention
//!
//! Every metric is `knactor_<subsystem>_<what>[_total|_seconds]`, with
//! labels drawn from a small fixed vocabulary (`store`, `integrator`,
//! `edge`, `stage`, `op`, `kind`, `method`, `composer`):
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `knactor_store_ops_total` | counter | `store`, `op` |
//! | `knactor_store_commit_seconds` | histogram | `store` |
//! | `knactor_store_fanout_depth` | gauge | `store` |
//! | `knactor_store_outbox_lag` | gauge | `store` |
//! | `knactor_wal_appends_total` | counter | — |
//! | `knactor_wal_recoveries_total` | counter | — |
//! | `knactor_log_appends_total` | counter | `store` |
//! | `knactor_activations_total` | counter | `integrator` |
//! | `knactor_activation_stage_seconds` | histogram | `integrator`, `stage` |
//! | `knactor_client_retries_total` | counter | — |
//! | `knactor_client_backoff_seconds` | histogram | — |
//! | `knactor_fault_injections_total` | counter | `kind` |
//! | `knactor_composer_apply_seconds` | histogram | `composer` |
//! | `knactor_composer_events_total` | counter | `composer`, `kind` |
//! | `knactor_rpc_calls_total` | counter | `method` |
//! | `knactor_rpc_call_seconds` | histogram | `method` |
//! | `knactor_cast_coalesced_events_total` | counter | `integrator` |
//! | `knactor_sync_batched_records_total` | counter | `integrator` |
//! | `knactor_planner_cost` | gauge (ns/activation) | `composer`, `edge`, `choice` |
//! | `knactor_planner_replans_total` | counter | `composer` |
//! | `knactor_planner_replan_errors_total` | counter | `composer` |
//!
//! # Spans vs. histograms
//!
//! [`crate::telemetry::TraceCollector`] records *per-activation spans*
//! (one row per trace, ordered, with stage names); the histograms here
//! aggregate the **same stage names** (`read-sources`, `evaluate`,
//! `write:{alias}`, `pushdown-execute`, `process-record`, `apply`) into
//! latency distributions. A span answers "what happened to order #17";
//! the matching `knactor_activation_stage_seconds{stage=...}` histogram
//! answers "what does that stage cost at p99". Agreement between the two
//! is by construction: both are recorded from the same `Instant` at the
//! same call sites.

pub use knactor_types::metrics::{
    global, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS_NS,
};

use std::time::Duration;

/// Record one activation-stage duration into
/// `knactor_activation_stage_seconds{integrator,stage}`. Call it from the
/// same site (and with the same stage name) as the matching
/// `TraceCollector::record`, so spans and histograms agree by
/// construction.
pub fn observe_stage(integrator: &str, stage: &str, elapsed: Duration) {
    global()
        .histogram(
            "knactor_activation_stage_seconds",
            &[("integrator", integrator), ("stage", stage)],
        )
        .observe(elapsed);
}

/// Count one completed activation for `knactor_activations_total{integrator}`.
pub fn inc_activation(integrator: &str) {
    global()
        .counter("knactor_activations_total", &[("integrator", integrator)])
        .inc();
}
