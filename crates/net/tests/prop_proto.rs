//! Property tests: every wire message round-trips through encode/decode.

use knactor_net::proto::{
    decode, encode, EventBody, Hello, OpSpec, ProfileSpec, QuerySpec, Request, RequestEnvelope,
    Response, ServerMsg,
};
use knactor_store::{EventKind, TxOp, WatchEvent};
use knactor_types::{ObjectKey, Revision, StoreId, Value};
use proptest::prelude::*;
use serde_json::json;

fn any_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(json!(null)),
        any::<bool>().prop_map(|b| json!(b)),
        any::<i32>().prop_map(|n| json!(n)),
        "[a-zA-Z0-9 ]{0,10}".prop_map(|s| json!(s)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::Array),
            proptest::collection::btree_map("[a-z]{1,4}", inner, 0..3)
                .prop_map(|m| Value::Object(m.into_iter().collect())),
        ]
    })
}

fn any_request() -> impl Strategy<Value = Request> {
    let store = "[a-z]{1,6}/[a-z]{1,6}".prop_map(StoreId::new);
    let key = "[a-z0-9-]{1,8}".prop_map(ObjectKey::new);
    prop_oneof![
        Just(Request::Ping),
        (store.clone(), key.clone(), any_value()).prop_map(|(store, key, value)| Request::Create {
            store,
            key,
            value
        }),
        (store.clone(), key.clone()).prop_map(|(store, key)| Request::Get { store, key }),
        store.clone().prop_map(|store| Request::List { store }),
        (
            store.clone(),
            key.clone(),
            any_value(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(store, key, value, rev)| Request::Update {
                store,
                key,
                value,
                expected: rev.map(Revision),
            }),
        (store.clone(), key.clone(), any_value(), any::<bool>()).prop_map(
            |(store, key, patch, upsert)| Request::Patch {
                store,
                key,
                patch,
                upsert
            }
        ),
        (store.clone(), key.clone()).prop_map(|(store, key)| Request::Delete { store, key }),
        (store.clone(), any::<u64>()).prop_map(|(store, from)| Request::Watch {
            store,
            from: Revision(from)
        }),
        proptest::collection::vec(
            (store.clone(), key.clone(), any_value(), any::<bool>()).prop_map(
                |(store, key, patch, upsert)| TxOp {
                    store,
                    key,
                    patch,
                    upsert,
                    expected: None
                }
            ),
            0..3
        )
        .prop_map(|ops| Request::Transact { ops }),
        (store.clone(), any_value())
            .prop_map(|(store, fields)| Request::LogAppend { store, fields }),
        (
            store,
            "[a-z]{1,5}".prop_map(|f| QuerySpec {
                ops: vec![OpSpec::Rename {
                    from: f.clone(),
                    to: format!("{f}2")
                }],
            })
        )
            .prop_map(|(store, query)| Request::LogQuery { store, query }),
    ]
}

proptest! {
    #[test]
    fn request_envelope_roundtrip(id in any::<u64>(), body in any_request()) {
        let env = RequestEnvelope { id, body };
        let bytes = encode(&env).unwrap();
        let back: RequestEnvelope = decode(&bytes).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn server_msg_roundtrip(
        id in any::<u64>(),
        rev in any::<u64>(),
        key in "[a-z0-9-]{1,8}",
        value in any_value(),
    ) {
        let samples = vec![
            ServerMsg::Reply { id, response: Response::Revision { revision: Revision(rev) } },
            ServerMsg::Reply { id, response: Response::Ok },
            ServerMsg::Reply {
                id,
                response: Response::Error { code: "conflict".into(), message: "1:2".into() },
            },
            ServerMsg::Event {
                sub_id: id,
                body: EventBody::Object {
                    event: WatchEvent {
                        revision: Revision(rev),
                        kind: EventKind::Updated,
                        key: ObjectKey::new(key),
                        value: value.into(),
                    },
                },
            },
            ServerMsg::Event { sub_id: id, body: EventBody::Closed },
        ];
        for msg in samples {
            let bytes = encode(&msg).unwrap();
            let back: ServerMsg = decode(&bytes).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn hello_roundtrip(kind in "[a-z]{1,10}", name in "[a-zA-Z0-9_-]{1,16}") {
        let hello = Hello { subject_kind: kind, subject_name: name };
        let back: Hello = decode(&encode(&hello).unwrap()).unwrap();
        prop_assert_eq!(back, hello);
    }

    /// Profile specs survive the wire and materialize deterministically.
    #[test]
    fn profile_spec_roundtrip(which in 0u8..3) {
        let spec = match which {
            0 => ProfileSpec::Instant,
            1 => ProfileSpec::Redis,
            _ => ProfileSpec::Apiserver,
        };
        let back: ProfileSpec = decode(&encode(&spec).unwrap()).unwrap();
        prop_assert_eq!(back, spec);
    }
}
