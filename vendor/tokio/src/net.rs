//! TCP on top of nonblocking `std::net`, with timer-scheduled retry wakes
//! standing in for epoll readiness (the retry interval is ~200µs, well
//! under the engine profiles' modeled latencies).

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};
use crate::time::register_wake_at;
use std::io::{Read as _, Write as _};
use std::net::Shutdown;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

pub use std::net::ToSocketAddrs;

const RETRY: Duration = Duration::from_micros(200);

fn retry_later(cx: &mut Context<'_>) {
    register_wake_at(Instant::now() + RETRY, cx.waker().clone());
}

pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    pub async fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn accept(&self) -> std::io::Result<(TcpStream, std::net::SocketAddr)> {
        std::future::poll_fn(|cx| match self.inner.accept() {
            Ok((stream, addr)) => {
                stream.set_nonblocking(true)?;
                Poll::Ready(Ok((
                    TcpStream {
                        inner: Arc::new(stream),
                    },
                    addr,
                )))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                retry_later(cx);
                Poll::Pending
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

pub struct TcpStream {
    inner: Arc<std::net::TcpStream>,
}

impl TcpStream {
    pub async fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpStream> {
        // A blocking connect is fine: each task runs on its own thread.
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream {
            inner: Arc::new(inner),
        })
    }

    pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.peer_addr()
    }

    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        (
            OwnedReadHalf {
                inner: Arc::clone(&self.inner),
            },
            OwnedWriteHalf { inner: self.inner },
        )
    }
}

fn poll_read_inner(
    sock: &std::net::TcpStream,
    cx: &mut Context<'_>,
    buf: &mut ReadBuf<'_>,
) -> Poll<std::io::Result<()>> {
    let mut sock = sock;
    match sock.read(buf.unfilled_mut()) {
        Ok(n) => {
            buf.advance(n);
            Poll::Ready(Ok(()))
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
            retry_later(cx);
            Poll::Pending
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
        Err(e) => Poll::Ready(Err(e)),
    }
}

fn poll_write_inner(
    sock: &std::net::TcpStream,
    cx: &mut Context<'_>,
    data: &[u8],
) -> Poll<std::io::Result<usize>> {
    let mut sock = sock;
    match sock.write(data) {
        Ok(n) => Poll::Ready(Ok(n)),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
            retry_later(cx);
            Poll::Pending
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
        Err(e) => Poll::Ready(Err(e)),
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        poll_read_inner(&self.inner, cx, buf)
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        data: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        poll_write_inner(&self.inner, cx, data)
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        let _ = self.inner.shutdown(Shutdown::Write);
        Poll::Ready(Ok(()))
    }
}

pub struct OwnedReadHalf {
    inner: Arc<std::net::TcpStream>,
}

pub struct OwnedWriteHalf {
    inner: Arc<std::net::TcpStream>,
}

impl AsyncRead for OwnedReadHalf {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        poll_read_inner(&self.inner, cx, buf)
    }
}

impl AsyncWrite for OwnedWriteHalf {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        data: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        poll_write_inner(&self.inner, cx, data)
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        let _ = self.inner.shutdown(Shutdown::Write);
        Poll::Ready(Ok(()))
    }
}

impl Drop for OwnedWriteHalf {
    fn drop(&mut self) {
        // Mirror tokio: dropping the write half shuts down the write
        // direction so the peer observes EOF.
        let _ = self.inner.shutdown(Shutdown::Write);
    }
}
