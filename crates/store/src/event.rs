//! Watch events: the unit of state-change notification.

use knactor_types::{ObjectKey, Revision, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    Created,
    Updated,
    Deleted,
}

/// One committed change, as delivered to watchers and recorded in the WAL.
///
/// Events are totally ordered by [`WatchEvent::revision`]; the store emits
/// exactly one event per committed mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchEvent {
    pub revision: Revision,
    pub kind: EventKind,
    pub key: ObjectKey,
    /// The object value after the change (the last value for `Deleted`).
    ///
    /// Shared with the stored object itself: fanning an event out to N
    /// subscribers bumps a refcount N times instead of cloning the tree.
    pub value: Arc<Value>,
}

impl WatchEvent {
    pub fn is_delete(&self) -> bool {
        self.kind == EventKind::Deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn serde_roundtrip() {
        let e = WatchEvent {
            revision: Revision(7),
            kind: EventKind::Updated,
            key: ObjectKey::new("order-1"),
            value: Arc::new(json!({"x": 1})),
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: WatchEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
        assert!(!back.is_delete());
    }
}
