//! Fig. 1 / Fig. 2 / Fig. 3, executable: the same shipment flow composed
//! the API-centric way and the Knactor way, side by side.
//!
//! ```text
//! cargo run --example rpc_vs_knactor
//! ```
//!
//! Both paths produce the same business outcome; the difference is
//! *where the composition lives* (Checkout's code vs one DXG file) and
//! what a change costs (rebuild + redeploy vs a config swap).

use knactor::apps::retail::knactor_app::{self, RetailOptions};
use knactor::apps::retail::rpc_app::{serve_providers, CheckoutRpc};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[tokio::main]
async fn main() -> Result<()> {
    let processing = Duration::from_millis(50);
    let order = sample_order(1500.0);

    // ---------------- API-centric (Fig. 3a) ----------------
    println!("== API-centric (RPC) ==");
    println!("composition logic: inside Checkout (stubs + call sequencing)");
    let server = serve_providers(processing).await?;
    let checkout = CheckoutRpc::connect(server.local_addr().expect("bound")).await?;
    let t0 = Instant::now();
    let placed = checkout.place_order(&order).await?;
    let rpc_total = t0.elapsed();
    println!(
        "  placed: method={} payment={} tracking={}",
        placed.method, placed.payment_id, placed.tracking_id
    );
    println!("  total latency: {rpc_total:?}");
    server.shutdown().await;

    // ---------------- Knactor (Fig. 3b) ----------------
    println!("\n== Knactor (data-centric) ==");
    println!("composition logic: one DXG executed by the Cast integrator");
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = knactor_app::deploy(
        Arc::clone(&api),
        RetailOptions {
            shipment_processing: processing,
            ..Default::default()
        },
    )
    .await?;
    let t0 = Instant::now();
    let done = app
        .place_order("order-1", order, Duration::from_secs(10))
        .await?;
    let kn_total = t0.elapsed();
    let shipment = api.get("shipping/state".into(), "order-1".into()).await?;
    println!(
        "  placed: method={} payment={} tracking={}",
        shipment.value["method"], done["order"]["paymentID"], done["order"]["trackingID"]
    );
    println!("  total latency: {kn_total:?}");

    println!("\nBoth flows agree on the outcome; Knactor pays a (small)");
    println!("propagation overhead for run-time composability — the full");
    println!("breakdown is `cargo run -p knactor-bench --bin table2`.");
    app.shutdown().await;
    Ok(())
}
