//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! panic while holding a guard does not poison the lock for later users.
#![allow(clippy::all)]

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
