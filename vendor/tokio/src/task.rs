//! Task spawning: one OS thread per task, with abort support.

use crate::runtime::ThreadWaker;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned by awaiting a `JoinHandle` whose task was aborted
/// or panicked.
#[derive(Debug)]
pub struct JoinError {
    cancelled: bool,
}

impl JoinError {
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    pub fn is_panic(&self) -> bool {
        !self.cancelled
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            f.write_str("task was cancelled")
        } else {
            f.write_str("task panicked")
        }
    }
}

impl std::error::Error for JoinError {}

struct JoinState<T> {
    result: Option<Result<T, JoinError>>,
    join_waker: Option<Waker>,
    aborted: bool,
    finished: bool,
    task_waker: Option<Arc<ThreadWaker>>,
}

pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Request cancellation: the task thread observes the flag at its next
    /// wakeup, drops the future, and completes the handle with a
    /// cancellation error.
    pub fn abort(&self) {
        let mut s = self.state.lock().unwrap();
        if s.finished {
            return;
        }
        s.aborted = true;
        if let Some(tw) = &s.task_waker {
            tw.notify();
        }
    }

    pub fn is_finished(&self) -> bool {
        self.state.lock().unwrap().finished
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.lock().unwrap();
        if let Some(result) = s.result.take() {
            return Poll::Ready(result);
        }
        if s.finished {
            // Result already taken by an earlier poll.
            return Poll::Ready(Err(JoinError { cancelled: true }));
        }
        s.join_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

fn complete<T>(state: &Arc<Mutex<JoinState<T>>>, result: Result<T, JoinError>) {
    let mut s = state.lock().unwrap();
    s.result = Some(result);
    s.finished = true;
    s.task_waker = None;
    if let Some(w) = s.join_waker.take() {
        w.wake();
    }
}

pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let tw = ThreadWaker::new();
    let state = Arc::new(Mutex::new(JoinState {
        result: None,
        join_waker: None,
        aborted: false,
        finished: false,
        task_waker: Some(Arc::clone(&tw)),
    }));
    let thread_state = Arc::clone(&state);
    std::thread::Builder::new()
        .name("tokio-task".to_string())
        .spawn(move || {
            let waker = Waker::from(Arc::clone(&tw));
            let mut cx = Context::from_waker(&waker);
            let mut fut = Box::pin(fut);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                if thread_state.lock().unwrap().aborted {
                    return Err(JoinError { cancelled: true });
                }
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(v) => return Ok(v),
                    Poll::Pending => tw.wait(),
                }
            }));
            match outcome {
                Ok(result) => complete(&thread_state, result),
                Err(_panic) => complete(&thread_state, Err(JoinError { cancelled: false })),
            }
        })
        .expect("failed to spawn task thread");
    JoinHandle { state }
}

/// Run a blocking closure on its own thread.
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    spawn(async move { f() })
}

/// Yield once: wakes itself immediately so the executor re-polls after
/// giving other threads a chance to run.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                std::thread::yield_now();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}
