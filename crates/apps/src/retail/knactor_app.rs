//! The retail app, the Knactor way (Fig. 3b).
//!
//! Every service becomes a knactor that touches only its own store. The
//! shipment flow is composed entirely by one Cast integrator running the
//! Fig. 6 DXG (`assets/retail_dxg.yaml`):
//!
//! * Checkout's reconciler marks orders checked out — and *that is all
//!   it knows*. No shipping stubs, no payment stubs.
//! * Cast propagates order state into the Payment and Shipping stores.
//! * Payment's reconciler sees `amount` appear and posts `id`.
//! * Shipping's reconciler sees `addr`/`items` appear, "calls the
//!   carrier" (a simulated processing delay — the FedEx API the paper
//!   measured at ≈446 ms), posts `quote` and `id`.
//! * Cast propagates `quote.price`, payment `id`, and shipment `id` back
//!   into the order's `shippingCost` / `paymentID` / `trackingID`.

use crate::retail::carrier_quote;
use knactor_core::{
    ApplyReport, CastBinding, CastMode, Composer, Composition, FnReconciler, Knactor,
    ReconcilerCtx, Runtime, TraceCollector,
};
use knactor_dxg::Dxg;
use knactor_net::proto::ProfileSpec;
use knactor_net::ExchangeApi;
use knactor_store::WatchEvent;
use knactor_types::{ObjectKey, Result, StoreId, Value};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Tuning for the deployed app.
#[derive(Debug, Clone)]
pub struct RetailOptions {
    /// Simulated carrier-API processing time inside the Shipping
    /// reconciler (the paper's measured S stage, ≈446 ms).
    pub shipment_processing: Duration,
    /// Engine profile for every store.
    pub profile: ProfileSpec,
    /// Integrator mode (Direct or UDF pushdown).
    pub mode: CastMode,
}

impl Default for RetailOptions {
    fn default() -> Self {
        RetailOptions {
            shipment_processing: Duration::ZERO,
            profile: ProfileSpec::Instant,
            mode: CastMode::Direct,
        }
    }
}

/// A deployed Knactor retail app.
pub struct RetailApp {
    pub runtime: Runtime,
    pub composer: Composer,
    pub traces: TraceCollector,
    api: Arc<dyn ExchangeApi>,
    mode: CastMode,
}

/// The Fig. 6 DXG, loaded from the shipped asset.
pub fn retail_dxg() -> Result<Dxg> {
    let text = std::fs::read_to_string(crate::crate_file("assets/retail_dxg.yaml"))?;
    Dxg::parse(&text)
}

/// Alias bindings for the retail DXG: C/S/P correlate by order key.
pub fn retail_bindings() -> BTreeMap<String, CastBinding> {
    let mut bindings = BTreeMap::new();
    bindings.insert("C".to_string(), CastBinding::correlated("checkout/state"));
    bindings.insert("S".to_string(), CastBinding::correlated("shipping/state"));
    bindings.insert("P".to_string(), CastBinding::correlated("payment/state"));
    bindings
}

/// The declarative composition the app applies: one DXG with bindings.
pub fn retail_composition(dxg: Dxg, mode: CastMode) -> Composition {
    Composition::new().with_cast(dxg, retail_bindings(), mode)
}

/// Build the eleven knactors (reconcilers included where the shipment
/// flow needs behaviour; the rest externalize state and serve reads).
fn build_knactors(opts: &RetailOptions) -> Vec<Knactor> {
    let shipment_processing = opts.shipment_processing;
    let mut knactors = Vec::new();

    // Checkout: marks incoming orders as checked out. Note what is
    // absent: any reference to Shipping or Payment.
    knactors.push(
        Knactor::builder("checkout")
            .object_store("state")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    let has_order = event
                        .value
                        .get("order")
                        .map(|o| !o.is_null())
                        .unwrap_or(false);
                    let not_marked = event
                        .value
                        .get("status")
                        .map(|s| s.is_null())
                        .unwrap_or(true);
                    if has_order && not_marked {
                        ctx.patch(&event.key, json!({"status": "checked-out"}))
                            .await?;
                    }
                    Ok(())
                },
            ))
            .build(),
    );

    // Shipping: when a shipment request materializes (addr + items) and
    // no quote exists yet, call the "carrier" and post quote + id.
    knactors.push(
        Knactor::builder("shipping")
            .object_store("state")
            .reconciler(FnReconciler::new(
                move |ctx: ReconcilerCtx, event: WatchEvent| {
                    let processing = shipment_processing;
                    async move {
                        let ready = event
                            .value
                            .get("addr")
                            .map(|a| !a.is_null())
                            .unwrap_or(false)
                            && event
                                .value
                                .get("items")
                                .map(|i| !i.is_null())
                                .unwrap_or(false);
                        let done = event.value.get("id").map(|v| !v.is_null()).unwrap_or(false);
                        if ready && !done {
                            // The carrier call (FedEx in the paper's setup).
                            if processing > Duration::ZERO {
                                tokio::time::sleep(processing).await;
                            }
                            let items = event.value["items"]
                                .as_array()
                                .map(|a| a.len())
                                .unwrap_or(0);
                            ctx.patch(
                                &event.key,
                                json!({
                                    "quote": carrier_quote(items),
                                    "id": format!("track-{}", event.key),
                                }),
                            )
                            .await?;
                        }
                        Ok(())
                    }
                },
            ))
            .build(),
    );

    // Payment: when an amount appears and no payment exists, charge and
    // post the payment id.
    knactors.push(
        Knactor::builder("payment")
            .object_store("state")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    let ready = event
                        .value
                        .get("amount")
                        .map(|a| !a.is_null())
                        .unwrap_or(false);
                    let done = event.value.get("id").map(|v| !v.is_null()).unwrap_or(false);
                    if ready && !done {
                        ctx.patch(&event.key, json!({"id": format!("pay-{}", event.key)}))
                            .await?;
                    }
                    Ok(())
                },
            ))
            .build(),
    );

    // Email: announces completed orders into its own audit log once a
    // tracking id flows back (state it can see in... its own store? No —
    // Email owns a *notification* store the integrator can feed. Here it
    // reacts to notification objects appearing in its own store.)
    knactors.push(
        Knactor::builder("email")
            .object_store("state")
            .log_store("sent")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    let pending = event
                        .value
                        .get("notify")
                        .map(|n| !n.is_null())
                        .unwrap_or(false);
                    let sent = event
                        .value
                        .get("sentAt")
                        .map(|v| !v.is_null())
                        .unwrap_or(false);
                    if pending && !sent {
                        let log = ctx.log_stores.first().cloned();
                        if let Some(log) = log {
                            ctx.emit(
                                &log,
                                json!({"to": event.value["notify"], "order": event.key.as_str()}),
                            )
                            .await?;
                        }
                        ctx.patch(&event.key, json!({"sentAt": "logical-now"}))
                            .await?;
                    }
                    Ok(())
                },
            ))
            .build(),
    );

    // Inventory: tracks stock movements in a log store.
    knactors.push(
        Knactor::builder("inventory")
            .object_store("state")
            .log_store("movements")
            .build(),
    );

    // The remaining services externalize state without bespoke
    // reconcile behaviour in the shipment flow.
    for name in [
        "frontend",
        "productcatalog",
        "cart",
        "currency",
        "recommendation",
        "ad",
    ] {
        knactors.push(Knactor::builder(name).object_store("state").build());
    }
    knactors
}

/// Deploy the whole app: stores, schemas, reconcilers, integrator.
pub async fn deploy(api: Arc<dyn ExchangeApi>, opts: RetailOptions) -> Result<RetailApp> {
    let runtime = Runtime::new();
    for knactor in build_knactors(&opts) {
        // Create the stores here so they honor the requested engine
        // profile (externalize() would use the default).
        for store in &knactor.object_stores {
            api.create_store(store.clone(), opts.profile.clone())
                .await?;
        }
        for store in &knactor.log_stores {
            api.log_create_store(store.clone()).await?;
        }
        runtime
            .deploy_pre_externalized(knactor, Arc::clone(&api))
            .await?;
    }

    // The shipment flow is declared, not wired: the composer slices the
    // DXG into per-target edges and runs one Cast per edge. Evolving the
    // composition later is a second `apply` — see
    // [`RetailApp::apply_dxg`].
    let traces = TraceCollector::new();
    let composer = Composer::new("retail", Arc::clone(&api)).with_traces(traces.clone());
    composer.supervise(&runtime);
    composer
        .apply(retail_composition(retail_dxg()?, opts.mode.clone()))
        .await?;

    Ok(RetailApp {
        runtime,
        composer,
        traces,
        api,
        mode: opts.mode,
    })
}

impl RetailApp {
    /// Submit an order and wait for the full shipment flow to complete:
    /// payment id, tracking id, and shipping cost present on the order.
    /// Returns the completed order value.
    pub async fn place_order(&self, key: &str, order: Value, timeout: Duration) -> Result<Value> {
        let key = ObjectKey::new(key);
        self.api
            .create(StoreId::new("checkout/state"), key.clone(), order)
            .await?;
        let deadline = tokio::time::Instant::now() + timeout;
        loop {
            let obj = self
                .api
                .get(StoreId::new("checkout/state"), key.clone())
                .await?;
            let order = &obj.value["order"];
            let complete = !order["paymentID"].is_null()
                && !order["trackingID"].is_null()
                && !order["shippingCost"].is_null();
            if complete {
                return Ok(std::sync::Arc::unwrap_or_clone(obj.value));
            }
            if tokio::time::Instant::now() >= deadline {
                return Err(knactor_types::Error::Timeout(format!(
                    "order {key} incomplete: {}",
                    obj.value
                )));
            }
            tokio::time::sleep(Duration::from_millis(2)).await;
        }
    }

    pub fn api(&self) -> &Arc<dyn ExchangeApi> {
        &self.api
    }

    /// Live-reconfigure the shipment flow to a new DXG (tasks T1–T3 of
    /// Table 1): one `Composer::apply`, disturbing only the edges the
    /// spec change touches.
    pub async fn apply_dxg(&self, dxg: Dxg) -> Result<ApplyReport> {
        self.composer
            .apply(retail_composition(dxg, self.mode.clone()))
            .await
    }

    /// Like [`RetailApp::apply_dxg`] but with explicit bindings (e.g. a
    /// composition extended with aliases beyond C/S/P).
    pub async fn apply_composition(&self, composition: Composition) -> Result<ApplyReport> {
        self.composer.apply(composition).await
    }

    /// Graceful teardown.
    pub async fn shutdown(self) {
        self.composer.shutdown_all().await;
        self.runtime.shutdown().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retail::sample_order;
    use knactor_net::loopback::in_process;
    use knactor_rbac::Subject;

    #[tokio::test]
    async fn shipment_flow_end_to_end() {
        let (_, _, client) = in_process(Subject::integrator("retail"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api), RetailOptions::default())
            .await
            .unwrap();

        let value = app
            .place_order("order-1001", sample_order(1200.0), Duration::from_secs(10))
            .await
            .unwrap();
        let order = &value["order"];
        assert_eq!(order["paymentID"], json!("pay-order-1001"));
        assert_eq!(order["trackingID"], json!("track-order-1001"));
        // Two items → quote price 9.0 → converted USD→USD unchanged.
        assert_eq!(order["shippingCost"], json!(9.0));

        // The shipment method policy fired (cost 1200 > 1000 → air).
        let shipment = api
            .get(StoreId::new("shipping/state"), ObjectKey::new("order-1001"))
            .await
            .unwrap();
        assert_eq!(shipment.value["method"], json!("air"));
        assert_eq!(shipment.value["items"], json!(["mug", "poster"]));
        app.shutdown().await;
    }

    #[tokio::test]
    async fn cheap_order_ships_ground() {
        let (_, _, client) = in_process(Subject::integrator("retail"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api), RetailOptions::default())
            .await
            .unwrap();
        app.place_order("order-7", sample_order(40.0), Duration::from_secs(10))
            .await
            .unwrap();
        let shipment = api
            .get(StoreId::new("shipping/state"), ObjectKey::new("order-7"))
            .await
            .unwrap();
        assert_eq!(shipment.value["method"], json!("ground"));
        app.shutdown().await;
    }

    #[tokio::test]
    async fn pushdown_mode_flow() {
        let (_, _, client) = in_process(Subject::integrator("retail"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(
            Arc::clone(&api),
            RetailOptions {
                mode: CastMode::Pushdown {
                    udf_name: "retail-dxg".to_string(),
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let value = app
            .place_order("order-u", sample_order(1500.0), Duration::from_secs(10))
            .await
            .unwrap();
        assert_eq!(value["order"]["trackingID"], json!("track-order-u"));
        app.shutdown().await;
    }
}
