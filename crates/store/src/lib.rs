//! # knactor-store
//!
//! The **Object data exchange** (DE): a logically centralized service that
//! hosts per-knactor data stores keeping state as attribute–value objects,
//! with CRUD, watch, retention, access control, and server-side UDF
//! execution (§3.2–3.3 of the paper).
//!
//! ## Layering
//!
//! * [`store::ObjectStore`] — the synchronous, versioned k-v core: CRUD
//!   with optimistic concurrency, a strictly monotonic store revision, an
//!   ordered and resumable watch history, schema validation, and
//!   reference-counted state retention.
//! * [`wal::Wal`] — a write-ahead log giving the "apiserver-like" engine
//!   its durability (and its latency: each commit is an `fsync`).
//! * [`profile::EngineProfile`] — the knob set that turns the same core
//!   into the paper's different exchanges: `apiserver()` (durable,
//!   poll-based watch delivery) vs `redis()` (in-memory, push delivery).
//! * [`handle::StoreHandle`] — the async client surface used by
//!   reconcilers and integrators; applies the engine profile's latency
//!   behaviour and the exchange's access control.
//! * [`exchange::DataExchange`] — hosts many stores, the schema registry,
//!   the access controller, and the UDF runtime ([`udf`]) that lets
//!   integrators push composition logic down into the exchange.
//!
//! ## Invariants (property-tested in `tests/`)
//!
//! * the store revision increases by exactly one per committed mutation
//! * a watch from revision *r* delivers every later committed event
//!   exactly once, in revision order
//! * an update carrying a stale expected revision never commits
//! * a WAL replay reconstructs exactly the committed state

pub mod batch;
pub mod event;
pub mod exchange;
pub mod handle;
pub mod object;
pub mod profile;
pub mod repl;
pub mod shard;
pub mod store;
pub mod udf;
pub mod wal;

pub use batch::{BatchOp, ItemResult, PutItem};
pub use event::{EventKind, WatchEvent};
pub use exchange::{DataExchange, TxOp};
pub use handle::StoreHandle;
pub use object::{RetentionPolicy, StoredObject};
pub use profile::EngineProfile;
pub use repl::{ApplyOutcome, FollowerCursor, ReplGroup, ReplState};
pub use shard::ShardMap;
pub use store::ObjectStore;
pub use udf::{Udf, UdfBinding};
pub use wal::{CrashPoint, Recovery, Wal};
