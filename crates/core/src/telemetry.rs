//! Exchange-level tracing.
//!
//! API-centric composition hides data flows inside pairwise calls; the
//! paper argues data-centric composition makes them observable. This
//! module is that observability surface: integrators record one
//! [`Span`] per activation stage, tagged with a trace id that follows the
//! state across stores (the distributed-tracing "follow the request"
//! pattern, applied to exchanged state).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One timed stage of an exchange activation.
#[derive(Debug, Clone)]
pub struct Span {
    /// Correlates every span of one activation (usually the trigger key).
    pub trace_id: String,
    /// Component that recorded the span (`cast:retail`, `sync:motion`).
    pub component: String,
    /// Stage name (`read-sources`, `evaluate`, `write:S`, …).
    pub stage: String,
    pub duration: Duration,
    /// When the span was recorded (stage end); `recorded_at - duration`
    /// is the stage start. Lets harnesses align spans with external
    /// timestamps (the Table 2 breakdown does).
    pub recorded_at: Instant,
}

impl Span {
    /// Wall-clock start of the stage.
    pub fn started_at(&self) -> Instant {
        self.recorded_at - self.duration
    }
}

/// A process-wide collector integrators report into.
#[derive(Clone, Default)]
pub struct TraceCollector {
    spans: Arc<Mutex<Vec<Span>>>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceCollector({} spans)", self.spans.lock().len())
    }
}

impl TraceCollector {
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    pub fn record(&self, trace_id: &str, component: &str, stage: &str, duration: Duration) {
        self.spans.lock().push(Span {
            trace_id: trace_id.to_string(),
            component: component.to_string(),
            stage: stage.to_string(),
            duration,
            recorded_at: Instant::now(),
        });
    }

    /// Time a closure and record it.
    pub fn time<T>(
        &self,
        trace_id: &str,
        component: &str,
        stage: &str,
        f: impl FnOnce() -> T,
    ) -> T {
        let start = Instant::now();
        let out = f();
        self.record(trace_id, component, stage, start.elapsed());
        out
    }

    /// All spans recorded so far (clone; collection keeps accumulating).
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Spans belonging to one activation.
    pub fn trace(&self, trace_id: &str) -> Vec<Span> {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Total time per stage across all activations (benchmark reporting).
    pub fn stage_totals(&self) -> Vec<(String, Duration)> {
        let mut totals: std::collections::BTreeMap<String, Duration> = Default::default();
        for span in self.spans.lock().iter() {
            *totals.entry(span.stage.clone()).or_default() += span.duration;
        }
        totals.into_iter().collect()
    }

    pub fn clear(&self) {
        self.spans.lock().clear();
    }
}

/// Named monotone counters (composer apply outcomes, per-edge restart
/// counts, …). Spans time *stages*; counters count *events* — the
/// composer records both: an `apply` span for latency and counters like
/// `composer.edge.cast:S.restarts` for lifecycle accounting.
#[derive(Clone, Default)]
pub struct Counters {
    inner: Arc<Mutex<std::collections::BTreeMap<String, u64>>>,
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counters({} names)", self.inner.lock().len())
    }
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `by` to `name`, returning the new value.
    pub fn add(&self, name: &str, by: u64) -> u64 {
        let mut inner = self.inner.lock();
        let slot = inner.entry(name.to_string()).or_insert(0);
        *slot += by;
        *slot
    }

    /// Increment `name` by one, returning the new value.
    pub fn incr(&self, name: &str) -> u64 {
        self.add(name, 1)
    }

    /// Current value of `name` (0 when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = Counters::new();
        assert_eq!(c.get("composer.apply.ok"), 0);
        assert_eq!(c.incr("composer.apply.ok"), 1);
        assert_eq!(c.add("composer.apply.ok", 2), 3);
        c.incr("composer.apply.rolled_back");
        let snap = c.snapshot();
        assert_eq!(
            snap,
            vec![
                ("composer.apply.ok".to_string(), 3),
                ("composer.apply.rolled_back".to_string(), 1),
            ]
        );
    }

    #[test]
    fn record_and_query() {
        let tc = TraceCollector::new();
        tc.record(
            "order-1",
            "cast:retail",
            "evaluate",
            Duration::from_millis(2),
        );
        tc.record(
            "order-1",
            "cast:retail",
            "write:S",
            Duration::from_millis(3),
        );
        tc.record(
            "order-2",
            "cast:retail",
            "evaluate",
            Duration::from_millis(1),
        );
        assert_eq!(tc.spans().len(), 3);
        assert_eq!(tc.trace("order-1").len(), 2);
        let totals = tc.stage_totals();
        assert_eq!(totals.len(), 2);
        let eval = totals.iter().find(|(s, _)| s == "evaluate").unwrap();
        assert_eq!(eval.1, Duration::from_millis(3));
        tc.clear();
        assert!(tc.spans().is_empty());
    }

    #[test]
    fn time_wraps_closure() {
        let tc = TraceCollector::new();
        let v = tc.time("t", "c", "s", || 42);
        assert_eq!(v, 42);
        assert_eq!(tc.spans().len(), 1);
    }
}
