//! Property tests for the expression language.

use knactor_expr::{eval, parse_expr, Env, FnRegistry};
use proptest::prelude::*;
use serde_json::json;

/// Generate small random expression *sources* from a grammar, so the tests
/// exercise the parser and printer together.
fn expr_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..1000u32).prop_map(|n| n.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("\"s\"".to_string()),
        Just("true".to_string()),
        Just("null".to_string()),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} == {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, c, b)| format!("({a} if {c} else {b})")),
            inner.clone().prop_map(|a| format!("(not {a})")),
            inner.clone().prop_map(|a| format!("[{a} for v in xs]")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("[{a}, {b}]")),
        ]
    })
}

fn env() -> Env {
    let mut e = Env::new();
    e.bind("x", json!(3.0));
    e.bind("y", json!("hello"));
    e.bind("xs", json!([1.0, 2.0, 3.0]));
    e
}

proptest! {
    /// Parsing never panics on arbitrary printable input.
    #[test]
    fn parse_total(src in "[ -~]{0,80}") {
        let _ = parse_expr(&src);
    }

    /// parse ∘ print ∘ parse is a fixpoint: the printed form of a parsed
    /// expression re-parses to the identical AST.
    #[test]
    fn print_parse_fixpoint(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let printed = ast.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("printed form '{printed}' failed: {e}"));
            prop_assert_eq!(reparsed, ast);
        }
    }

    /// Evaluation is deterministic: two evaluations agree (or both fail).
    #[test]
    fn eval_deterministic(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let e = env();
            let a = eval(&ast, &e, &fns);
            let b = eval(&ast, &e, &fns);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (eval(&ast, &e, &fns), eval(&ast, &e, &fns)) {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Evaluation never panics, whatever expression the grammar produced.
    #[test]
    fn eval_total(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let _ = eval(&ast, &env(), &fns);
        }
    }

    /// free_roots of a generated expression only ever mentions the
    /// identifiers the grammar can produce.
    #[test]
    fn free_roots_sound(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            for root in ast.free_roots() {
                prop_assert!(
                    ["x", "y", "xs", "v"].contains(&root.as_str()),
                    "unexpected root {root}"
                );
                // "v" is bound by comprehensions; it may only appear free
                // when used as a comprehension *source*, which the grammar
                // never generates.
                prop_assert_ne!(root, "v");
            }
        }
    }

    /// Comparisons always yield booleans when they succeed.
    #[test]
    fn comparisons_yield_bool(a in -100i32..100, b in -100i32..100) {
        let fns = FnRegistry::standard();
        let e = Env::new();
        for op in ["<", "<=", ">", ">=", "==", "!="] {
            let src = format!("{a} {op} {b}");
            let v = eval(&parse_expr(&src).unwrap(), &e, &fns).unwrap();
            prop_assert!(v.is_boolean(), "{src} -> {v}");
        }
    }

    /// Arithmetic on integers matches f64 arithmetic.
    #[test]
    fn arithmetic_matches_f64(a in -1000i32..1000, b in -1000i32..1000) {
        let fns = FnRegistry::standard();
        let e = Env::new();
        let v = eval(&parse_expr(&format!("{a} + {b} * 2")).unwrap(), &e, &fns).unwrap();
        prop_assert_eq!(v, json!(a as f64 + b as f64 * 2.0));
    }
}

proptest! {
    /// Constant folding preserves semantics exactly: folded and original
    /// expressions agree on the success value, and on whether evaluation
    /// errors at all (erroring sub-trees are never folded away).
    #[test]
    fn fold_preserves_semantics(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let folded = knactor_expr::fold_constants(&ast, &fns);
            let e = env();
            let a = eval(&ast, &e, &fns);
            let b = eval(&folded, &e, &fns);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "fold changed value of '{}'", src),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "fold changed outcome of '{}': {:?} vs {:?}", src, a, b),
            }
        }
    }

    /// Folding is idempotent.
    #[test]
    fn fold_idempotent(src in expr_src()) {
        if let Ok(ast) = parse_expr(&src) {
            let fns = FnRegistry::standard();
            let once = knactor_expr::fold_constants(&ast, &fns);
            let twice = knactor_expr::fold_constants(&once, &fns);
            prop_assert_eq!(once, twice);
        }
    }
}
