//! Append-only log stores and the exchange hosting them.

use knactor_types::metrics::{self, Counter};
use knactor_types::{Error, Result, StoreId, Value};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use tokio::sync::mpsc;

/// Records per segment before rotation. Segments exist to bound the cost
/// of scans that only need recent data and to give retention a natural
/// truncation unit.
const SEGMENT_CAPACITY: usize = 1024;

/// One ingested record: a sequence number and a structured payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Per-store, strictly monotone, starting at 1.
    pub seq: u64,
    /// Arbitrary structured data (schema-on-read).
    pub fields: Value,
}

/// A sealed or active run of consecutive records.
#[derive(Debug, Default)]
struct Segment {
    records: Vec<LogRecord>,
}

/// An append-only log store with tailing.
pub struct LogStore {
    id: StoreId,
    inner: Mutex<LogInner>,
    /// `knactor_log_appends_total{store=<id>}`, registered once at
    /// construction so the append path only bumps an atomic.
    appends: Arc<Counter>,
}

#[derive(Default)]
struct LogInner {
    segments: Vec<Segment>,
    next_seq: u64,
    tails: Vec<mpsc::UnboundedSender<LogRecord>>,
    /// Maximum records retained (oldest segments truncate first);
    /// `None` = unbounded.
    retain_max: Option<usize>,
    total: usize,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LogStore")
            .field("id", &self.id)
            .field("records", &inner.total)
            .field("segments", &inner.segments.len())
            .finish()
    }
}

impl LogStore {
    pub fn new(id: impl Into<StoreId>) -> LogStore {
        let id = id.into();
        let appends =
            metrics::global().counter("knactor_log_appends_total", &[("store", &id.to_string())]);
        LogStore {
            id,
            inner: Mutex::new(LogInner {
                next_seq: 1,
                ..Default::default()
            }),
            appends,
        }
    }

    pub fn id(&self) -> &StoreId {
        &self.id
    }

    /// Bound retained records; excess oldest segments are dropped on the
    /// next append. Tailers are unaffected (they already received those
    /// records).
    pub fn set_retention(&self, max_records: Option<usize>) {
        self.inner.lock().retain_max = max_records;
    }

    /// Ingest one record. Non-object payloads are wrapped as
    /// `{"value": …}` so schema-on-read field access always has an object
    /// to address.
    pub fn append(&self, fields: Value) -> u64 {
        let fields = match fields {
            Value::Object(_) => fields,
            other => serde_json::json!({ "value": other }),
        };
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let record = LogRecord { seq, fields };
        if inner
            .segments
            .last()
            .map(|s| s.records.len() >= SEGMENT_CAPACITY)
            .unwrap_or(true)
        {
            inner.segments.push(Segment::default());
        }
        inner
            .segments
            .last_mut()
            .expect("segment pushed above")
            .records
            .push(record.clone());
        inner.total += 1;
        // Retention: drop whole oldest segments while over budget.
        if let Some(max) = inner.retain_max {
            while inner.total > max && inner.segments.len() > 1 {
                let dropped = inner.segments.remove(0);
                inner.total -= dropped.records.len();
            }
        }
        inner.tails.retain(|tx| tx.send(record.clone()).is_ok());
        self.appends.inc();
        seq
    }

    /// Ingest a batch under one lock acquisition (retention runs once,
    /// after the whole batch); returns the sequence of the last record.
    pub fn append_batch(&self, batch: impl IntoIterator<Item = Value>) -> u64 {
        let mut inner = self.inner.lock();
        let mut last = inner.next_seq.saturating_sub(1);
        let mut appended: u64 = 0;
        for fields in batch {
            let fields = match fields {
                Value::Object(_) => fields,
                other => serde_json::json!({ "value": other }),
            };
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let record = LogRecord { seq, fields };
            if inner
                .segments
                .last()
                .map(|s| s.records.len() >= SEGMENT_CAPACITY)
                .unwrap_or(true)
            {
                inner.segments.push(Segment::default());
            }
            inner
                .segments
                .last_mut()
                .expect("segment pushed above")
                .records
                .push(record.clone());
            inner.total += 1;
            inner.tails.retain(|tx| tx.send(record.clone()).is_ok());
            last = seq;
            appended += 1;
        }
        if let Some(max) = inner.retain_max {
            while inner.total > max && inner.segments.len() > 1 {
                let dropped = inner.segments.remove(0);
                inner.total -= dropped.records.len();
            }
        }
        self.appends.add(appended);
        last
    }

    /// All retained records with `seq > from`, in order.
    pub fn read_from(&self, from: u64) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner
            .segments
            .iter()
            .flat_map(|s| s.records.iter())
            .filter(|r| r.seq > from)
            .cloned()
            .collect()
    }

    /// Everything retained.
    pub fn read_all(&self) -> Vec<LogRecord> {
        self.read_from(0)
    }

    /// The sequence number of the most recent record (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().total
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live subscription: replays retained records with `seq > from`,
    /// then continues with new appends, gapless and in order.
    ///
    /// If `from` is older than the retention window the replay starts at
    /// the oldest retained record — logs, unlike object stores, tolerate
    /// holes by design (sensor telemetry is lossy); callers that need
    /// gap detection can check `seq` continuity themselves.
    pub fn tail(&self, from: u64) -> mpsc::UnboundedReceiver<LogRecord> {
        let mut inner = self.inner.lock();
        let (tx, rx) = mpsc::unbounded_channel();
        for rec in inner
            .segments
            .iter()
            .flat_map(|s| s.records.iter())
            .filter(|r| r.seq > from)
        {
            let _ = tx.send(rec.clone());
        }
        inner.tails.push(tx);
        rx
    }
}

/// Hosts many log stores (the Log DE of Fig. 4). Access control follows
/// the same model as the Object exchange; verbs map as ingest→`create`,
/// read/query/tail→`get`.
pub struct LogExchange {
    stores: RwLock<BTreeMap<StoreId, Arc<LogStore>>>,
    access: Arc<RwLock<knactor_rbac_shim::AccessShim>>,
}

/// Minimal indirection so the logstore crate does not depend on the rbac
/// crate directly (it is below it in the dependency order used by the
/// net layer); enforcement semantics are injected by the embedder.
mod knactor_rbac_shim {
    use knactor_types::StoreId;

    /// Injected permission oracle: `(subject, verb, store) -> allowed`.
    pub type CheckFn = Box<dyn Fn(&str, &str, &StoreId) -> bool + Send + Sync>;

    #[derive(Default)]
    pub struct AccessShim {
        check: Option<CheckFn>,
    }

    impl AccessShim {
        pub fn allows(&self, subject: &str, verb: &str, store: &StoreId) -> bool {
            match &self.check {
                Some(f) => f(subject, verb, store),
                None => true,
            }
        }

        pub fn set(&mut self, f: CheckFn) {
            self.check = Some(f);
        }
    }
}

impl Default for LogExchange {
    fn default() -> Self {
        LogExchange::new()
    }
}

impl LogExchange {
    pub fn new() -> LogExchange {
        LogExchange {
            stores: RwLock::new(BTreeMap::new()),
            access: Arc::new(RwLock::new(Default::default())),
        }
    }

    /// Install a permission oracle (wired to `knactor-rbac` by the
    /// embedding exchange server).
    pub fn set_access_check(
        &self,
        f: impl Fn(&str, &str, &StoreId) -> bool + Send + Sync + 'static,
    ) {
        self.access.write().set(Box::new(f));
    }

    pub fn create_store(&self, id: impl Into<StoreId>) -> Result<Arc<LogStore>> {
        let id = id.into();
        let mut stores = self.stores.write();
        if stores.contains_key(&id) {
            return Err(Error::AlreadyExists(format!("log store {id}")));
        }
        let store = Arc::new(LogStore::new(id.clone()));
        stores.insert(id, Arc::clone(&store));
        Ok(store)
    }

    pub fn store(&self, id: &StoreId) -> Result<Arc<LogStore>> {
        self.stores
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("log store {id}")))
    }

    pub fn store_ids(&self) -> Vec<StoreId> {
        self.stores.read().keys().cloned().collect()
    }

    /// Ingest with access check.
    pub fn ingest(&self, subject: &str, id: &StoreId, fields: Value) -> Result<u64> {
        if !self.access.read().allows(subject, "create", id) {
            return Err(Error::Forbidden(format!(
                "{subject} may not ingest into {id}"
            )));
        }
        Ok(self.store(id)?.append(fields))
    }

    /// Ingest a batch with one access check (the check is per subject and
    /// store, not per record) and one store-lock acquisition.
    pub fn ingest_batch(&self, subject: &str, id: &StoreId, batch: Vec<Value>) -> Result<u64> {
        if !self.access.read().allows(subject, "create", id) {
            return Err(Error::Forbidden(format!(
                "{subject} may not ingest into {id}"
            )));
        }
        Ok(self.store(id)?.append_batch(batch))
    }

    /// Query with access check (see [`crate::query::Query::run`]).
    pub fn query(
        &self,
        subject: &str,
        id: &StoreId,
        query: &crate::query::Query,
    ) -> Result<Vec<Value>> {
        if !self.access.read().allows(subject, "get", id) {
            return Err(Error::Forbidden(format!("{subject} may not query {id}")));
        }
        let records = self.store(id)?.read_all();
        query.run(records.into_iter().map(|r| r.fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn append_assigns_monotone_seqs() {
        let log = LogStore::new("motion/telemetry");
        assert_eq!(log.append(json!({"triggered": true})), 1);
        assert_eq!(log.append(json!({"triggered": false})), 2);
        assert_eq!(log.last_seq(), 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn non_object_payload_is_wrapped() {
        let log = LogStore::new("t");
        log.append(json!(42));
        assert_eq!(log.read_all()[0].fields, json!({"value": 42}));
    }

    #[test]
    fn read_from_filters_by_seq() {
        let log = LogStore::new("t");
        for i in 0..5 {
            log.append(json!({"i": i}));
        }
        let recs = log.read_from(3);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 4);
    }

    #[test]
    fn segment_rotation_preserves_order() {
        let log = LogStore::new("t");
        let n = SEGMENT_CAPACITY * 2 + 10;
        for i in 0..n {
            log.append(json!({"i": i}));
        }
        let recs = log.read_all();
        assert_eq!(recs.len(), n);
        for (idx, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, idx as u64 + 1);
        }
    }

    #[test]
    fn retention_drops_oldest_segments() {
        let log = LogStore::new("t");
        log.set_retention(Some(SEGMENT_CAPACITY));
        for i in 0..(SEGMENT_CAPACITY * 3) {
            log.append(json!({"i": i}));
        }
        assert!(
            log.len() <= SEGMENT_CAPACITY * 2,
            "retention must bound growth"
        );
        // Sequence numbers keep counting despite truncation.
        assert_eq!(log.last_seq(), (SEGMENT_CAPACITY * 3) as u64);
        let first_retained = log.read_all()[0].seq;
        assert!(first_retained > 1);
    }

    #[tokio::test]
    async fn tail_replays_then_follows() {
        let log = LogStore::new("t");
        log.append(json!({"i": 0}));
        log.append(json!({"i": 1}));
        let mut rx = log.tail(1);
        // Replay of seq 2.
        assert_eq!(rx.recv().await.unwrap().seq, 2);
        // Live append.
        log.append(json!({"i": 2}));
        assert_eq!(rx.recv().await.unwrap().seq, 3);
    }

    #[tokio::test]
    async fn dropped_tail_is_pruned() {
        let log = LogStore::new("t");
        let rx = log.tail(0);
        drop(rx);
        log.append(json!({}));
        assert_eq!(log.inner.lock().tails.len(), 0);
    }

    #[test]
    fn exchange_create_and_lookup() {
        let de = LogExchange::new();
        de.create_store("motion/telemetry").unwrap();
        assert!(de.create_store("motion/telemetry").is_err());
        assert!(de.store(&StoreId::new("motion/telemetry")).is_ok());
        assert!(de.store(&StoreId::new("nope")).is_err());
        assert_eq!(de.store_ids().len(), 1);
    }

    #[test]
    fn exchange_access_check_enforced() {
        let de = LogExchange::new();
        de.create_store("lamp/telemetry").unwrap();
        let id = StoreId::new("lamp/telemetry");
        // Open by default.
        de.ingest("anyone", &id, json!({"kwh": 0.2})).unwrap();
        // Install an oracle that only lets the lamp reconciler ingest.
        de.set_access_check(|subject, verb, store| {
            !(verb == "create"
                && store.as_str() == "lamp/telemetry"
                && subject != "reconciler:lamp")
        });
        assert!(de
            .ingest("reconciler:lamp", &id, json!({"kwh": 0.3}))
            .is_ok());
        assert!(matches!(
            de.ingest("integrator:sync", &id, json!({"kwh": 0.4})),
            Err(Error::Forbidden(_))
        ));
    }
}
