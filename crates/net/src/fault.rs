//! Seeded fault injection for the exchange transport.
//!
//! Everything here is **deterministic**: every fault decision flows from a
//! [`FaultPlan`]'s seed through a [`FaultRng`] (splitmix64), so a chaos
//! failure reproduces exactly from its printed seed — the property that
//! makes deterministic-simulation testing (FoundationDB-style) workable.
//!
//! Two injection points cover both deployments of the exchange:
//!
//! * [`FaultProxy`] — a frame-level TCP proxy in front of a real
//!   [`crate::server::ExchangeServer`]. From the seeded RNG it drops,
//!   delays, and duplicates whole frames and force-closes connections,
//!   exercising the genuine reconnect path in
//!   [`crate::client::ResilientClient`].
//! * [`FaultApi`] — an [`ExchangeApi`] decorator for in-process
//!   ([`crate::loopback`]) deployments: request ops are lost before
//!   execution, lost after execution (executed-but-unacknowledged, the
//!   dual of [`knactor_store::CrashPoint::AfterAppend`]), duplicated, or
//!   delayed. Watch/tail *streams* pass through unfaulted — at this layer
//!   there is no reconnect machinery to resume them, so faulting them
//!   would only test the absence of a feature.

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::frame::{FrameReader, FrameWriter};
use crate::proto::{ProfileSpec, QuerySpec};
use knactor_logstore::LogRecord;
use knactor_store::udf::UdfAssignment;
use knactor_store::{BatchOp, ItemResult, PutItem, StoredObject, TxOp, UdfBinding};
use knactor_types::{Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;

/// Deterministic RNG (splitmix64). Small, fast, and good enough for fault
/// schedules; the workspace deliberately vendors no general RNG crate.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Uniform in `[0, n)` (0 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Derive an independent stream: same parent seed + same `stream`
    /// index always yields the same child, regardless of how much the
    /// parent has been consumed.
    pub fn fork(seed: u64, stream: u64) -> FaultRng {
        FaultRng::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// Probabilities and bounds for injected transport faults.
///
/// All probabilities are per-frame (proxy) or per-request (loopback).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed every fault decision derives from. Print it on failure.
    pub seed: u64,
    /// Probability a frame/request is silently dropped.
    pub drop_frame: f64,
    /// Probability a frame/request is delivered twice.
    pub dup_frame: f64,
    /// Probability a frame/request is delayed by up to `max_delay`.
    pub delay_frame: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
    /// Probability (checked per frame) that the connection is killed.
    pub close_conn: f64,
}

impl FaultPlan {
    /// No faults at all — a transparent proxy (baseline runs).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_frame: 0.0,
            dup_frame: 0.0,
            delay_frame: 0.0,
            max_delay: Duration::ZERO,
            close_conn: 0.0,
        }
    }

    /// A hostile-but-survivable network: a few percent of frames are
    /// dropped/duplicated/delayed and connections die now and then.
    pub fn flaky(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_frame: 0.03,
            dup_frame: 0.03,
            delay_frame: 0.10,
            max_delay: Duration::from_millis(5),
            close_conn: 0.01,
        }
    }
}

/// Counters for what the fault layer actually did (all monotonic).
#[derive(Debug, Default)]
pub struct FaultStats {
    pub frames_forwarded: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_duplicated: AtomicU64,
    pub frames_delayed: AtomicU64,
    pub conns_accepted: AtomicU64,
    pub conns_killed: AtomicU64,
}

impl FaultStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One-line summary for chaos-test logs.
    pub fn summary(&self) -> String {
        format!(
            "forwarded={} dropped={} duplicated={} delayed={} accepted={} killed={}",
            self.frames_forwarded.load(Ordering::Relaxed),
            self.frames_dropped.load(Ordering::Relaxed),
            self.frames_duplicated.load(Ordering::Relaxed),
            self.frames_delayed.load(Ordering::Relaxed),
            self.conns_accepted.load(Ordering::Relaxed),
            self.conns_killed.load(Ordering::Relaxed),
        )
    }
}

/// A frame-level TCP proxy that injects faults between an exchange client
/// and server according to a [`FaultPlan`].
///
/// Because it relays *frames* (not bytes), a dropped frame is a cleanly
/// lost message — the framing stays intact and the peer simply never sees
/// that request or reply, which is exactly the failure a retry layer must
/// survive. Byte-level tearing is covered separately by the proptest suite
/// (a mutated stream must make the decoder error, never panic).
pub struct FaultProxy {
    local: SocketAddr,
    stats: Arc<FaultStats>,
    /// Bumping the epoch force-closes every live relay.
    kill_tx: watch::Sender<u64>,
    kill_epoch: AtomicU64,
    shutdown_tx: watch::Sender<bool>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral local port, forwarding to `upstream`.
    pub async fn spawn(upstream: SocketAddr, plan: FaultPlan) -> Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Transport(e.to_string()))?;
        let stats = Arc::new(FaultStats::default());
        let (kill_tx, kill_rx) = watch::channel(0u64);
        let (shutdown_tx, mut shutdown_rx) = watch::channel(false);

        let accept_stats = Arc::clone(&stats);
        tokio::spawn(async move {
            // Connection index seeds per-direction RNG streams, so fault
            // schedules do not depend on scheduler interleaving between
            // connections.
            let mut conn_idx: u64 = 0;
            loop {
                let accepted = tokio::select! {
                    res = listener.accept() => { res }
                    _ = shutdown_rx.changed() => { break }
                };
                let Ok((inbound, _)) = accepted else { break };
                let Ok(outbound) = TcpStream::connect(upstream).await else {
                    // Upstream gone: drop the inbound socket, client sees
                    // a reset and retries.
                    continue;
                };
                let _ = inbound.set_nodelay(true);
                let _ = outbound.set_nodelay(true);
                FaultStats::bump(&accept_stats.conns_accepted);

                let (in_read, in_write) = inbound.into_split();
                let (out_read, out_write) = outbound.into_split();
                // Each relay needs its own kill receiver with the
                // *current* epoch marked seen: a clone inherits the
                // accept loop's never-advanced version, so without this
                // a past kill_connections() would instantly kill every
                // connection accepted after it.
                let mut kill_a = kill_rx.clone();
                let _ = kill_a.borrow_and_update();
                let mut kill_b = kill_rx.clone();
                let _ = kill_b.borrow_and_update();
                // Client→server carries the Hello handshake as its first
                // frame; it identifies the connection rather than a
                // request, so it always passes through unfaulted.
                tokio::spawn(relay(
                    FrameReader::new(in_read),
                    FrameWriter::new(out_write),
                    FaultRng::fork(plan.seed, 2 * conn_idx),
                    plan,
                    Arc::clone(&accept_stats),
                    kill_a,
                    1,
                ));
                tokio::spawn(relay(
                    FrameReader::new(out_read),
                    FrameWriter::new(in_write),
                    FaultRng::fork(plan.seed, 2 * conn_idx + 1),
                    plan,
                    Arc::clone(&accept_stats),
                    kill_b,
                    0,
                ));
                conn_idx += 1;
            }
        });

        Ok(FaultProxy {
            local,
            stats,
            kill_tx,
            kill_epoch: AtomicU64::new(0),
            shutdown_tx,
        })
    }

    /// Address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Force-close every live proxied connection (a network partition in
    /// one call). New connections are accepted again immediately.
    pub fn kill_connections(&self) {
        let epoch = self.kill_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let _ = self.kill_tx.send(epoch);
    }

    /// Stop accepting new connections (existing relays die as their
    /// sockets close).
    pub fn shutdown(&self) {
        let _ = self.shutdown_tx.send(true);
        self.kill_connections();
    }
}

/// Relay one direction of a proxied connection, frame by frame, applying
/// the plan's faults. The first `handshake_frames` frames pass through
/// untouched.
async fn relay<R, W>(
    mut reader: FrameReader<R>,
    mut writer: FrameWriter<W>,
    mut rng: FaultRng,
    plan: FaultPlan,
    stats: Arc<FaultStats>,
    mut kill: watch::Receiver<u64>,
    mut handshake_frames: u32,
) where
    R: tokio::io::AsyncRead + Unpin,
    W: tokio::io::AsyncWrite + Unpin,
{
    loop {
        let frame = tokio::select! {
            res = reader.read_frame() => {
                match res {
                    Ok(Some(frame)) => frame,
                    // Clean EOF or torn stream: either way this direction
                    // is done; dropping the halves cascades the close.
                    _ => break,
                }
            }
            _ = kill.changed() => {
                FaultStats::bump(&stats.conns_killed);
                break;
            }
        };
        if handshake_frames > 0 {
            handshake_frames -= 1;
            if writer.write_frame(&frame).await.is_err() {
                break;
            }
            FaultStats::bump(&stats.frames_forwarded);
            continue;
        }
        if rng.chance(plan.close_conn) {
            FaultStats::bump(&stats.conns_killed);
            count_injection("close");
            break;
        }
        if rng.chance(plan.drop_frame) {
            FaultStats::bump(&stats.frames_dropped);
            count_injection("drop");
            continue;
        }
        if rng.chance(plan.delay_frame) {
            let micros = rng.below(plan.max_delay.as_micros().min(u64::MAX as u128) as u64 + 1);
            FaultStats::bump(&stats.frames_delayed);
            count_injection("delay");
            tokio::time::sleep(Duration::from_micros(micros)).await;
        }
        if writer.write_frame(&frame).await.is_err() {
            break;
        }
        FaultStats::bump(&stats.frames_forwarded);
        if rng.chance(plan.dup_frame) {
            FaultStats::bump(&stats.frames_duplicated);
            count_injection("duplicate");
            if writer.write_frame(&frame).await.is_err() {
                break;
            }
        }
    }
}

/// Mirror one injected fault into the global registry
/// (`knactor_fault_injections_total{kind}`), alongside the local
/// [`FaultStats`] atomics tests assert against.
fn count_injection(kind: &str) {
    knactor_types::metrics::global()
        .counter("knactor_fault_injections_total", &[("kind", kind)])
        .inc();
}

/// What [`FaultApi`] decided to do with one request.
enum Decision {
    Pass,
    /// The request never reaches the exchange.
    LoseRequest,
    /// The request executes, but the caller sees a transport error —
    /// executed-but-unacknowledged, the case retries must disambiguate.
    LoseReply,
    /// The request executes twice (a duplicated frame); the first result
    /// is returned.
    Duplicate,
    Delay(Duration),
}

/// Fault-injecting [`ExchangeApi`] decorator for in-process deployments.
pub struct FaultApi {
    inner: Arc<dyn ExchangeApi>,
    plan: Mutex<FaultPlan>,
    rng: Mutex<FaultRng>,
    stats: Arc<FaultStats>,
}

impl FaultApi {
    pub fn new(inner: Arc<dyn ExchangeApi>, plan: FaultPlan) -> FaultApi {
        FaultApi {
            inner,
            rng: Mutex::new(FaultRng::new(plan.seed)),
            plan: Mutex::new(plan),
            stats: Arc::new(FaultStats::default()),
        }
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Swap the fault plan mid-run (healthy bring-up, then inject — the
    /// composer rollback test does exactly this). The RNG stream is kept,
    /// so the run stays reproducible from the original seed plus the
    /// sequence of plans.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    pub fn plan(&self) -> FaultPlan {
        *self.plan.lock()
    }

    fn decide(&self) -> Decision {
        let plan = *self.plan.lock();
        let mut rng = self.rng.lock();
        if rng.chance(plan.drop_frame) {
            FaultStats::bump(&self.stats.frames_dropped);
            count_injection("drop");
            return Decision::LoseRequest;
        }
        if rng.chance(plan.close_conn) {
            count_injection("close");
            return Decision::LoseReply;
        }
        if rng.chance(plan.dup_frame) {
            FaultStats::bump(&self.stats.frames_duplicated);
            count_injection("duplicate");
            return Decision::Duplicate;
        }
        if rng.chance(plan.delay_frame) {
            FaultStats::bump(&self.stats.frames_delayed);
            count_injection("delay");
            let micros = rng.below(plan.max_delay.as_micros().min(u64::MAX as u128) as u64 + 1);
            return Decision::Delay(Duration::from_micros(micros));
        }
        Decision::Pass
    }

    /// Run `op` under this request's fault decision. `op` must be
    /// re-invokable (it is called twice for [`Decision::Duplicate`]).
    fn apply<T: Send + 'static>(
        &self,
        op: impl Fn() -> BoxFuture<'static, Result<T>> + Send + 'static,
    ) -> BoxFuture<'_, Result<T>> {
        let decision = self.decide();
        let stats = Arc::clone(&self.stats);
        Box::pin(async move {
            match decision {
                Decision::Pass => {
                    let out = op().await;
                    FaultStats::bump(&stats.frames_forwarded);
                    out
                }
                Decision::LoseRequest => {
                    Err(Error::Transport("injected: request lost".to_string()))
                }
                Decision::LoseReply => {
                    let _ = op().await;
                    Err(Error::Transport("injected: reply lost".to_string()))
                }
                Decision::Duplicate => {
                    let first = op().await;
                    let _ = op().await;
                    FaultStats::bump(&stats.frames_forwarded);
                    first
                }
                Decision::Delay(d) => {
                    tokio::time::sleep(d).await;
                    let out = op().await;
                    FaultStats::bump(&stats.frames_forwarded);
                    out
                }
            }
        })
    }
}

/// Builds the `'static` re-invokable op closure `FaultApi::apply` needs:
/// clones the captured state per invocation and moves it into an async
/// block that owns its `ExchangeApi` handle.
macro_rules! faulted_op {
    ($self:ident, ($($arg:ident),*), $call:ident) => {{
        let inner = Arc::clone(&$self.inner);
        $self.apply(move || {
            let inner = Arc::clone(&inner);
            $(let $arg = $arg.clone();)*
            Box::pin(async move { inner.$call($($arg),*).await })
        })
    }};
}

impl ExchangeApi for FaultApi {
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (store, profile), create_store)
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        faulted_op!(self, (store, key, value), create)
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        faulted_op!(self, (store, key), get)
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        faulted_op!(self, (store), list)
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        faulted_op!(self, (store, key, value, expected), update)
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        faulted_op!(self, (store, key, patch, upsert), patch)
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        faulted_op!(self, (store, key), delete)
    }

    // Batch ops are one wire frame each, so they take ONE fault decision
    // per call — a dropped batch loses all of it, a duplicated batch
    // re-executes all of it. That is exactly what the proxy does to a
    // batched frame.
    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        faulted_op!(self, (store, keys), batch_get)
    }

    fn batch_put(
        &self,
        store: StoreId,
        items: Vec<PutItem>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        faulted_op!(self, (store, items), batch_put)
    }

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        faulted_op!(self, (store, ops), batch_commit)
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (store, key, consumer), register_consumer)
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        faulted_op!(self, (store, key, consumer), mark_processed)
    }

    // Watch/tail streams pass through unfaulted — see module docs.
    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        let inner = Arc::clone(&self.inner);
        Box::pin(async move { inner.watch(store, from).await })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (schema), register_schema)
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (store, schema), bind_schema)
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        faulted_op!(self, (schema), get_schema)
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (name, inputs, assignments), register_udf)
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        faulted_op!(self, (name, bindings), execute_udf)
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        faulted_op!(self, (ops), transact)
    }

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        faulted_op!(self, (store), log_create_store)
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        faulted_op!(self, (store, fields), log_append)
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        faulted_op!(self, (store, batch), log_append_batch)
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        faulted_op!(self, (store, from), log_read)
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        faulted_op!(self, (store, query), log_query)
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        let inner = Arc::clone(&self.inner);
        Box::pin(async move { inner.log_tail(store, from).await })
    }

    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        // Observability must stay reliable under chaos: scrapes bypass
        // fault injection, like watch/tail subscriptions do.
        let inner = Arc::clone(&self.inner);
        Box::pin(async move { inner.metrics().await })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let mut c = FaultRng::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn forked_streams_are_independent_and_stable() {
        let mut f0 = FaultRng::fork(7, 0);
        let mut f1 = FaultRng::fork(7, 1);
        assert_ne!(f0.next_u64(), f1.next_u64());
        // Re-forking yields the same stream from the start.
        let mut f0_again = FaultRng::fork(7, 0);
        let mut f0_ref = FaultRng::fork(7, 0);
        assert_eq!(f0_again.next_u64(), f0_ref.next_u64());
    }

    #[test]
    fn unit_stays_in_range_and_chance_extremes_hold() {
        let mut rng = FaultRng::new(1);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = FaultRng::new(9);
        assert_eq!(rng.below(0), 0);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
