//! The **Continuous** integrator: windowed queries over a log tail.
//!
//! Where Sync runs its pipeline per record (stream) or over the whole
//! retained log (snapshot), a continuous query evaluates its pipeline
//! over *windows* of records — tumbling or sliding counts
//! ([`knactor_logstore::WindowSpec`]) — and keeps the latest closed
//! window's result fresh in an Object-store key, written through the
//! same batched wire path as Cast's writes.
//!
//! **Exactly-once window accounting.** Windows are count-based over the
//! store's dense sequence numbers, so a window's boundaries are a pure
//! function of its start sequence. The destination object records the
//! last closed window's `end_seq`; on (re)spawn the controller reads it
//! back and resumes the tail from there, so a crash/restart cannot
//! re-count a record into a second window or skip one — the next window
//! starts at exactly `end_seq + 1`. A typed [`TailEvent::Lagged`] (the
//! source's retention outran us) is the one unavoidable loss: the
//! controller drops its partial window, restarts windowing at the resume
//! point, and counts the event in `knactor_cq_lagged_total`.

use crate::telemetry::TraceCollector;
use knactor_expr::FnRegistry;
use knactor_logstore::{TailEvent, WindowSpec, WindowState};
use knactor_net::proto::QuerySpec;
use knactor_net::ExchangeApi;
use knactor_types::{Error, ObjectKey, Result, StoreId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

/// Configuration of a continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousConfig {
    pub name: String,
    /// Log store whose tail feeds the windows.
    pub source: StoreId,
    /// Pipeline evaluated over each closed window's records.
    pub query: QuerySpec,
    pub window: WindowSpec,
    /// Object store + key receiving the rolling result.
    pub dest_store: StoreId,
    pub dest_key: ObjectKey,
}

impl ContinuousConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        self.query.compile()?;
        self.window.validate()?;
        Ok(())
    }
}

enum Command {
    Reconfigure(ContinuousConfig, oneshot::Sender<Result<()>>),
    Drain(oneshot::Sender<()>),
    Shutdown(oneshot::Sender<()>),
}

/// Handle to a running continuous query.
pub struct ContinuousController {
    cmd_tx: mpsc::UnboundedSender<Command>,
    task: JoinHandle<()>,
    processed: Arc<AtomicU64>,
    windows: Arc<AtomicU64>,
    tail_pos: Arc<AtomicU64>,
}

impl ContinuousController {
    pub async fn reconfigure(&self, config: ContinuousConfig) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Reconfigure(config, tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)?
    }

    /// Barrier: every record the tail has already delivered is windowed
    /// (and any windows it closed are written) before this returns.
    pub async fn drain(&self) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Drain(tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)
    }

    pub async fn shutdown(self) {
        let (tx, rx) = oneshot::channel();
        if self.cmd_tx.send(Command::Shutdown(tx)).is_ok() {
            let _ = rx.await;
        }
        let _ = self.task.await;
    }

    /// Records consumed into windows so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Windows closed (and written) so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows.load(Ordering::Relaxed)
    }

    /// Highest source sequence consumed.
    pub fn tail_position(&self) -> u64 {
        self.tail_pos.load(Ordering::Relaxed)
    }

    pub fn is_running(&self) -> bool {
        !self.task.is_finished() && !self.cmd_tx.is_closed()
    }
}

/// The continuous-query integrator factory.
pub struct Continuous {
    api: Arc<dyn ExchangeApi>,
    fns: FnRegistry,
    traces: TraceCollector,
}

impl Continuous {
    pub fn new(api: Arc<dyn ExchangeApi>) -> Continuous {
        Continuous {
            api,
            fns: FnRegistry::standard(),
            traces: TraceCollector::new(),
        }
    }

    pub fn with_functions(mut self, fns: FnRegistry) -> Continuous {
        self.fns = fns;
        self
    }

    pub fn with_traces(mut self, traces: TraceCollector) -> Continuous {
        self.traces = traces;
        self
    }

    /// Spawn the continuous integrator.
    pub async fn spawn(self, config: ContinuousConfig) -> Result<ContinuousController> {
        config.validate()?;
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let processed = Arc::new(AtomicU64::new(0));
        let windows = Arc::new(AtomicU64::new(0));
        let tail_pos = Arc::new(AtomicU64::new(0));
        let task = tokio::spawn(run_loop(
            self.api,
            self.fns,
            self.traces,
            config,
            cmd_rx,
            Arc::clone(&processed),
            Arc::clone(&windows),
            Arc::clone(&tail_pos),
        ));
        Ok(ContinuousController {
            cmd_tx,
            task,
            processed,
            windows,
            tail_pos,
        })
    }
}

/// Mutable windowing state of the run loop, reset whenever windowing
/// must restart from a new base (source change, lag).
struct CqState {
    window: WindowState,
    /// Highest source seq consumed (tail resume point).
    last_seq: u64,
    /// Index the next closed window is published under. Continues from
    /// the destination object across restarts.
    window_base: u64,
    /// Records accounted into *closed* windows, cumulative across
    /// restarts — the zero-missed/zero-double-counted check in tests.
    records_total: u64,
}

/// Read the destination object back for the resume point. No object (or
/// one this query never wrote) → start from scratch.
async fn recover(api: &Arc<dyn ExchangeApi>, config: &ContinuousConfig) -> CqState {
    let mut state = CqState {
        window: WindowState::new(config.window.clone()),
        last_seq: 0,
        window_base: 0,
        records_total: 0,
    };
    if let Ok(obj) = api
        .get(config.dest_store.clone(), config.dest_key.clone())
        .await
    {
        let v = &obj.value;
        if v["cq"].as_str() == Some(config.name.as_str()) {
            state.last_seq = v["end_seq"].as_u64().unwrap_or(0);
            state.window_base = v["window"].as_u64().map(|w| w + 1).unwrap_or(0);
            state.records_total = v["records_total"].as_u64().unwrap_or(0);
        }
    }
    state
}

#[allow(clippy::too_many_arguments)]
async fn run_loop(
    api: Arc<dyn ExchangeApi>,
    fns: FnRegistry,
    traces: TraceCollector,
    mut config: ContinuousConfig,
    mut cmd_rx: mpsc::UnboundedReceiver<Command>,
    processed: Arc<AtomicU64>,
    windows: Arc<AtomicU64>,
    tail_pos: Arc<AtomicU64>,
) {
    let mut state = recover(&api, &config).await;
    tail_pos.store(state.last_seq, Ordering::Relaxed);
    let mut tail_source = config.source.clone();
    let mut tail_window = config.window.clone();
    'outer: loop {
        if config.source != tail_source || config.window != tail_window {
            // New source or new window shape: windowing restarts from the
            // destination's recorded resume point (same-source window
            // changes keep the seq cursor; a new source starts over).
            let same_source = config.source == tail_source;
            tail_source = config.source.clone();
            tail_window = config.window.clone();
            state = if same_source {
                recover(&api, &config).await
            } else {
                CqState {
                    window: WindowState::new(config.window.clone()),
                    last_seq: 0,
                    window_base: 0,
                    records_total: 0,
                }
            };
            tail_pos.store(state.last_seq, Ordering::Relaxed);
        }
        let mut tail = match api.log_tail(config.source.clone(), state.last_seq).await {
            Ok(t) => t,
            Err(_) => {
                tokio::select! {
                    cmd = cmd_rx.recv() => {
                        match cmd {
                            Some(Command::Reconfigure(new, ack)) => {
                                match new.validate() {
                                    Ok(()) => { config = new; let _ = ack.send(Ok(())); }
                                    Err(e) => { let _ = ack.send(Err(e)); }
                                }
                            }
                            Some(Command::Drain(ack)) => { let _ = ack.send(()); }
                            Some(Command::Shutdown(ack)) => { let _ = ack.send(()); return; }
                            None => return,
                        }
                    }
                    _ = tokio::time::sleep(std::time::Duration::from_millis(200)) => {}
                }
                continue 'outer;
            }
        };
        loop {
            tokio::select! {
                cmd = cmd_rx.recv() => {
                    match cmd {
                        Some(Command::Reconfigure(new, ack)) => {
                            match new.validate() {
                                Ok(()) => {
                                    config = new;
                                    let _ = ack.send(Ok(()));
                                    continue 'outer;
                                }
                                Err(e) => { let _ = ack.send(Err(e)); }
                            }
                        }
                        Some(Command::Drain(ack)) => {
                            while let Ok(event) = tail.try_recv() {
                                process_event(
                                    &api, &fns, &traces, &config, &mut state,
                                    &processed, &windows, &tail_pos, event,
                                )
                                .await;
                            }
                            let _ = ack.send(());
                        }
                        Some(Command::Shutdown(ack)) => {
                            let _ = ack.send(());
                            return;
                        }
                        None => return,
                    }
                }
                event = tail.recv() => {
                    let Some(event) = event else { return };
                    process_event(
                        &api, &fns, &traces, &config, &mut state,
                        &processed, &windows, &tail_pos, event,
                    )
                    .await;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
async fn process_event(
    api: &Arc<dyn ExchangeApi>,
    fns: &FnRegistry,
    traces: &TraceCollector,
    config: &ContinuousConfig,
    state: &mut CqState,
    processed: &AtomicU64,
    windows: &AtomicU64,
    tail_pos: &AtomicU64,
    event: TailEvent,
) {
    let record = match event {
        TailEvent::Record(record) => record,
        TailEvent::Lagged {
            missed,
            resume_from,
        } => {
            // Retention outran the tail: the partial window can never
            // complete (its records are gone). Drop it and restart
            // windowing at the resume point; never fabricate a window
            // from a gap.
            crate::metrics::global()
                .counter("knactor_cq_lagged_total", &[("cq", &config.name)])
                .add(missed);
            state.window = WindowState::new(config.window.clone());
            if resume_from > state.last_seq + 1 {
                state.last_seq = resume_from - 1;
                tail_pos.store(state.last_seq, Ordering::Relaxed);
            }
            return;
        }
    };
    if record.seq <= state.last_seq {
        return; // replayed by a resumed tail; already windowed
    }
    state.last_seq = record.seq;
    tail_pos.store(record.seq, Ordering::Relaxed);
    processed.fetch_add(1, Ordering::Relaxed);
    for closed in state.window.push(record) {
        let start = Instant::now();
        let index = state.window_base + closed.index;
        // Only tumbling windows partition the stream; sliding windows
        // overlap by design, so the exactly-once accounting tracks
        // tumbling advancement (stride) rather than raw buffer size.
        let advanced = match config.window {
            WindowSpec::TumblingCount { .. } => closed.records.len() as u64,
            WindowSpec::SlidingCount { step, .. } => step as u64,
        };
        state.records_total += advanced;
        let result = write_window(api, fns, config, &closed, index, state.records_total).await;
        let elapsed = start.elapsed();
        let component = format!("cq:{}", config.name);
        let trace_id = format!("{}#w{}", config.source, index);
        traces.record(&trace_id, &component, "close-window", elapsed);
        crate::metrics::observe_stage(&component, "close-window", elapsed);
        crate::metrics::inc_activation(&component);
        crate::metrics::global()
            .counter("knactor_cq_windows_total", &[("cq", &config.name)])
            .inc();
        windows.fetch_add(1, Ordering::Relaxed);
        // Errors are per-window; the next window still runs.
        let _ = result;
    }
}

/// Evaluate the pipeline over one closed window and upsert the rolling
/// result object through the batched wire path.
async fn write_window(
    api: &Arc<dyn ExchangeApi>,
    fns: &FnRegistry,
    config: &ContinuousConfig,
    closed: &knactor_logstore::ClosedWindow,
    index: u64,
    records_total: u64,
) -> Result<()> {
    let query = config.query.compile()?;
    let rows = closed.run(&query, fns)?;
    let value = serde_json::json!({
        "cq": config.name,
        "window": index,
        "kind": config.window.kind(),
        "start_seq": closed.start_seq,
        "end_seq": closed.end_seq,
        "records": closed.records.len() as u64,
        "records_total": records_total,
        "rows": Value::Array(rows),
    });
    let item = knactor_store::PutItem {
        key: config.dest_key.clone(),
        value,
        upsert: true,
    };
    api.batch_put(config.dest_store.clone(), vec![item])
        .await?
        .into_iter()
        .next()
        .ok_or_else(|| Error::Internal("empty batch reply".to_string()))?
        .into_revision()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::{OpSpec, ProfileSpec};
    use knactor_rbac::Subject;
    use serde_json::json;
    use std::time::Duration;

    async fn setup() -> Arc<dyn ExchangeApi> {
        let (_, _, client) = in_process(Subject::integrator("cq"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("sensor/telemetry"))
            .await
            .unwrap();
        api.create_store(StoreId::new("house/analytics"), ProfileSpec::Instant)
            .await
            .unwrap();
        api
    }

    fn config() -> ContinuousConfig {
        ContinuousConfig {
            name: "energy-window".to_string(),
            source: StoreId::new("sensor/telemetry"),
            query: QuerySpec {
                ops: vec![OpSpec::Aggregate {
                    group_by: None,
                    agg: "sum".into(),
                    field: Some("kwh".into()),
                    as_field: "total".into(),
                }],
            },
            window: WindowSpec::tumbling(4),
            dest_store: StoreId::new("house/analytics"),
            dest_key: ObjectKey::new("energy-window"),
        }
    }

    async fn await_window(api: &Arc<dyn ExchangeApi>, index: u64) -> Value {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(obj) = api
                .get(
                    StoreId::new("house/analytics"),
                    ObjectKey::new("energy-window"),
                )
                .await
            {
                if obj.value["window"].as_u64() == Some(index) {
                    return (*obj.value).clone();
                }
            }
            assert!(Instant::now() < deadline, "window {index} never appeared");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    }

    #[tokio::test]
    async fn tumbling_window_keeps_rolling_sum_fresh() {
        let api = setup().await;
        let controller = Continuous::new(Arc::clone(&api))
            .spawn(config())
            .await
            .unwrap();
        for i in 0..8 {
            api.log_append(
                StoreId::new("sensor/telemetry"),
                json!({"kwh": 0.5, "i": i}),
            )
            .await
            .unwrap();
        }
        let v = await_window(&api, 1).await;
        assert_eq!(v["start_seq"].as_u64(), Some(5));
        assert_eq!(v["end_seq"].as_u64(), Some(8));
        assert_eq!(v["records_total"].as_u64(), Some(8));
        assert!((v["rows"][0]["total"].as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(controller.windows_closed(), 2);
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn restart_resumes_exactly_once() {
        let api = setup().await;
        let controller = Continuous::new(Arc::clone(&api))
            .spawn(config())
            .await
            .unwrap();
        for _ in 0..4 {
            api.log_append(StoreId::new("sensor/telemetry"), json!({"kwh": 1.0}))
                .await
                .unwrap();
        }
        await_window(&api, 0).await;
        controller.shutdown().await;

        // Restart; the new controller recovers end_seq=4 and window 0
        // from the destination object, so the next window is exactly
        // records 5..=8 — nothing recounted, nothing skipped.
        let controller = Continuous::new(Arc::clone(&api))
            .spawn(config())
            .await
            .unwrap();
        for _ in 0..4 {
            api.log_append(StoreId::new("sensor/telemetry"), json!({"kwh": 2.0}))
                .await
                .unwrap();
        }
        let v = await_window(&api, 1).await;
        assert_eq!(v["start_seq"].as_u64(), Some(5));
        assert_eq!(v["end_seq"].as_u64(), Some(8));
        assert_eq!(v["records_total"].as_u64(), Some(8));
        assert!((v["rows"][0]["total"].as_f64().unwrap() - 8.0).abs() < 1e-9);
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn drain_is_a_window_barrier() {
        let api = setup().await;
        let controller = Continuous::new(Arc::clone(&api))
            .spawn(config())
            .await
            .unwrap();
        for _ in 0..4 {
            api.log_append(StoreId::new("sensor/telemetry"), json!({"kwh": 1.0}))
                .await
                .unwrap();
        }
        controller.drain().await.unwrap();
        // After the barrier the closed window is visible without polling.
        let obj = api
            .get(
                StoreId::new("house/analytics"),
                ObjectKey::new("energy-window"),
            )
            .await
            .unwrap();
        assert_eq!(obj.value["window"].as_u64(), Some(0));
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn invalid_window_rejected() {
        let api = setup().await;
        let mut bad = config();
        bad.window = WindowSpec::tumbling(0);
        assert!(Continuous::new(api).spawn(bad).await.is_err());
    }
}
