//! Server-side UDF execution: the integrator-pushdown optimization.
//!
//! Without pushdown, an integrator reacting to a state change performs
//! (at least) one read round trip per source store plus one write round
//! trip per target. A **UDF** moves that read→evaluate→write sequence
//! *into the exchange*: the integrator registers the compiled assignments
//! once, then each activation is a single `execute` call — the paper's
//! K-redis-udf configuration, where the integrator→Shipping leg drops
//! from 2.7 ms to 0.1 ms (Table 2).
//!
//! UDF bodies are ordinary DXG expressions ([`knactor_expr`]); their
//! purity is what makes running them inside the exchange safe.

use knactor_expr::{Env, Expr, FnRegistry};
use knactor_types::{Error, FieldPath, ObjectKey, Result, StoreId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One field assignment inside a UDF: write `expr` to `target_alias` at
/// `target_path`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct UdfAssignment {
    pub target_alias: String,
    pub target_path: String,
    /// Expression source (kept as text for the wire; compiled on
    /// registration).
    pub expr: String,
}

/// A registered UDF: named, with declared input aliases and a list of
/// assignments. Registration compiles and validates every expression.
#[derive(Debug, Clone)]
pub struct Udf {
    pub name: String,
    /// Aliases the caller must bind (e.g. `C`, `S`, `this`).
    pub inputs: Vec<String>,
    pub assignments: Vec<CompiledAssignment>,
}

/// An assignment with its expression compiled.
#[derive(Debug, Clone)]
pub struct CompiledAssignment {
    pub target_alias: String,
    pub target_path: FieldPath,
    pub expr: Expr,
    pub source: String,
}

/// Binding of an alias to a concrete object at call time.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct UdfBinding {
    pub alias: String,
    pub store: StoreId,
    pub key: ObjectKey,
}

impl UdfBinding {
    pub fn new(
        alias: impl Into<String>,
        store: impl Into<StoreId>,
        key: impl Into<ObjectKey>,
    ) -> Self {
        UdfBinding {
            alias: alias.into(),
            store: store.into(),
            key: key.into(),
        }
    }
}

impl Udf {
    /// Compile a UDF definition. Fails if any expression does not parse,
    /// references an undeclared alias, or targets an undeclared alias.
    pub fn compile(
        name: impl Into<String>,
        inputs: Vec<String>,
        assignments: &[UdfAssignment],
    ) -> Result<Udf> {
        let name = name.into();
        let mut compiled = Vec::with_capacity(assignments.len());
        let fns = FnRegistry::standard();
        for a in assignments {
            // Fold constant sub-trees once at registration; activations
            // re-evaluate the expression many times.
            let expr = knactor_expr::fold_constants(&knactor_expr::parse_expr(&a.expr)?, &fns);
            for root in expr.free_roots() {
                if !inputs.contains(&root) {
                    return Err(Error::Dxg(format!(
                        "udf {name}: expression '{}' references undeclared alias '{root}'",
                        a.expr
                    )));
                }
            }
            if !inputs.contains(&a.target_alias) {
                return Err(Error::Dxg(format!(
                    "udf {name}: assignment targets undeclared alias '{}'",
                    a.target_alias
                )));
            }
            compiled.push(CompiledAssignment {
                target_alias: a.target_alias.clone(),
                target_path: FieldPath::parse(&a.target_path)?,
                expr,
                source: a.expr.clone(),
            });
        }
        Ok(Udf {
            name,
            inputs,
            assignments: compiled,
        })
    }

    /// Evaluate all assignments against an environment of bound states.
    /// Returns, per target alias, the patch to merge into that object.
    ///
    /// Assignments see the *initial* environment (they are simultaneous,
    /// not sequential — the DXG layer orders cross-store dependencies).
    ///
    /// An assignment that evaluates to `null` or fails to evaluate is
    /// *skipped*, matching the integrator's "inputs not ready yet"
    /// semantics: exchanges activate repeatedly as state fills in, and a
    /// reference into state another service has not produced yet must
    /// not poison the assignments that are ready.
    pub fn evaluate(
        &self,
        env: &Env,
        fns: &FnRegistry,
    ) -> Result<BTreeMap<String, serde_json::Value>> {
        let mut patches: BTreeMap<String, serde_json::Value> = BTreeMap::new();
        for a in &self.assignments {
            let v = match knactor_expr::eval(&a.expr, env, fns) {
                Ok(serde_json::Value::Null) | Err(_) => continue,
                Ok(v) => v,
            };
            let patch = patches
                .entry(a.target_alias.clone())
                .or_insert_with(|| serde_json::Value::Object(serde_json::Map::new()));
            knactor_types::value::set_path(patch, &a.target_path, v)?;
        }
        Ok(patches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn assignment(target: &str, path: &str, expr: &str) -> UdfAssignment {
        UdfAssignment {
            target_alias: target.to_string(),
            target_path: path.to_string(),
            expr: expr.to_string(),
        }
    }

    #[test]
    fn compile_validates_aliases() {
        let ok = Udf::compile(
            "ship",
            vec!["C".into(), "S".into()],
            &[assignment("S", "addr", "C.order.address")],
        );
        assert!(ok.is_ok());

        let bad_ref = Udf::compile(
            "ship",
            vec!["S".into()],
            &[assignment("S", "addr", "C.order.address")],
        );
        assert!(matches!(bad_ref, Err(Error::Dxg(_))));

        let bad_target = Udf::compile(
            "ship",
            vec!["C".into()],
            &[assignment("S", "addr", "C.order.address")],
        );
        assert!(matches!(bad_target, Err(Error::Dxg(_))));

        let bad_expr = Udf::compile("x", vec!["C".into()], &[assignment("C", "a", "1 +")]);
        assert!(bad_expr.is_err());
    }

    #[test]
    fn evaluate_produces_patches_per_target() {
        let udf = Udf::compile(
            "ship",
            vec!["C".into(), "S".into()],
            &[
                assignment("S", "addr", "C.order.address"),
                assignment(
                    "S",
                    "method",
                    r#""air" if C.order.cost > 1000 else "ground""#,
                ),
                assignment("C", "order.shippingCost", "S.quote.price"),
            ],
        )
        .unwrap();
        let mut env = Env::new();
        env.bind(
            "C",
            json!({"order": {"address": "Soda Hall", "cost": 2000}}),
        );
        env.bind("S", json!({"quote": {"price": 12.5}}));
        let patches = udf.evaluate(&env, &FnRegistry::standard()).unwrap();
        assert_eq!(patches["S"], json!({"addr": "Soda Hall", "method": "air"}));
        assert_eq!(patches["C"], json!({"order": {"shippingCost": 12.5}}));
    }

    #[test]
    fn assignments_are_simultaneous() {
        // The second assignment must not see the first one's write.
        let udf = Udf::compile(
            "swap",
            vec!["X".into()],
            &[assignment("X", "a", "X.b"), assignment("X", "b", "X.a")],
        )
        .unwrap();
        let mut env = Env::new();
        env.bind("X", json!({"a": 1, "b": 2}));
        let patches = udf.evaluate(&env, &FnRegistry::standard()).unwrap();
        assert_eq!(patches["X"], json!({"a": 2, "b": 1}));
    }
}
