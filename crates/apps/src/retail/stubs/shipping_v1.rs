// >>> T1-API
//! Generated-style stub for `OnlineRetail.Shipping` v1.
//!
//! Source API definition (what `shipping.proto` would declare):
//!
//! ```text
//! service Shipping {
//!   rpc GetQuote(GetQuoteRequest) returns (GetQuoteResponse);
//!   rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
//! }
//! ```

use knactor_rpc::RpcClient;
use knactor_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// Fully-qualified method names (the API endpoints of Fig. 3a).
pub const METHOD_GET_QUOTE: &str = "Shipping.v1/GetQuote";
pub const METHOD_SHIP_ORDER: &str = "Shipping.v1/ShipOrder";

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GetQuoteRequest {
    pub addr: String,
    pub items: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GetQuoteResponse {
    pub price: f64,
    pub currency: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShipOrderRequest {
    pub addr: String,
    pub items: Vec<String>,
    pub method: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShipOrderResponse {
    pub tracking_id: String,
}

/// Typed client over the RPC transport.
pub struct ShippingClient<'c> {
    inner: &'c RpcClient,
}

impl<'c> ShippingClient<'c> {
    pub fn new(inner: &'c RpcClient) -> Self {
        ShippingClient { inner }
    }

    pub async fn get_quote(&self, request: GetQuoteRequest) -> Result<GetQuoteResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_GET_QUOTE, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("GetQuoteResponse: {e}")))
    }

    pub async fn ship_order(&self, request: ShipOrderRequest) -> Result<ShipOrderResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_SHIP_ORDER, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("ShipOrderResponse: {e}")))
    }
}
// <<< T1-API
