//! Property tests for the Object data exchange core invariants.

use knactor_store::{EngineProfile, EventKind, ObjectStore};
use knactor_types::{ObjectKey, Revision, StoreId};
use proptest::prelude::*;
use serde_json::json;

/// A random CRUD operation.
#[derive(Debug, Clone)]
enum Op {
    Create(u8, i64),
    Update(u8, i64),
    UpdateOcc(u8, i64),
    Patch(u8, i64),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Create(k % 8, v)),
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Update(k % 8, v)),
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::UpdateOcc(k % 8, v)),
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Patch(k % 8, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 8)),
    ]
}

fn key(k: u8) -> ObjectKey {
    ObjectKey::new(format!("k{k}"))
}

/// Apply an op; return whether it committed.
fn apply(store: &ObjectStore, op: &Op) -> bool {
    match op {
        Op::Create(k, v) => store.create(key(*k), json!({"v": v})).is_ok(),
        Op::Update(k, v) => store.update(&key(*k), json!({"v": v}), None).is_ok(),
        Op::UpdateOcc(k, v) => match store.get(&key(*k)) {
            Ok(obj) => store
                .update(&key(*k), json!({"v": v}), Some(obj.revision))
                .is_ok(),
            Err(_) => false,
        },
        Op::Patch(k, v) => store.patch(&key(*k), &json!({"p": v}), true).is_ok(),
        Op::Delete(k) => store.delete(&key(*k)).is_ok(),
    }
}

proptest! {
    /// The store revision advances by exactly one per committed mutation.
    #[test]
    fn revision_counts_commits(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let store = ObjectStore::in_memory("prop/s");
        let mut commits = 0u64;
        for op in &ops {
            if apply(&store, op) {
                commits += 1;
            }
        }
        prop_assert_eq!(store.revision(), Revision(commits));
    }

    /// A watch started before the ops sees exactly the committed events,
    /// in strictly increasing revision order, and replaying them
    /// reconstructs the final object map.
    #[test]
    fn watch_is_complete_ordered_and_faithful(
        ops in proptest::collection::vec(op_strategy(), 0..60)
    ) {
        let rt = tokio::runtime::Builder::new_current_thread().enable_all().build().unwrap();
        rt.block_on(async {
            let store = ObjectStore::in_memory("prop/w");
            let mut rx = store.watch().unwrap();
            let mut commits = 0usize;
            for op in &ops {
                if apply(&store, op) {
                    commits += 1;
                }
            }
            let mut events = Vec::new();
            for _ in 0..commits {
                events.push(rx.recv().await.expect("missing event"));
            }
            // No extra events.
            assert!(rx.try_recv().is_err(), "spurious extra event");
            // Strictly increasing, gapless revisions.
            for (i, e) in events.iter().enumerate() {
                assert_eq!(e.revision, Revision(i as u64 + 1));
            }
            // Replay reconstructs the live state.
            let mut replayed: std::collections::BTreeMap<ObjectKey, std::sync::Arc<serde_json::Value>> =
                Default::default();
            for e in &events {
                match e.kind {
                    EventKind::Created | EventKind::Updated => {
                        replayed.insert(e.key.clone(), e.value.clone());
                    }
                    EventKind::Deleted => {
                        replayed.remove(&e.key);
                    }
                }
            }
            let (live, _) = store.list();
            assert_eq!(live.len(), replayed.len());
            for obj in live {
                assert_eq!(replayed.get(&obj.key), Some(&obj.value), "key {}", obj.key);
            }
        });
    }

    /// A stale-revision OCC write never commits; a fresh one always does.
    #[test]
    fn occ_stale_never_commits(v1 in any::<i64>(), v2 in any::<i64>(), v3 in any::<i64>()) {
        let store = ObjectStore::in_memory("prop/occ");
        let k = ObjectKey::new("k");
        let r1 = store.create(k.clone(), json!({"v": v1})).unwrap();
        let r2 = store.update(&k, json!({"v": v2}), Some(r1)).unwrap();
        // Stale write must fail and must not change the value.
        let stale = store.update(&k, json!({"v": v3}), Some(r1));
        prop_assert!(stale.is_err());
        prop_assert_eq!(store.get(&k).unwrap().value, json!({"v": v2}));
        prop_assert_eq!(store.get(&k).unwrap().revision, r2);
    }

    /// WAL replay reconstructs exactly the committed state, whatever the
    /// op sequence.
    #[test]
    fn wal_replay_faithful(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let dir = std::env::temp_dir().join(format!(
            "knactor-prop-wal-{}-{:x}",
            std::process::id(),
            rand_suffix()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut profile = EngineProfile::apiserver(&dir, "prop/d");
        profile.fsync = false; // keep the property fast; fsync is covered in unit tests
        let (before, final_rev) = {
            let store = ObjectStore::open(StoreId::new("prop/d"), profile.clone()).unwrap();
            for op in &ops {
                apply(&store, op);
            }
            (store.list().0, store.revision())
        };
        let store = ObjectStore::open(StoreId::new("prop/d"), profile).unwrap();
        let (after, rev) = store.list();
        prop_assert_eq!(rev, final_rev);
        prop_assert_eq!(after.len(), before.len());
        for (a, b) in after.iter().zip(before.iter()) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(&a.value, &b.value);
            prop_assert_eq!(a.revision, b.revision);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cheap unique-ish suffix without pulling in a clock (proptest reruns in
/// the same process reuse the dir otherwise).
fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    N.fetch_add(1, Ordering::Relaxed)
}
