//! Ablation: state-propagation latency across engine profiles and
//! transports (the mechanisms behind Table 2's Prop. column).
//!
//! * push vs poll watch delivery (K-redis vs K-apiserver style)
//! * zero-copy loopback vs framed TCP transport (§3.3's zero-copy
//!   optimization)

use criterion::{criterion_group, criterion_main, Criterion};
use knactor_net::loopback::in_process;
use knactor_net::proto::ProfileSpec;
use knactor_net::server::test_server;
use knactor_net::{ExchangeApi, TcpClient};
use knactor_rbac::Subject;
use knactor_store::profile::WatchDelivery;
use knactor_store::{EngineProfile, ObjectStore};
use knactor_types::{ObjectKey, Revision, StoreId};
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn rt() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap()
}

/// Commit → watcher-sees latency for an engine profile.
fn bench_watch_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("watch_delivery");
    group.sample_size(30);
    let runtime = rt();

    for (name, profile) in [
        ("push_redis_style", EngineProfile::redis()),
        (
            "poll_apiserver_style",
            EngineProfile {
                watch: WatchDelivery::Poll {
                    interval: Duration::from_millis(5),
                },
                ..EngineProfile::instant()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.to_async(&runtime).iter_custom(|iters| {
                let profile = profile.clone();
                async move {
                    let store =
                        Arc::new(ObjectStore::open(StoreId::new("bench/w"), profile).unwrap());
                    let handle = knactor_store::StoreHandle::open_access(
                        Arc::clone(&store),
                        Subject::operator("bench"),
                    );
                    let mut watch = handle.watch_from(Revision::ZERO).unwrap();
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        let t0 = std::time::Instant::now();
                        store
                            .create(ObjectKey::new(format!("k{i}")), json!({"i": i}))
                            .unwrap();
                        let _ = watch.recv().await.unwrap();
                        total += t0.elapsed();
                    }
                    total
                }
            });
        });
    }
    group.finish();
}

/// One read round trip: in-process zero-copy vs framed TCP.
fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_get");
    let runtime = rt();

    group.bench_function("loopback_zero_copy", |b| {
        let (_, _, client) = in_process(Subject::operator("bench"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        runtime.block_on(async {
            api.create_store(StoreId::new("b/s"), ProfileSpec::Instant)
                .await
                .unwrap();
            api.create(StoreId::new("b/s"), ObjectKey::new("k"), json!({"v": 1}))
                .await
                .unwrap();
        });
        b.to_async(&runtime).iter(|| {
            let api = Arc::clone(&api);
            async move {
                api.get(StoreId::new("b/s"), ObjectKey::new("k"))
                    .await
                    .unwrap()
            }
        });
    });

    group.bench_function("tcp_framed", |b| {
        let (server, client) = runtime.block_on(async {
            let server = test_server(&["b/s"], &[]).await.unwrap();
            let client = TcpClient::connect(server.local_addr(), Subject::operator("bench"))
                .await
                .unwrap();
            client
                .create(StoreId::new("b/s"), ObjectKey::new("k"), json!({"v": 1}))
                .await
                .unwrap();
            (server, client)
        });
        let client = Arc::new(client);
        b.to_async(&runtime).iter(|| {
            let client = Arc::clone(&client);
            async move {
                client
                    .get(StoreId::new("b/s"), ObjectKey::new("k"))
                    .await
                    .unwrap()
            }
        });
        runtime.block_on(server.shutdown());
    });

    group.finish();
}

criterion_group!(benches, bench_watch_delivery, bench_transport);
criterion_main!(benches);
