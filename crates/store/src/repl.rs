//! Leader/follower replication primitives for the Object-DE.
//!
//! Replication ships the leader's committed event stream — the same
//! dense, per-commit [`WatchEvent`] sequence the WAL and watch history
//! already order — to followers, which apply it through their own
//! `apply_batch` path so revisions, history, and watch outboxes stay
//! byte-identical to the leader's.
//!
//! The protocol surface here is deliberately transport-free so it can be
//! property-tested in isolation (`crates/store/tests/prop_repl.rs`):
//!
//! * [`ReplGroup`] — a sealed, contiguous run of committed events, the
//!   unit of shipping. Its id is its first revision; dense revisions
//!   make the id an idempotency key with no extra bookkeeping.
//! * [`FollowerCursor`] — the follower-side dedup/gap state machine.
//!   Offered a group, it answers *apply (from offset k)*, *duplicate*,
//!   or *gap*; duplicates are dropped, gaps force a resubscribe. This is
//!   what makes redelivery and reordering safe.
//! * [`ReplState`] — the leader-side ack table. Followers ack the
//!   highest revision they have staged durably; a write with
//!   `Durability::Replicated(n)` is acknowledged to the client only once
//!   `n` followers have acked its revision (quorum release).
//!
//! Roles are a property of the *node*, not the store: every replicated
//! store on a node shares the node's `leading` flag. On a follower the
//! flag is false and [`ReplState::wait_quorum`] is a no-op, so the
//! replication apply path never blocks on itself; promotion flips one
//! atomic and every store on the node starts demanding quorum.

use crate::event::WatchEvent;
use knactor_types::metrics::{self, Counter, Gauge};
use knactor_types::{Error, Result, Revision, StoreId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
// The vendored `parking_lot` wraps std primitives (its `MutexGuard` *is*
// `std::sync::MutexGuard`), so std's Condvar pairs with its Mutex.
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// How long a `Replicated(n)` commit waits for its ack quorum before the
/// write is reported [`Error::Timeout`]. The commit itself stays applied
/// and durable on the leader — identical to the crash-between-write-and-
/// ack contract, which clients already disambiguate by OCC read-back.
pub const REPL_ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// A sealed, contiguous run of committed events: the unit of
/// leader→follower shipping. The group id is the first revision.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplGroup {
    events: Vec<WatchEvent>,
}

impl ReplGroup {
    /// Seal `events` into a group. Events must be non-empty and carry
    /// consecutive revisions (the leader's commit order guarantees this;
    /// the assert catches harness bugs, not runtime conditions).
    pub fn new(events: Vec<WatchEvent>) -> ReplGroup {
        assert!(!events.is_empty(), "a replication group holds >= 1 event");
        for pair in events.windows(2) {
            assert_eq!(
                pair[1].revision.0,
                pair[0].revision.0 + 1,
                "replication groups are revision-contiguous"
            );
        }
        ReplGroup { events }
    }

    /// Group id = first revision. Dense revisions make this idempotent:
    /// redelivering a group can never re-apply events the follower holds.
    pub fn id(&self) -> u64 {
        self.events[0].revision.0
    }

    /// Revision of the last event in the group.
    pub fn last(&self) -> u64 {
        self.events[self.events.len() - 1].revision.0
    }

    pub fn events(&self) -> &[WatchEvent] {
        &self.events
    }

    pub fn into_events(self) -> Vec<WatchEvent> {
        self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

/// What a follower should do with an offered group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Apply the events starting at offset `skip` (the first `skip`
    /// events are already applied — a partial redelivery overlap).
    Apply { skip: usize },
    /// Every event in the group is already applied; drop it.
    Duplicate,
    /// The group starts past the follower's frontier; applying it would
    /// tear a hole. The follower must resubscribe from `expected - 1`.
    Gap { expected: u64 },
}

/// Follower-side dedup/gap cursor over the replicated revision stream.
///
/// `next` is the revision the follower needs next; everything below is
/// applied. [`FollowerCursor::offer`] advances the cursor optimistically —
/// callers that fail to apply must rebuild the cursor from the store's
/// actual revision (which is what the resubscribe path does anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerCursor {
    next: u64,
}

impl FollowerCursor {
    /// Cursor for a follower whose store sits at `applied`.
    pub fn at(applied: Revision) -> FollowerCursor {
        FollowerCursor {
            next: applied.0 + 1,
        }
    }

    /// Highest revision this cursor has accepted.
    pub fn applied(&self) -> Revision {
        Revision(self.next - 1)
    }

    /// Classify `group` against the cursor and advance past it when it
    /// (or its unapplied suffix) should be applied.
    pub fn offer(&mut self, group: &ReplGroup) -> ApplyOutcome {
        let (first, last) = (group.id(), group.last());
        if last < self.next {
            return ApplyOutcome::Duplicate;
        }
        if first > self.next {
            return ApplyOutcome::Gap {
                expected: self.next,
            };
        }
        let skip = (self.next - first) as usize;
        self.next = last + 1;
        ApplyOutcome::Apply { skip }
    }
}

/// Leader-side replication state for one store: which follower has
/// durably staged up to which revision, and the condvar quorum waiters
/// block on.
///
/// Lives behind the node's shared `leading` flag: on a follower the
/// state is passive (acks are still recorded — a promoted node already
/// knows its peers' positions — but nothing waits).
pub struct ReplState {
    inner: Mutex<AckTable>,
    cv: Condvar,
    leading: Arc<AtomicBool>,
    acks_total: Arc<Counter>,
    lag_records: Arc<Gauge>,
}

#[derive(Default)]
struct AckTable {
    /// follower name → highest revision staged there. Monotone.
    acked: BTreeMap<String, u64>,
}

impl ReplState {
    pub fn new(store: &StoreId, leading: Arc<AtomicBool>) -> Arc<ReplState> {
        let reg = metrics::global();
        let id = store.to_string();
        Arc::new(ReplState {
            inner: Mutex::new(AckTable::default()),
            cv: Condvar::new(),
            leading,
            acks_total: reg.counter("knactor_repl_acks_total", &[("store", &id)]),
            lag_records: reg.gauge("knactor_repl_lag_records", &[("store", &id)]),
        })
    }

    /// Does this node currently demand quorum for its writes?
    pub fn leading(&self) -> bool {
        self.leading.load(Ordering::Acquire)
    }

    /// Record that `follower` has durably staged everything up to
    /// `revision`. `leader_revision` (the store's current revision) feeds
    /// the lag gauge: committed-but-unreplicated records at the slowest
    /// follower.
    pub fn ack(&self, follower: &str, revision: Revision, leader_revision: Revision) {
        let mut inner = self.inner.lock();
        let entry = inner.acked.entry(follower.to_string()).or_insert(0);
        if revision.0 > *entry {
            *entry = revision.0;
        }
        let min = inner.acked.values().copied().min().unwrap_or(0);
        self.lag_records
            .set(leader_revision.0.saturating_sub(min) as i64);
        drop(inner);
        self.acks_total.inc();
        self.cv.notify_all();
    }

    /// Highest revision acked by at least `n` followers (0 when fewer
    /// than `n` followers have ever acked).
    pub fn quorum(&self, n: usize) -> Revision {
        if n == 0 {
            return Revision(u64::MAX);
        }
        let inner = self.inner.lock();
        let mut acks: Vec<u64> = inner.acked.values().copied().collect();
        if acks.len() < n {
            return Revision::ZERO;
        }
        acks.sort_unstable_by(|a, b| b.cmp(a));
        Revision(acks[n - 1])
    }

    /// Per-follower ack positions (for status/failover decisions).
    pub fn followers(&self) -> Vec<(String, Revision)> {
        self.inner
            .lock()
            .acked
            .iter()
            .map(|(name, rev)| (name.clone(), Revision(*rev)))
            .collect()
    }

    /// Block until `n` followers have acked `revision`, or `timeout`.
    ///
    /// Passive (non-leading) state returns immediately: follower-side
    /// applies must never wait on a quorum only a leader can assemble.
    /// On timeout the caller's commit stays applied-but-unacknowledged
    /// and surfaces [`Error::Timeout`] — never a false ack, which is the
    /// zero-acked-write-loss invariant.
    pub fn wait_quorum(&self, revision: Revision, n: usize, timeout: Duration) -> Result<()> {
        if n == 0 || !self.leading() {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let mut acks: Vec<u64> = inner.acked.values().copied().collect();
            acks.sort_unstable_by(|a, b| b.cmp(a));
            if acks.len() >= n && acks[n - 1] >= revision.0 {
                return Ok(());
            }
            if !self.leading.load(Ordering::Acquire) {
                // Demoted mid-wait: stop demanding a quorum this node can
                // no longer assemble.
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout(format!(
                    "replication quorum {n} not reached for revision {} within {timeout:?}",
                    revision.0
                )));
            }
            // On timeout the loop re-checks the predicate once more (an
            // ack may have landed exactly at the deadline) before the
            // `now >= deadline` branch above reports the failure.
            let (guard, _waited) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            inner = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use knactor_types::ObjectKey;

    fn group(first: u64, len: usize) -> ReplGroup {
        let events = (0..len as u64)
            .map(|i| WatchEvent {
                revision: Revision(first + i),
                kind: EventKind::Created,
                key: ObjectKey::new(format!("k{}", first + i)),
                value: Arc::new(serde_json::json!({"rev": first + i})),
            })
            .collect();
        ReplGroup::new(events)
    }

    #[test]
    fn cursor_applies_contiguous_groups() {
        let mut cur = FollowerCursor::at(Revision::ZERO);
        assert_eq!(cur.offer(&group(1, 3)), ApplyOutcome::Apply { skip: 0 });
        assert_eq!(cur.offer(&group(4, 2)), ApplyOutcome::Apply { skip: 0 });
        assert_eq!(cur.applied(), Revision(5));
    }

    #[test]
    fn cursor_drops_duplicates_and_skips_overlap() {
        let mut cur = FollowerCursor::at(Revision::ZERO);
        assert_eq!(cur.offer(&group(1, 4)), ApplyOutcome::Apply { skip: 0 });
        // Full redelivery: dropped.
        assert_eq!(cur.offer(&group(1, 4)), ApplyOutcome::Duplicate);
        // Partial overlap: only the unapplied suffix applies.
        assert_eq!(cur.offer(&group(3, 4)), ApplyOutcome::Apply { skip: 2 });
        assert_eq!(cur.applied(), Revision(6));
    }

    #[test]
    fn cursor_rejects_gaps() {
        let mut cur = FollowerCursor::at(Revision::ZERO);
        assert_eq!(cur.offer(&group(1, 2)), ApplyOutcome::Apply { skip: 0 });
        assert_eq!(cur.offer(&group(5, 1)), ApplyOutcome::Gap { expected: 3 });
        // The gap did not advance the cursor.
        assert_eq!(cur.applied(), Revision(2));
    }

    #[test]
    fn quorum_is_nth_highest_ack() {
        let leading = Arc::new(AtomicBool::new(true));
        let state = ReplState::new(&StoreId::new("repl/t"), leading);
        assert_eq!(state.quorum(1), Revision::ZERO);
        state.ack("f1", Revision(5), Revision(9));
        state.ack("f2", Revision(3), Revision(9));
        assert_eq!(state.quorum(1), Revision(5));
        assert_eq!(state.quorum(2), Revision(3));
        assert_eq!(state.quorum(3), Revision::ZERO);
        // Acks are monotone: a stale (lower) ack never regresses.
        state.ack("f1", Revision(2), Revision(9));
        assert_eq!(state.quorum(1), Revision(5));
    }

    #[test]
    fn wait_quorum_times_out_without_acks() {
        let leading = Arc::new(AtomicBool::new(true));
        let state = ReplState::new(&StoreId::new("repl/t2"), leading);
        let err = state
            .wait_quorum(Revision(1), 1, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));
    }

    #[test]
    fn wait_quorum_is_passive_on_followers() {
        let leading = Arc::new(AtomicBool::new(false));
        let state = ReplState::new(&StoreId::new("repl/t3"), leading);
        state
            .wait_quorum(Revision(100), 2, Duration::from_millis(1))
            .unwrap();
    }
}
