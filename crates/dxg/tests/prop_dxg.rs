//! Property tests for DXG analysis and planning over *generated* specs.

use knactor_dxg::{analyze, diff, Dxg, Plan};
use proptest::prelude::*;

/// Generate a random DXG source over a small alias/field universe.
/// Assignments write `alias.fN` and read other `alias.fM` references, so
/// both acyclic and cyclic dependency graphs occur.
fn dxg_source() -> impl Strategy<Value = String> {
    let aliases = ["A", "B", "C"];
    let assignment =
        (0usize..3, 0usize..4, 0usize..3, 0usize..4).prop_map(move |(ti, tf, ri, rf)| {
            (
                aliases[ti].to_string(),
                format!("f{tf}"),
                format!("{}.f{rf}", aliases[ri]),
            )
        });
    proptest::collection::vec(assignment, 1..8).prop_map(move |assignments| {
        let mut src = String::from("Input:\n");
        for a in aliases {
            src.push_str(&format!("  {a}: g/v/s/{}\n", a.to_lowercase()));
        }
        src.push_str("DXG:\n");
        // Group by target alias; dedupe identical target paths (the
        // parser rejects duplicate keys).
        let mut by_alias: std::collections::BTreeMap<String, Vec<(String, String)>> =
            Default::default();
        for (alias, field, expr) in assignments {
            let entry = by_alias.entry(alias).or_default();
            if !entry.iter().any(|(f, _)| *f == field) {
                entry.push((field, expr));
            }
        }
        for (alias, fields) in by_alias {
            src.push_str(&format!("  {alias}:\n"));
            for (field, expr) in fields {
                src.push_str(&format!("    {field}: {expr}\n"));
            }
        }
        src
    })
}

proptest! {
    /// Parsing generated specs never panics; analysis is total.
    #[test]
    fn analysis_total(src in dxg_source()) {
        if let Ok(dxg) = Dxg::parse(&src) {
            let _ = analyze::analyze(&dxg);
        }
    }

    /// When analysis reports no errors, a plan builds and its order is a
    /// topological order: every read of a written path happens after the
    /// write's step.
    #[test]
    fn plan_respects_dependencies(src in dxg_source()) {
        let Ok(dxg) = Dxg::parse(&src) else { return Ok(()) };
        let analysis = analyze::analyze(&dxg);
        if analysis.has_errors() {
            prop_assert!(Plan::build(&dxg).is_err(), "plan must refuse erroneous specs");
            return Ok(());
        }
        let plan = Plan::build(&dxg).unwrap();
        // Every assignment appears exactly once.
        let mut seen = vec![false; dxg.assignments.len()];
        for step in &plan.steps {
            for &i in &step.assignments {
                prop_assert!(!seen[i], "assignment {i} scheduled twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "assignment missing from plan");

        // Position of each assignment in the flattened order.
        let flat: Vec<usize> = plan.steps.iter().flat_map(|s| s.assignments.clone()).collect();
        let pos = |i: usize| flat.iter().position(|&x| x == i).unwrap();
        for (wi, w) in dxg.assignments.iter().enumerate() {
            for (ri, r) in dxg.assignments.iter().enumerate() {
                if wi == ri {
                    continue;
                }
                // r reads what w writes (exact write-ref containment check)?
                let w_ref = w.write_ref();
                let reads = r.read_refs();
                let overlaps = reads.iter().any(|rr| {
                    rr == &w_ref
                        || rr.starts_with(&format!("{w_ref}."))
                        || w_ref.starts_with(&format!("{rr}."))
                });
                if overlaps {
                    prop_assert!(
                        pos(wi) < pos(ri),
                        "write {} (idx {wi}) must precede reader {} (idx {ri})\n{src}",
                        w_ref,
                        r.write_ref()
                    );
                }
            }
        }
    }

    /// Consolidation never increases write ops beyond the assignment
    /// count, and each step is single-target.
    #[test]
    fn consolidation_sound(src in dxg_source()) {
        let Ok(dxg) = Dxg::parse(&src) else { return Ok(()) };
        let Ok(plan) = Plan::build(&dxg) else { return Ok(()) };
        prop_assert!(plan.write_ops() <= plan.assignment_count());
        for step in &plan.steps {
            for &i in &step.assignments {
                prop_assert_eq!(&dxg.assignments[i].target_alias, &step.target_alias);
            }
        }
    }

    /// diff(x, x) is empty and diff is anti-symmetric in add/remove.
    #[test]
    fn diff_laws(a in dxg_source(), b in dxg_source()) {
        let (Ok(da), Ok(db)) = (Dxg::parse(&a), Dxg::parse(&b)) else { return Ok(()) };
        prop_assert!(diff(&da, &da).is_empty());
        prop_assert!(diff(&db, &db).is_empty());
        let forward = diff(&da, &db);
        let backward = diff(&db, &da);
        let adds = |cs: &[knactor_dxg::Change]| {
            cs.iter()
                .filter(|c| matches!(c, knactor_dxg::Change::Added { .. }))
                .count()
        };
        let removes = |cs: &[knactor_dxg::Change]| {
            cs.iter()
                .filter(|c| matches!(c, knactor_dxg::Change::Removed { .. }))
                .count()
        };
        prop_assert_eq!(adds(&forward), removes(&backward));
        prop_assert_eq!(removes(&forward), adds(&backward));
    }

    /// UDF export of a valid plan always re-compiles.
    #[test]
    fn udf_export_compiles(src in dxg_source()) {
        let Ok(dxg) = Dxg::parse(&src) else { return Ok(()) };
        let Ok(plan) = Plan::build(&dxg) else { return Ok(()) };
        let assignments = plan.to_udf_assignments(&dxg);
        let inputs = Plan::udf_inputs(&dxg);
        knactor_store::Udf::compile("prop", inputs, &assignments)
            .expect("exported UDF must compile");
    }
}
