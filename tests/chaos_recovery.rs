//! Deterministic chaos suite: the whole stack under injected faults.
//!
//! Every scenario derives its fault schedule from one seed, printed at
//! the top of the test (`chaos seed: ...`). A failure is reproduced by
//! re-running with that seed pinned:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test chaos_recovery
//! ```
//!
//! The seed feeds both the [`FaultProxy`] (frame drops / duplicates /
//! delays / connection kills on the wire) and the [`ResilientClient`]'s
//! backoff jitter, so the *entire* failure schedule is a pure function of
//! it. CI runs a fixed seed matrix plus one time-derived seed per build,
//! so coverage widens over time while every failure stays replayable.
//!
//! What the scenarios assert, across drops, duplicates, delays and
//! forced disconnects:
//!
//! * **exactly-once commits** — retried idempotent writes commit once:
//!   the final store revision equals the logical write count, gapless;
//! * **exactly-once-after-dedup watch delivery** — a resilient watch
//!   delivers revisions `1..=N` in order with no gaps and no duplicates;
//! * **convergence** — Cast integrations reach the same final state with
//!   and without faults.
//!
//! (No lost committed writes across crash/restart is covered by the
//! store-level suite in `crates/store/tests/crash_points.rs`, which arms
//! WAL crash points directly.)

use knactor::net::{FaultApi, FaultPlan, FaultProxy, ResilientClient, RetryPolicy};
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// The scenario seed: `CHAOS_SEED` if set (the reproduction path),
/// otherwise the scenario's fixed default. Always printed so a CI
/// failure carries its own reproduction recipe.
fn chaos_seed(default: u64) -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    println!("chaos seed: {seed} (rerun with CHAOS_SEED={seed})");
    seed
}

fn key(i: u64) -> ObjectKey {
    ObjectKey::new(format!("chaos-{i}"))
}

fn val(i: u64) -> Value {
    json!({"n": i, "payload": format!("data-{i}")})
}

/// Retried idempotent writes commit exactly once. 40 creates go through
/// a proxy that drops, duplicates, delays and kills; each one is retried
/// by the resilient client until acknowledged. A clean side-channel
/// client then audits the server: every object present with the right
/// value, and the store revision is *exactly* the write count — a
/// duplicated or double-committed request would overshoot it, a lost
/// one would undershoot.
#[tokio::test]
async fn chaos_writes_commit_exactly_once_through_flaky_wire() {
    let seed = chaos_seed(0xC0FF_EE01);
    const WRITES: u64 = 40;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::flaky(seed))
        .await
        .unwrap();
    let client = ResilientClient::connect(
        proxy.local_addr(),
        Subject::integrator("chaos"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    api.create_store("chaos/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for i in 0..WRITES {
        api.create("chaos/state".into(), key(i), val(i))
            .await
            .unwrap();
    }

    // Audit over a clean connection: the faulted path must not have
    // smuggled extra commits in, nor lost acknowledged ones.
    let audit = TcpClient::connect(server.local_addr(), Subject::operator("audit"))
        .await
        .unwrap();
    let (objects, revision) = audit.list("chaos/state".into()).await.unwrap();
    assert_eq!(
        objects.len() as u64,
        WRITES,
        "every acked create is present"
    );
    assert_eq!(
        revision,
        Revision(WRITES),
        "revision must be exactly the commit count: no gaps, no duplicate commits"
    );
    for i in 0..WRITES {
        let got = audit.get("chaos/state".into(), key(i)).await.unwrap();
        assert_eq!(
            *got.value,
            val(i),
            "value for {} corrupted in transit",
            key(i)
        );
    }
    println!("proxy faults: {}", proxy.stats().summary());

    proxy.shutdown();
    server.shutdown().await;
}

/// Watch resume delivers every revision exactly once, in order. The
/// watcher subscribes through the flaky proxy and its connection is
/// additionally force-killed every 10 commits; the writer commits over a
/// clean connection. Dropped event frames surface as revision gaps
/// (resubscribe + replay), duplicated frames as revision repeats
/// (deduped), kills as stream ends (reconnect + resume) — and after all
/// of it the consumer must see revisions `1..=N` exactly, in order.
#[tokio::test]
async fn chaos_watch_delivers_every_revision_exactly_once() {
    let seed = chaos_seed(0xC0FF_EE02);
    const WRITES: u64 = 50;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    server
        .object
        .create_store(StoreId::new("chaos/feed"), EngineProfile::instant())
        .unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::flaky(seed))
        .await
        .unwrap();

    let watcher = ResilientClient::connect(
        proxy.local_addr(),
        Subject::operator("watcher"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let watcher: Arc<dyn ExchangeApi> = Arc::new(watcher);
    let mut events = watcher
        .watch("chaos/feed".into(), Revision::ZERO)
        .await
        .unwrap();

    let writer = TcpClient::connect(server.local_addr(), Subject::operator("writer"))
        .await
        .unwrap();
    for i in 0..WRITES {
        writer
            .create("chaos/feed".into(), key(i), val(i))
            .await
            .unwrap();
        if i % 10 == 9 {
            // Sever every proxied connection mid-stream; the resilient
            // watch must reconnect and resume from its last revision.
            proxy.kill_connections();
        }
    }

    let seen = tokio::time::timeout(Duration::from_secs(30), async {
        let mut seen = Vec::new();
        while (seen.len() as u64) < WRITES {
            match events.recv().await {
                Some(event) => seen.push(event),
                None => break,
            }
        }
        seen
    })
    .await
    .expect("watch did not deliver all revisions in time");

    let revisions: Vec<u64> = seen.iter().map(|e| e.revision.0).collect();
    let expected: Vec<u64> = (1..=WRITES).collect();
    assert_eq!(
        revisions, expected,
        "watch must deliver every revision exactly once, in order"
    );
    for (i, event) in seen.iter().enumerate() {
        assert_eq!(event.key, key(i as u64), "event {i} carries the wrong key");
    }
    println!("proxy faults: {}", proxy.stats().summary());

    proxy.shutdown();
    server.shutdown().await;
}

/// Deploy the same Cast integration twice — once on a clean in-process
/// exchange, once over the flaky wire — feed both the same inputs, and
/// require the same final state. Faults may reorder and delay the
/// faulted deployment's activations, but they must not change what it
/// converges to.
#[tokio::test]
async fn chaos_cast_converges_to_faultless_state() {
    let seed = chaos_seed(0xC0FF_EE03);
    const OBJECTS: u64 = 12;
    let dxg_spec =
        "Input:\n  A: chaos/v1/A/a\n  B: chaos/v1/B/b\nDXG:\n  B:\n    shout: upper(A.greeting)\n";
    let config = || -> CastConfig {
        let mut bindings = std::collections::BTreeMap::new();
        bindings.insert("A".to_string(), CastBinding::correlated("a/state"));
        bindings.insert("B".to_string(), CastBinding::correlated("b/state"));
        CastConfig {
            name: "chaos".into(),
            dxg: Dxg::parse(dxg_spec).unwrap(),
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        }
    };
    let deploy = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            api.create_store("a/state".into(), ProfileSpec::Instant)
                .await?;
            api.create_store("b/state".into(), ProfileSpec::Instant)
                .await?;
            Cast::new(api).spawn(config()).await
        }
    };
    let feed = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            for i in 0..OBJECTS {
                api.create(
                    "a/state".into(),
                    key(i),
                    json!({"greeting": format!("msg-{i}")}),
                )
                .await?;
            }
            Ok::<_, Error>(())
        }
    };
    let converged = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            let mut finals = Vec::new();
            for i in 0..OBJECTS {
                let value = knactor::testkit::await_object_state(
                    &api,
                    "b/state",
                    key(i),
                    Duration::from_secs(30),
                    |v| !v["shout"].is_null(),
                )
                .await
                .unwrap_or_else(|e| panic!("b/state {} never converged: {e}", key(i)));
                finals.push((key(i), value["shout"].clone()));
            }
            finals
        }
    };

    // Baseline: clean in-process exchange.
    let (_object, _log, clean) = knactor::net::loopback::in_process(Subject::integrator("chaos"));
    let clean: Arc<dyn ExchangeApi> = Arc::new(clean);
    let baseline_cast = deploy(&clean).await.unwrap();
    feed(&clean).await.unwrap();
    let baseline = converged(&clean).await;

    // Faulted: same integration through a flaky proxy, activations and
    // watches riding the resilient client's retry/resume machinery.
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::flaky(seed))
        .await
        .unwrap();
    let faulted = ResilientClient::connect(
        proxy.local_addr(),
        Subject::integrator("chaos"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let faulted: Arc<dyn ExchangeApi> = Arc::new(faulted);
    let faulted_cast = deploy(&faulted).await.unwrap();
    feed(&faulted).await.unwrap();
    // Audit convergence over a clean connection so the assertion itself
    // is not subject to injected faults.
    let audit = TcpClient::connect(server.local_addr(), Subject::operator("audit"))
        .await
        .unwrap();
    let audit: Arc<dyn ExchangeApi> = Arc::new(audit);
    let chaotic = converged(&audit).await;

    assert_eq!(
        baseline, chaotic,
        "faults must not change what the integration converges to"
    );
    assert_eq!(baseline[0].1, json!("MSG-0"));
    println!("proxy faults: {}", proxy.stats().summary());

    baseline_cast.shutdown().await;
    faulted_cast.shutdown().await;
    proxy.shutdown();
    server.shutdown().await;
}

/// Batched writes under chaos: `batch_commit` frames are dropped,
/// duplicated, delayed and their connections killed, so whole batches
/// vanish (retried), execute twice (every item collides with its own
/// earlier execution), or land with the ack lost. The resilient client's
/// per-item recovery must turn all of that into exactly-once commits:
/// every item eventually acks a revision, the audit sees every object
/// exactly once, and the store revision is *exactly* the item count — a
/// double-committed batch would overshoot it.
#[tokio::test]
async fn chaos_batch_commits_exactly_once_through_flaky_wire() {
    let seed = chaos_seed(0xC0FF_EE05);
    const BATCHES: u64 = 10;
    const PER_BATCH: u64 = 8;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::flaky(seed))
        .await
        .unwrap();
    let client = ResilientClient::connect(
        proxy.local_addr(),
        Subject::integrator("chaos"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    api.create_store("chaos/batched".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for b in 0..BATCHES {
        let ops: Vec<BatchOp> = (0..PER_BATCH)
            .map(|j| {
                let i = b * PER_BATCH + j;
                BatchOp::Create {
                    key: key(i),
                    value: val(i),
                }
            })
            .collect();
        let items = api.batch_commit("chaos/batched".into(), ops).await.unwrap();
        for (j, item) in items.into_iter().enumerate() {
            item.into_revision()
                .unwrap_or_else(|e| panic!("batch {b} item {j} did not recover to a commit: {e}"));
        }
        if b % 3 == 2 {
            // Sever mid-run: the next batch rides a fresh connection and
            // may collide with this one's unacked execution.
            proxy.kill_connections();
        }
    }

    const WRITES: u64 = BATCHES * PER_BATCH;
    let audit = TcpClient::connect(server.local_addr(), Subject::operator("audit"))
        .await
        .unwrap();
    let (objects, revision) = audit.list("chaos/batched".into()).await.unwrap();
    assert_eq!(objects.len() as u64, WRITES, "every acked item is present");
    assert_eq!(
        revision,
        Revision(WRITES),
        "revision must be exactly the item count: no lost or double-committed batch items"
    );
    for i in 0..WRITES {
        assert_eq!(
            *audit
                .get("chaos/batched".into(), key(i))
                .await
                .unwrap()
                .value,
            val(i)
        );
    }
    println!("proxy faults: {}", proxy.stats().summary());

    proxy.shutdown();
    server.shutdown().await;
}

/// Gapless watch over batched fan-out. Batched commits make the server
/// emit `EventBatch` frames (runs of events in one frame); the proxy
/// drops/duplicates *whole frames*, so a single fault now harms a run of
/// events at once, and forced kills sever subscriptions mid-batch. The
/// resilient watcher must still deliver revisions `1..=N` exactly once,
/// in order.
#[tokio::test]
async fn chaos_batched_watch_stays_gapless() {
    let seed = chaos_seed(0xC0FF_EE06);
    const BATCHES: u64 = 8;
    const PER_BATCH: u64 = 8;
    const WRITES: u64 = BATCHES * PER_BATCH;

    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    server
        .object
        .create_store(StoreId::new("chaos/batchfeed"), EngineProfile::instant())
        .unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::flaky(seed))
        .await
        .unwrap();

    let watcher = ResilientClient::connect(
        proxy.local_addr(),
        Subject::operator("watcher"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let watcher: Arc<dyn ExchangeApi> = Arc::new(watcher);
    let mut events = watcher
        .watch("chaos/batchfeed".into(), Revision::ZERO)
        .await
        .unwrap();

    // Writer commits whole batches over a clean connection; each batch
    // lands as one run of consecutive revisions fanned out together.
    let writer = TcpClient::connect(server.local_addr(), Subject::operator("writer"))
        .await
        .unwrap();
    for b in 0..BATCHES {
        let ops: Vec<BatchOp> = (0..PER_BATCH)
            .map(|j| {
                let i = b * PER_BATCH + j;
                BatchOp::Create {
                    key: key(i),
                    value: val(i),
                }
            })
            .collect();
        let items = writer
            .batch_commit("chaos/batchfeed".into(), ops)
            .await
            .unwrap();
        assert!(items.iter().all(|i| !i.is_err()));
        if b % 3 == 1 {
            proxy.kill_connections();
        }
    }

    let seen = tokio::time::timeout(Duration::from_secs(30), async {
        let mut seen = Vec::new();
        while (seen.len() as u64) < WRITES {
            match events.recv().await {
                Some(event) => seen.push(event),
                None => break,
            }
        }
        seen
    })
    .await
    .expect("batched watch did not deliver all revisions in time");

    let revisions: Vec<u64> = seen.iter().map(|e| e.revision.0).collect();
    let expected: Vec<u64> = (1..=WRITES).collect();
    assert_eq!(
        revisions, expected,
        "batched fan-out must stay gapless and duplicate-free through faults"
    );
    println!("proxy faults: {}", proxy.stats().summary());

    proxy.shutdown();
    server.shutdown().await;
}

/// The in-process fault decorator tells the same exactly-once story
/// without a socket in sight: creates driven through [`FaultApi`] see
/// lost requests, lost replies (executed-but-unacked) and duplicated
/// executions, and a caller doing OCC-style idempotent retries — treat
/// `AlreadyExists` on a retry as the lost ack — still ends with exactly
/// one commit per logical write.
#[tokio::test]
async fn chaos_loopback_fault_api_keeps_commits_exactly_once() {
    let seed = chaos_seed(0xC0FF_EE04);
    const WRITES: u64 = 30;

    let (object, _log, clean) = knactor::net::loopback::in_process(Subject::integrator("chaos"));
    let clean: Arc<dyn ExchangeApi> = Arc::new(clean);
    let faulted = FaultApi::new(Arc::clone(&clean), FaultPlan::flaky(seed));

    object
        .create_store(StoreId::new("chaos/local"), EngineProfile::instant())
        .unwrap();
    for i in 0..WRITES {
        let mut attempt = 0u32;
        loop {
            match faulted.create("chaos/local".into(), key(i), val(i)).await {
                Ok(_) => break,
                // A retry finding the object already there means the
                // "lost" earlier attempt actually committed.
                Err(Error::AlreadyExists(_)) if attempt > 0 => break,
                Err(Error::Transport(_) | Error::Timeout(_)) => attempt += 1,
                Err(e) => panic!("unexpected error creating {}: {e}", key(i)),
            }
            assert!(attempt < 100, "retries exhausted for {}", key(i));
        }
    }

    let store = object.store(&StoreId::new("chaos/local")).unwrap();
    assert_eq!(store.len() as u64, WRITES);
    assert_eq!(
        store.revision(),
        Revision(WRITES),
        "revision must equal the logical write count despite duplicated executions"
    );
    for i in 0..WRITES {
        assert_eq!(*store.get(&key(i)).unwrap().value, val(i));
    }
    println!("fault-api faults: {}", faulted.stats().summary());
}
