//! Backpressure and overload behaviour over the wire.
//!
//! Three properties the load work forces and this suite pins down:
//!
//! 1. **Typed shedding, zero acked loss** — past saturation the server
//!    answers with `Error::Overloaded { retry_after_ms }` *before*
//!    dispatch, so a shed request has no side effects, every acked
//!    write is durable, and `ResilientClient` can retry blindly.
//! 2. **No wedge** — an open-loop sweep far past capacity (through the
//!    fault proxy, the deployment path chaos CI exercises) completes,
//!    leaves no abandoned operations, and the server still answers.
//! 3. **Slow subscribers can't take the store down** — a watcher that
//!    stops reading is cut with a typed `WatchLagged { resume_from }`
//!    frame while healthy subscribers keep receiving every event.
//!
//! Seeded (`CHAOS_SEED`) like the rest of the chaos suite.

use knactor::prelude::*;
use knactor_loadgen::{driver, OpGen, RunConfig, WorkloadSpec};
use knactor_net::client::{ResilientClient, RetryPolicy};
use knactor_net::frame::{FrameReader, FrameWriter};
use knactor_net::proto::{decode, encode, EventBody, Hello, Request, RequestEnvelope, ServerMsg};
use knactor_net::server::ServerConfig;
use knactor_net::{FaultPlan, FaultProxy};
use knactor_store::profile::WatchDelivery;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBACC_0FF5)
}

/// Instant-engine profile with a deliberate per-write cost, so a small
/// inflight cap saturates at a load a test can comfortably offer.
fn slow_write_profile(write_delay: Duration) -> EngineProfile {
    EngineProfile {
        write_delay,
        ..EngineProfile::instant()
    }
}

/// Overload a tightly-provisioned server from many connections at once:
/// shedding must be typed, acked writes must all be durable, and
/// resilient writers must land everything despite the storm.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn overload_sheds_typed_and_loses_no_acked_write() {
    let seed = seed();
    eprintln!("CHAOS_SEED={seed}");
    let server = ExchangeServer::bind_with_config(
        "127.0.0.1:0",
        Arc::new(DataExchange::new()),
        Arc::new(LogExchange::new()),
        ServerConfig {
            outbound_queue: 64,
            shed_watermark: 48,
            max_inflight: 2,
            retry_after_ms: 5,
        },
    )
    .await
    .unwrap();
    server
        .object
        .create_store(
            StoreId::new("burst/state"),
            slow_write_profile(Duration::from_millis(2)),
        )
        .unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::none(seed))
        .await
        .unwrap();

    // The storm: 12 connections, each firing 24 pipelined creates with
    // no pacing — open-loop far past a 2-op inflight budget.
    let mut writers = Vec::new();
    for conn in 0..12u64 {
        let addr = proxy.local_addr();
        writers.push(tokio::spawn(async move {
            let client = TcpClient::connect(addr, Subject::operator(&format!("burst-{conn}")))
                .await
                .expect("connect burst writer");
            let mut acked = Vec::new();
            let mut shed = 0u64;
            let ops = (0..24u64).map(|i| {
                let client = &client;
                let key = format!("k-{conn}-{i}");
                async move {
                    let value = json!({"conn": conn, "i": i});
                    let result = client
                        .create(
                            StoreId::new("burst/state"),
                            ObjectKey::new(key.as_str()),
                            value.clone(),
                        )
                        .await;
                    (key, value, result)
                }
            });
            for (key, value, result) in futures_join_all(ops).await {
                match result {
                    Ok(_) => acked.push((key, value)),
                    Err(Error::Overloaded { retry_after_ms }) => {
                        assert!(retry_after_ms > 0, "shed must carry a backoff hint");
                        shed += 1;
                    }
                    Err(other) => panic!("burst write failed untyped: {other}"),
                }
            }
            (acked, shed)
        }));
    }

    // Resilient writers ride through the same storm: every logical
    // write must land, with Overloaded absorbed by retry + backoff.
    let resilient = ResilientClient::connect(
        proxy.local_addr(),
        Subject::operator("resilient-burst"),
        RetryPolicy {
            max_attempts: 60,
            ..RetryPolicy::fast(seed)
        },
    )
    .await
    .unwrap();
    let mut resilient_keys = Vec::new();
    for i in 0..10u64 {
        let key = format!("resilient-{i}");
        resilient
            .create(
                StoreId::new("burst/state"),
                ObjectKey::new(key.as_str()),
                json!({"resilient": i}),
            )
            .await
            .expect("resilient write through overload");
        resilient_keys.push(key);
    }

    let mut acked = Vec::new();
    let mut shed_total = 0u64;
    for writer in writers {
        let (conn_acked, conn_shed) = tokio::time::timeout(Duration::from_secs(60), writer)
            .await
            .expect("burst wedged: writer did not finish")
            .unwrap();
        acked.extend(conn_acked);
        shed_total += conn_shed;
    }
    assert!(
        shed_total > 0,
        "a 12-connection storm against max_inflight=2 must shed (seed {seed})"
    );

    // Zero acked loss: every acknowledged create is readable with the
    // exact acknowledged value, through a fresh connection.
    let verifier = TcpClient::connect(proxy.local_addr(), Subject::operator("verify"))
        .await
        .unwrap();
    assert!(!acked.is_empty(), "storm acked nothing at all");
    for (key, value) in &acked {
        let got = verifier
            .get(StoreId::new("burst/state"), ObjectKey::new(key.as_str()))
            .await
            .unwrap_or_else(|e| panic!("acked write {key} lost: {e} (seed {seed})"));
        assert_eq!(&*got.value, value, "acked write {key} corrupted");
    }
    for key in &resilient_keys {
        verifier
            .get(StoreId::new("burst/state"), ObjectKey::new(key.as_str()))
            .await
            .unwrap_or_else(|e| panic!("resilient write {key} lost: {e} (seed {seed})"));
    }

    // Once the storm subsides the server admits everything again.
    verifier.ping().await.expect("server dead after overload");
    let snapshot = verifier.metrics().await.unwrap();
    let shed_counter: u64 = snapshot
        .counters
        .iter()
        .filter(|c| c.name == "knactor_net_shed_total")
        .map(|c| c.value)
        .sum();
    assert!(
        shed_counter >= shed_total,
        "server shed counter {shed_counter} below client-observed {shed_total}"
    );

    proxy.shutdown();
    server.shutdown().await;
}

/// Tiny join_all (the workspace has no futures crate): polls all
/// futures to completion concurrently within one task.
async fn futures_join_all<F, T>(futs: impl IntoIterator<Item = F>) -> Vec<T>
where
    F: std::future::Future<Output = T>,
{
    let mut handles: Vec<std::pin::Pin<Box<F>>> = futs.into_iter().map(Box::pin).collect();
    let mut out: Vec<Option<T>> = handles.iter().map(|_| None).collect();
    std::future::poll_fn(|cx| {
        let mut all_done = true;
        for (slot, fut) in out.iter_mut().zip(handles.iter_mut()) {
            if slot.is_none() {
                match fut.as_mut().poll(cx) {
                    std::task::Poll::Ready(v) => *slot = Some(v),
                    std::task::Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            std::task::Poll::Ready(())
        } else {
            std::task::Poll::Pending
        }
    })
    .await;
    out.into_iter().map(|v| v.unwrap()).collect()
}

/// An open-loop sweep far past capacity, through the fault proxy, must
/// degrade (latency, shedding, lower achieved rate) — never wedge.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn saturating_rate_sweep_degrades_but_never_wedges() {
    let seed = seed();
    eprintln!("CHAOS_SEED={seed}");
    let server = ExchangeServer::bind_with_config(
        "127.0.0.1:0",
        Arc::new(DataExchange::new()),
        Arc::new(LogExchange::new()),
        ServerConfig {
            outbound_queue: 256,
            shed_watermark: 192,
            max_inflight: 64,
            retry_after_ms: 5,
        },
    )
    .await
    .unwrap();
    server
        .object
        .create_store(
            StoreId::new("checkout/state"),
            slow_write_profile(Duration::from_micros(200)),
        )
        .unwrap();
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::none(seed))
        .await
        .unwrap();

    let client = TcpClient::connect(proxy.local_addr(), Subject::operator("sweep"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let mut gen = OpGen::new(WorkloadSpec::retail(seed));

    // Well under, then far over what the store can serve through one
    // serialized connection.
    for (label, rate) in [("under", 400.0), ("over", 20_000.0)] {
        let cfg = RunConfig::new(label, rate, Duration::from_millis(600));
        let outcome = driver::run(Arc::clone(&api), proxy.local_addr(), &mut gen, &cfg).await;
        eprintln!(
            "{label}: issued={} ok={} shed={} errors={} abandoned={}",
            outcome.issued, outcome.ok, outcome.shed, outcome.errors, outcome.abandoned
        );
        assert!(outcome.ok > 0, "{label}: nothing completed (seed {seed})");
        assert_eq!(
            outcome.errors, 0,
            "{label}: untyped errors under clean-network overload (seed {seed})"
        );
        assert_eq!(
            outcome.abandoned, 0,
            "{label}: operations wedged past the drain window (seed {seed})"
        );
    }

    // The server survived the sweep and still answers promptly.
    let prober = TcpClient::connect(proxy.local_addr(), Subject::operator("prober"))
        .await
        .unwrap()
        .with_request_timeout(Duration::from_secs(5));
    prober
        .ping()
        .await
        .expect("server unresponsive after sweep");

    proxy.shutdown();
    server.shutdown().await;
}

/// A subscriber that stops reading is cut with a typed
/// `WatchLagged { resume_from }` while healthy subscribers — and the
/// store's outbox drainer — keep flowing; resuming from the carried
/// revision replays the gap exactly.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn slow_subscriber_cut_healthy_subscriber_served() {
    let server = ExchangeServer::bind_with_config(
        "127.0.0.1:0",
        Arc::new(DataExchange::new()),
        Arc::new(LogExchange::new()),
        ServerConfig {
            // A small per-connection queue so the non-reading socket
            // backs up into the store-side lag gate quickly.
            outbound_queue: 8,
            shed_watermark: 8,
            max_inflight: 64,
            retry_after_ms: 5,
        },
    )
    .await
    .unwrap();
    let store = StoreId::new("feed/state");
    server
        .object
        .create_store(
            store.clone(),
            // The lag cap is sized so only a subscriber that has stopped
            // reading can plausibly trip it: 256 events of ~48KiB is
            // ~12MiB of backlog, far past any transient scheduling stall
            // of a reader that is actually consuming, while the
            // non-reading socket blows through it the moment the kernel's
            // buffers stop absorbing.
            EngineProfile {
                watch: WatchDelivery::Push,
                watch_lag_cap: 256,
                ..EngineProfile::instant()
            },
        )
        .unwrap();

    // The slow subscriber: a raw socket that subscribes and then never
    // reads a byte.
    let slow = tokio::net::TcpStream::connect(server.local_addr())
        .await
        .unwrap();
    let (slow_read, slow_write) = slow.into_split();
    let mut slow_writer = FrameWriter::new(slow_write);
    let hello = Hello {
        subject_kind: "operator".to_string(),
        subject_name: "slow-sub".to_string(),
    };
    slow_writer
        .write_frame(&encode(&hello).unwrap())
        .await
        .unwrap();
    let watch = RequestEnvelope {
        id: 1,
        body: Request::Watch {
            store: store.clone(),
            from: Revision::ZERO,
        },
    };
    slow_writer
        .write_frame(&encode(&watch).unwrap())
        .await
        .unwrap();

    // Read exactly one frame — the Watch reply, sent after the
    // subscription registered server-side — then go silent forever.
    // This is the registration barrier: every commit below happens
    // after the slow subscription exists.
    let mut slow_reader = FrameReader::new(slow_read);
    let reply = tokio::time::timeout(Duration::from_secs(5), slow_reader.read_frame())
        .await
        .expect("no Watch reply for the slow subscriber")
        .unwrap()
        .expect("slow connection closed during handshake");
    assert!(matches!(
        decode::<ServerMsg>(&reply).unwrap(),
        ServerMsg::Reply { id: 1, .. }
    ));

    // The healthy subscriber, reading normally over a real client: a
    // concurrent task consumes events as they arrive (a subscriber that
    // sat on its channel for the whole write volume would deservedly be
    // cut too), asserting density and order, until told the final
    // revision to expect.
    let healthy = TcpClient::connect(server.local_addr(), Subject::operator("healthy"))
        .await
        .unwrap();
    let mut healthy_rx = healthy.watch(store.clone(), Revision::ZERO).await.unwrap();
    use std::sync::atomic::{AtomicU64, Ordering};
    let target = Arc::new(AtomicU64::new(0));
    let target_in_task = Arc::clone(&target);
    let healthy_task = tokio::spawn(async move {
        let mut next = 1u64;
        loop {
            let t = target_in_task.load(Ordering::Acquire);
            if t != 0 && next > t {
                break;
            }
            match tokio::time::timeout(Duration::from_secs(10), healthy_rx.recv()).await {
                Ok(Some(event)) => {
                    assert_eq!(event.revision, Revision(next), "healthy stream gapped");
                    next += 1;
                }
                Ok(None) => panic!("healthy watch closed early"),
                Err(_) => {
                    let t = target_in_task.load(Ordering::Acquire);
                    assert!(
                        t != 0 && next > t,
                        "healthy subscriber starved behind a slow peer (saw {})",
                        next - 1
                    );
                    break;
                }
            }
        }
        next - 1
    });

    // Values are deliberately fat: the slow subscriber's backlog has to
    // overflow the kernel's TCP buffers before the server's bounded
    // outbound queue — and behind it the store's lag gate — fills up.
    // How much the kernel absorbs depends on autotuned window sizes
    // (warmed loopback route metrics can push rcvbuf to tcp_rmem's max),
    // so instead of a fixed write count we commit until the cutoff
    // counter moves, with a byte ceiling comfortably above the largest
    // buffer budget autotuning can reach (32 MiB rmem + 4 MiB wmem on
    // stock kernels; the ceiling below is ~66 MiB of padded values).
    const MAX_COMMITS: u64 = 1400;
    let pad = "x".repeat(48 * 1024);
    let writer = TcpClient::connect(server.local_addr(), Subject::operator("writer"))
        .await
        .unwrap();
    let cutoffs_at = |snapshot: &knactor::types::metrics::MetricsSnapshot| -> u64 {
        snapshot
            .counters
            .iter()
            .filter(|c| c.name == "knactor_store_watch_cutoffs_total")
            .map(|c| c.value)
            .sum()
    };
    let cutoffs_before = cutoffs_at(&writer.metrics().await.unwrap());
    let mut committed = 0u64;
    while committed < MAX_COMMITS {
        for _ in 0..50 {
            writer
                .create(
                    store.clone(),
                    ObjectKey::new(format!("k{committed:04}").as_str()),
                    json!({"i": committed, "pad": pad}),
                )
                .await
                .unwrap();
            committed += 1;
        }
        if cutoffs_at(&writer.metrics().await.unwrap()) > cutoffs_before {
            break;
        }
    }
    let commits = committed;

    // Healthy subscriber: every commit arrives, in order — the drainer
    // was never stalled behind the non-reading connection.
    target.store(commits, Ordering::Release);
    let received = healthy_task
        .await
        .expect("healthy subscriber task panicked");
    assert_eq!(
        received, commits,
        "healthy subscriber missed events behind a slow peer"
    );

    // The store cut the laggard (typed, counted) and its outbox drains
    // to empty — the drainer was never stalled.
    let snapshot = healthy.metrics().await.unwrap();
    assert!(
        cutoffs_at(&snapshot) > cutoffs_before,
        "lagging subscriber was never cut within {commits} fat commits"
    );
    let drained = tokio::time::timeout(Duration::from_secs(5), async {
        loop {
            let snapshot = healthy.metrics().await.unwrap();
            let lag = snapshot
                .gauges
                .iter()
                .find(|g| {
                    g.name == "knactor_store_outbox_lag"
                        && g.labels
                            .iter()
                            .any(|(k, v)| k == "store" && v == "feed/state")
                })
                .map(|g| g.value)
                .expect("outbox lag gauge missing");
            if lag == 0 {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    })
    .await;
    assert!(drained.is_ok(), "outbox never drained after the cut");

    // Now drain the slow socket: buffered events, then the typed cut
    // frame naming the resume revision.
    let resume_from = tokio::time::timeout(Duration::from_secs(10), async {
        loop {
            let frame = slow_reader
                .read_frame()
                .await
                .expect("slow socket read")
                .expect("slow socket closed before WatchLagged");
            if let Ok(ServerMsg::Event {
                body: EventBody::WatchLagged { resume_from },
                ..
            }) = decode::<ServerMsg>(&frame)
            {
                break resume_from;
            }
        }
    })
    .await
    .expect("no WatchLagged frame reached the cut subscriber");
    assert!(resume_from < commits, "resume point past the write horizon");

    // The carried resume point is genuinely gapless: a fresh watch from
    // it replays revisions resume_from+1 ..= commits in order.
    let resumer = TcpClient::connect(server.local_addr(), Subject::operator("resumer"))
        .await
        .unwrap();
    let mut resumed = resumer
        .watch(store.clone(), Revision(resume_from))
        .await
        .unwrap();
    for expected in (resume_from + 1)..=commits {
        let event = tokio::time::timeout(Duration::from_secs(10), resumed.recv())
            .await
            .expect("resume replay stalled")
            .expect("resume stream closed early");
        assert_eq!(event.revision, Revision(expected), "resume replay gapped");
    }

    server.shutdown().await;
}
