//! Windowing state for continuous queries.
//!
//! A continuous query tails a log store and evaluates its [`Query`] over
//! *windows* of records instead of the whole history. This module owns
//! the pure windowing state machine — push records in, closed windows
//! come out — so it can be tested exhaustively without any integrator or
//! exchange plumbing. The driving loop (subscription, query execution,
//! Object-store write-back) lives in `knactor-core`.
//!
//! Windows are count-based, which composes with the store's dense
//! per-store sequence numbers: a tumbling window of size `n` starting at
//! seq `s` always covers exactly `[s, s+n)`, so a restarted subscriber
//! that resumes from the last closed window's `end_seq` reproduces the
//! same window boundaries — the basis for the exactly-once write-back
//! guarantee (no record is ever counted twice, none is skipped).

use crate::query::Query;
use crate::store::LogRecord;
use knactor_expr::FnRegistry;
use knactor_types::{Result, Value};
use std::collections::VecDeque;

/// Window shape for a continuous query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowSpec {
    /// Non-overlapping windows of exactly `size` records.
    TumblingCount { size: usize },
    /// Overlapping windows of `size` records, one closing every `step`
    /// records (first close after the initial `size` records).
    SlidingCount { size: usize, step: usize },
}

impl WindowSpec {
    pub fn tumbling(size: usize) -> WindowSpec {
        WindowSpec::TumblingCount { size }
    }

    pub fn sliding(size: usize, step: usize) -> WindowSpec {
        WindowSpec::SlidingCount { size, step }
    }

    /// Validate sizes (zero-sized windows would spin forever).
    pub fn validate(&self) -> Result<()> {
        let ok = match self {
            WindowSpec::TumblingCount { size } => *size > 0,
            WindowSpec::SlidingCount { size, step } => *size > 0 && *step > 0,
        };
        if ok {
            Ok(())
        } else {
            Err(knactor_types::Error::Dxg(
                "window size and step must be positive".into(),
            ))
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            WindowSpec::TumblingCount { .. } => "tumbling",
            WindowSpec::SlidingCount { .. } => "sliding",
        }
    }
}

/// One closed window, ready for query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedWindow {
    /// 0-based window number since the state was created.
    pub index: u64,
    /// Sequence range covered, inclusive.
    pub start_seq: u64,
    pub end_seq: u64,
    pub records: Vec<LogRecord>,
}

impl ClosedWindow {
    /// Evaluate a query over the window's records.
    pub fn run(&self, query: &Query, fns: &FnRegistry) -> Result<Vec<Value>> {
        query
            .run_with(self.records.iter().map(|r| r.fields.clone()), fns)
            .map(|(rows, _)| rows)
    }
}

/// Incremental window assembly: feed records in arrival order, collect
/// closed windows.
#[derive(Debug)]
pub struct WindowState {
    spec: WindowSpec,
    buf: VecDeque<LogRecord>,
    /// Records consumed since creation.
    seen: u64,
    /// Windows closed so far.
    closed: u64,
}

impl WindowState {
    pub fn new(spec: WindowSpec) -> WindowState {
        WindowState {
            spec,
            buf: VecDeque::new(),
            seen: 0,
            closed: 0,
        }
    }

    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Records currently buffered (not yet part of a closed window for
    /// tumbling; the trailing overlap for sliding).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Windows closed so far.
    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    /// Feed one record; returns every window this record closes (at most
    /// one for count-based specs).
    pub fn push(&mut self, record: LogRecord) -> Vec<ClosedWindow> {
        self.seen += 1;
        self.buf.push_back(record);
        let mut out = Vec::new();
        match self.spec {
            WindowSpec::TumblingCount { size } => {
                if self.buf.len() >= size {
                    let records: Vec<LogRecord> = self.buf.drain(..).collect();
                    out.push(self.close(records));
                }
            }
            WindowSpec::SlidingCount { size, step } => {
                while self.buf.len() > size {
                    self.buf.pop_front();
                }
                if self.seen >= size as u64 && (self.seen - size as u64).is_multiple_of(step as u64)
                {
                    let records: Vec<LogRecord> = self.buf.iter().cloned().collect();
                    out.push(self.close(records));
                }
            }
        }
        out
    }

    fn close(&mut self, records: Vec<LogRecord>) -> ClosedWindow {
        let start_seq = records.first().map(|r| r.seq).unwrap_or(0);
        let end_seq = records.last().map(|r| r.seq).unwrap_or(start_seq);
        let index = self.closed;
        self.closed += 1;
        ClosedWindow {
            index,
            start_seq,
            end_seq,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn rec(seq: u64) -> LogRecord {
        LogRecord {
            seq,
            fields: json!({"i": seq}),
        }
    }

    #[test]
    fn tumbling_closes_disjoint_windows() {
        let mut w = WindowState::new(WindowSpec::tumbling(3));
        let mut closed = Vec::new();
        for s in 1..=10 {
            closed.extend(w.push(rec(s)));
        }
        assert_eq!(closed.len(), 3);
        assert_eq!((closed[0].start_seq, closed[0].end_seq), (1, 3));
        assert_eq!((closed[1].start_seq, closed[1].end_seq), (4, 6));
        assert_eq!((closed[2].start_seq, closed[2].end_seq), (7, 9));
        assert_eq!(w.pending(), 1);
        // Every record lands in exactly one window.
        let all: Vec<u64> = closed
            .iter()
            .flat_map(|c| c.records.iter().map(|r| r.seq))
            .collect();
        assert_eq!(all, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn sliding_overlaps_by_step() {
        let mut w = WindowState::new(WindowSpec::sliding(4, 2));
        let mut closed = Vec::new();
        for s in 1..=8 {
            closed.extend(w.push(rec(s)));
        }
        assert_eq!(closed.len(), 3);
        assert_eq!((closed[0].start_seq, closed[0].end_seq), (1, 4));
        assert_eq!((closed[1].start_seq, closed[1].end_seq), (3, 6));
        assert_eq!((closed[2].start_seq, closed[2].end_seq), (5, 8));
        assert_eq!(closed[1].records.len(), 4);
    }

    #[test]
    fn window_query_evaluates_per_window() {
        let mut w = WindowState::new(WindowSpec::tumbling(2));
        let q = Query::new()
            .aggregate(None, crate::query::AggFn::Count, None, "n")
            .unwrap();
        let fns = FnRegistry::standard();
        let mut counts = Vec::new();
        for s in 1..=4 {
            for c in w.push(rec(s)) {
                counts.extend(c.run(&q, &fns).unwrap());
            }
        }
        assert_eq!(counts, vec![json!({"n": 2}), json!({"n": 2})]);
    }

    #[test]
    fn specs_validate() {
        assert!(WindowSpec::tumbling(0).validate().is_err());
        assert!(WindowSpec::sliding(4, 0).validate().is_err());
        assert!(WindowSpec::sliding(4, 2).validate().is_ok());
        assert_eq!(WindowSpec::tumbling(1).kind(), "tumbling");
    }
}
