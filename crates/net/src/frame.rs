//! Length-prefixed framing over async byte streams.
//!
//! Wire format: `u32` big-endian payload length, then the payload. The
//! maximum frame size is enforced on both read and write so a corrupt
//! or malicious length prefix cannot make the peer allocate unboundedly.

use bytes::{Buf, BytesMut};
use knactor_types::{Error, Result};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Frames above this size are protocol errors (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Reads frames from an async byte stream, buffering internally.
pub struct FrameReader<R> {
    inner: R,
    buf: BytesMut,
}

impl<R: AsyncRead + Unpin> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: BytesMut::with_capacity(8 * 1024),
        }
    }

    /// Read one frame. `Ok(None)` on clean EOF at a frame boundary;
    /// `Err` on a mid-frame EOF or an oversized length prefix.
    pub async fn read_frame(&mut self) -> Result<Option<BytesMut>> {
        loop {
            if let Some(frame) = self.try_parse()? {
                return Ok(Some(frame));
            }
            let n = self.inner.read_buf(&mut self.buf).await?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(Error::Transport("connection reset mid-frame".to_string()));
            }
        }
    }

    fn try_parse(&mut self) -> Result<Option<BytesMut>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(Error::Transport(format!(
                "frame of {len} bytes exceeds MAX_FRAME"
            )));
        }
        if self.buf.len() < 4 + len {
            self.buf.reserve(4 + len - self.buf.len());
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len)))
    }
}

/// Writes frames to an async byte stream.
///
/// Frames are assembled (length prefix + payload) in a reusable scratch
/// buffer, so a frame costs exactly one `write_all` — not two writes and
/// a flush. Writer loops that drain a queue should *cork*: call
/// [`FrameWriter::write_frame_buffered`] per message and
/// [`FrameWriter::flush`] once the queue is empty, turning N frames into
/// one syscall-ish write.
pub struct FrameWriter<W> {
    inner: W,
    /// Encoded-but-unwritten frames (the cork).
    scratch: BytesMut,
}

impl<W: AsyncWrite + Unpin> FrameWriter<W> {
    pub fn new(inner: W) -> Self {
        FrameWriter {
            inner,
            scratch: BytesMut::with_capacity(8 * 1024),
        }
    }

    /// Append one frame to the scratch buffer without checking length or
    /// touching the socket.
    fn buffer_frame(&mut self, payload: &[u8]) {
        self.scratch.reserve(4 + payload.len());
        self.scratch
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.scratch.extend_from_slice(payload);
    }

    /// Write one frame and flush: the unbatched path, one buffered write
    /// for prefix + payload.
    pub async fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        self.write_frame_buffered(payload)?;
        self.flush().await
    }

    /// Stage one frame in the scratch buffer; nothing reaches the stream
    /// until [`FrameWriter::flush`]. Synchronous — no I/O happens here —
    /// and an oversized payload is rejected before staging, so it never
    /// poisons frames already in the buffer.
    pub fn write_frame_buffered(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(Error::Transport(format!(
                "refusing to send {}-byte frame (max {MAX_FRAME})",
                payload.len()
            )));
        }
        self.buffer_frame(payload);
        Ok(())
    }

    /// Bytes currently staged and unflushed.
    pub fn buffered_len(&self) -> usize {
        self.scratch.len()
    }

    /// Push every staged frame to the stream in one write, then flush it.
    pub async fn flush(&mut self) -> Result<()> {
        if !self.scratch.is_empty() {
            self.inner.write_all(&self.scratch).await?;
            self.scratch.clear();
        }
        self.inner.flush().await?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn roundtrip_frames() {
        // Buffer must hold all frames: the writer runs before the reader.
        let (client, server) = tokio::io::duplex(4096);
        let mut w = FrameWriter::new(client);
        let mut r = FrameReader::new(server);
        w.write_frame(b"hello").await.unwrap();
        w.write_frame(b"").await.unwrap();
        w.write_frame(&[0u8; 1000]).await.unwrap();
        assert_eq!(&r.read_frame().await.unwrap().unwrap()[..], b"hello");
        assert_eq!(r.read_frame().await.unwrap().unwrap().len(), 0);
        assert_eq!(r.read_frame().await.unwrap().unwrap().len(), 1000);
    }

    #[tokio::test]
    async fn clean_eof_returns_none() {
        let (client, server) = tokio::io::duplex(64);
        let mut w = FrameWriter::new(client);
        w.write_frame(b"x").await.unwrap();
        drop(w);
        let mut r = FrameReader::new(server);
        assert!(r.read_frame().await.unwrap().is_some());
        assert!(r.read_frame().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn mid_frame_eof_is_error() {
        let (client, server) = tokio::io::duplex(64);
        {
            use tokio::io::AsyncWriteExt;
            let mut raw = client;
            // Length says 100, but only 3 bytes follow.
            raw.write_all(&100u32.to_be_bytes()).await.unwrap();
            raw.write_all(b"abc").await.unwrap();
        }
        let mut r = FrameReader::new(server);
        assert!(r.read_frame().await.is_err());
    }

    #[tokio::test]
    async fn oversized_length_is_error() {
        let (client, server) = tokio::io::duplex(64);
        {
            use tokio::io::AsyncWriteExt;
            let mut raw = client;
            raw.write_all(&(MAX_FRAME as u32 + 1).to_be_bytes())
                .await
                .unwrap();
        }
        let mut r = FrameReader::new(server);
        assert!(r.read_frame().await.is_err());
    }

    #[tokio::test]
    async fn oversized_write_refused() {
        let (client, _server) = tokio::io::duplex(64);
        let mut w = FrameWriter::new(client);
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(w.write_frame(&big).await.is_err());
    }

    /// Corked frames stay local until flush, then arrive intact and in
    /// order — the framing contract batching relies on.
    #[tokio::test]
    async fn buffered_frames_arrive_only_after_flush() {
        let (client, server) = tokio::io::duplex(4096);
        let mut w = FrameWriter::new(client);
        let mut r = FrameReader::new(server);
        w.write_frame_buffered(b"one").unwrap();
        w.write_frame_buffered(b"two").unwrap();
        assert_eq!(w.buffered_len(), 4 + 3 + 4 + 3);
        w.flush().await.unwrap();
        assert_eq!(w.buffered_len(), 0);
        assert_eq!(&r.read_frame().await.unwrap().unwrap()[..], b"one");
        assert_eq!(&r.read_frame().await.unwrap().unwrap()[..], b"two");
    }

    #[tokio::test]
    async fn oversized_buffered_frame_leaves_staged_frames_intact() {
        let (client, server) = tokio::io::duplex(4096);
        let mut w = FrameWriter::new(client);
        w.write_frame_buffered(b"good").unwrap();
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(w.write_frame_buffered(&big).is_err());
        w.flush().await.unwrap();
        let mut r = FrameReader::new(server);
        assert_eq!(&r.read_frame().await.unwrap().unwrap()[..], b"good");
    }
}
