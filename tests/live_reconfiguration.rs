//! Live reconfiguration through the Composer: minimal restarts, tail
//! positions surviving an apply, zero duplicate deliveries, and rollback
//! when an apply dies half-way (fault-injected at the preflight).

use knactor::net::fault::{FaultApi, FaultPlan};
use knactor::net::proto::{OpSpec, QuerySpec};
use knactor::prelude::*;
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const V1_DXG: &str = "\
Input:
  A: Demo/v1/A/a
  B: Demo/v1/B/b
  C: Demo/v1/C/c
DXG:
  B:
    copied: A.tag
  C:
    note: A.tag
";

/// Same graph, but edge C's expression changed. Edge B and the sync are
/// untouched.
const V2_DXG: &str = "\
Input:
  A: Demo/v1/A/a
  B: Demo/v1/B/b
  C: Demo/v1/C/c
DXG:
  B:
    copied: A.tag
  C:
    note: upper(A.tag)
";

fn bindings() -> BTreeMap<String, CastBinding> {
    let mut b = BTreeMap::new();
    b.insert("A".to_string(), CastBinding::correlated("a/state"));
    b.insert("B".to_string(), CastBinding::correlated("b/state"));
    b.insert("C".to_string(), CastBinding::correlated("c/state"));
    b
}

fn relay_sync() -> SyncConfig {
    SyncConfig {
        name: "s1".to_string(),
        source: StoreId::new("ev/log"),
        dest: SyncDest::Log(StoreId::new("out/log")),
        query: QuerySpec {
            ops: vec![OpSpec::Rename {
                from: "n".into(),
                to: "m".into(),
            }],
        },
        mode: SyncMode::Stream,
        max_batch: 1,
    }
}

async fn setup_stores(api: &Arc<dyn ExchangeApi>) {
    for s in ["a/state", "b/state", "c/state"] {
        api.create_store(s.into(), ProfileSpec::Instant)
            .await
            .unwrap();
    }
    for l in ["ev/log", "out/log"] {
        api.log_create_store(l.into()).await.unwrap();
    }
}

/// Changing 1 of 3 edges reconfigures exactly that edge: the other
/// edges' task instances and the sync's tail position survive, and not
/// a single log record is re-delivered across the apply.
#[tokio::test]
async fn apply_changing_one_edge_leaves_the_others_running() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::operator("live"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    setup_stores(&api).await;

    let composer = Composer::new("live", Arc::clone(&api));
    let v1 = Composition::new()
        .with_cast(Dxg::parse(V1_DXG).unwrap(), bindings(), CastMode::Direct)
        .with_sync(relay_sync());
    let report = composer.apply(v1).await.unwrap();
    assert_eq!(report.spawned, vec!["cast:B", "cast:C", "sync:s1"]);
    assert!(report.reconfigured.is_empty() && report.stopped.is_empty());

    // Traffic through every edge: three log records and one object.
    for i in 0..3 {
        api.log_append("ev/log".into(), json!({"n": i}))
            .await
            .unwrap();
    }
    knactor::testkit::await_log_records(&api, "out/log", 3, Duration::from_secs(10))
        .await
        .unwrap();
    api.create("a/state".into(), "k1".into(), json!({"tag": "hi"}))
        .await
        .unwrap();
    knactor::testkit::await_object_state(&api, "b/state", "k1", Duration::from_secs(10), |v| {
        v["copied"] == json!("hi")
    })
    .await
    .unwrap();
    composer.drain_all().await.unwrap();

    let instances_before: Vec<(String, u64)> = {
        let mut out = Vec::new();
        for key in composer.edge_keys().await {
            out.push((key.clone(), composer.edge_instance(&key).await.unwrap()));
        }
        out
    };
    let tail_before = composer
        .edge_stats("sync:s1")
        .await
        .unwrap()
        .tail_position
        .unwrap();
    assert!(tail_before > 0, "sync must have consumed the three records");

    // The 1-edge change: only cast:C is touched, nothing restarts.
    let v2 = Composition::new()
        .with_cast(Dxg::parse(V2_DXG).unwrap(), bindings(), CastMode::Direct)
        .with_sync(relay_sync());
    let report = composer.apply(v2).await.unwrap();
    assert_eq!(report.reconfigured, vec!["cast:C"]);
    assert_eq!(report.untouched, vec!["cast:B", "sync:s1"]);
    assert_eq!(report.restarts(), 0, "{report:?}");

    // Untouched edges kept their task instances; the reconfigured edge
    // kept its own too (reconfigure swaps config, not the task).
    for (key, before) in &instances_before {
        assert_eq!(
            composer.edge_instance(key).await,
            Some(*before),
            "edge {key} was restarted by an apply that did not change it"
        );
    }
    // The sync's position in the source log survived the apply…
    let tail_after = composer
        .edge_stats("sync:s1")
        .await
        .unwrap()
        .tail_position
        .unwrap();
    assert_eq!(tail_after, tail_before);

    // …so the next record is delivered exactly once: 4 in, 4 out, no
    // replay of the first three.
    api.log_append("ev/log".into(), json!({"n": 3}))
        .await
        .unwrap();
    knactor::testkit::await_log_records(&api, "out/log", 4, Duration::from_secs(10))
        .await
        .unwrap();
    composer.drain_all().await.unwrap();
    let out = api.log_read("out/log".into(), 0).await.unwrap();
    let ms: Vec<_> = out.iter().map(|r| r.fields["m"].clone()).collect();
    assert_eq!(ms, vec![json!(0), json!(1), json!(2), json!(3)]);

    // And the reconfigured edge runs the new expression while the
    // untouched one still runs the old.
    api.create("a/state".into(), "k2".into(), json!({"tag": "new"}))
        .await
        .unwrap();
    knactor::testkit::await_object_state(&api, "c/state", "k2", Duration::from_secs(10), |v| {
        v["note"] == json!("NEW")
    })
    .await
    .unwrap();
    knactor::testkit::await_object_state(&api, "b/state", "k2", Duration::from_secs(10), |v| {
        v["copied"] == json!("new")
    })
    .await
    .unwrap();

    composer.shutdown_all().await;
}

/// An apply that dies half-way (the new edge's preflight hits a dead
/// exchange) rolls back: the already-reconfigured edge gets its old
/// config back, the half-spawned edge is gone, and every prior edge is
/// still healthy and running the pre-apply behaviour.
#[tokio::test]
async fn failed_apply_rolls_back_to_previous_composition() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::operator("live"));
    let fault = Arc::new(FaultApi::new(Arc::new(client), FaultPlan::none(7)));
    let api: Arc<dyn ExchangeApi> = Arc::clone(&fault) as Arc<dyn ExchangeApi>;
    for s in ["a/state", "b/state", "d/state"] {
        api.create_store(s.into(), ProfileSpec::Instant)
            .await
            .unwrap();
    }

    let composer = Composer::new("live", Arc::clone(&api));
    let v1_spec = "Input:\n  A: Demo/v1/A/a\n  B: Demo/v1/B/b\nDXG:\n  B:\n    copied: A.tag\n";
    let mut v1_bindings = BTreeMap::new();
    v1_bindings.insert("A".to_string(), CastBinding::correlated("a/state"));
    v1_bindings.insert("B".to_string(), CastBinding::correlated("b/state"));
    let v1 = Composition::new().with_cast(
        Dxg::parse(v1_spec).unwrap(),
        v1_bindings.clone(),
        CastMode::Direct,
    );
    composer.apply(v1.clone()).await.unwrap();
    let instance_before = composer.edge_instance("cast:B").await.unwrap();

    // The exchange dies. v2 both modifies edge B (an offline
    // reconfigure — it succeeds) and adds edge D (its preflight probes
    // the exchange — it fails). The apply must undo the reconfigure.
    fault.set_plan(FaultPlan {
        drop_frame: 1.0,
        ..FaultPlan::none(7)
    });
    let v2_spec = "Input:\n  A: Demo/v1/A/a\n  B: Demo/v1/B/b\n  D: Demo/v1/D/d\nDXG:\n  B:\n    copied: upper(A.tag)\n  D:\n    flag: A.tag\n";
    let mut v2_bindings = v1_bindings.clone();
    v2_bindings.insert("D".to_string(), CastBinding::correlated("d/state"));
    let v2 =
        Composition::new().with_cast(Dxg::parse(v2_spec).unwrap(), v2_bindings, CastMode::Direct);
    let err = composer.apply(v2).await.unwrap_err();
    assert!(!format!("{err}").is_empty());
    assert_eq!(composer.counters().get("composer.apply.rolled_back"), 1);
    assert_eq!(composer.counters().get("composer.apply.rollback_failed"), 0);

    // The world is exactly the pre-apply one: same single edge, same
    // task instance, still healthy.
    assert_eq!(composer.edge_keys().await, vec!["cast:B"]);
    assert_eq!(
        composer.edge_instance("cast:B").await,
        Some(instance_before)
    );
    assert_eq!(composer.edge_health("cast:B").await, Some(Health::Running));

    // Exchange recovers; the surviving edge runs the OLD expression —
    // the reconfigure really was undone, not just reported as such.
    fault.set_plan(FaultPlan::none(7));
    api.create("a/state".into(), "k".into(), json!({"tag": "ok"}))
        .await
        .unwrap();
    knactor::testkit::await_object_state(&api, "b/state", "k", Duration::from_secs(10), |v| {
        v["copied"] == json!("ok")
    })
    .await
    .unwrap();

    // Re-applying the original composition is a no-op, confirming the
    // composer's applied-spec view stayed on v1.
    let report = composer.apply(v1).await.unwrap();
    assert_eq!(report.untouched, vec!["cast:B"]);
    assert_eq!(report.restarts(), 0);

    composer.shutdown_all().await;
}
