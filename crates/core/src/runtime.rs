//! The Knactor runtime: deploys knactors, supervises reconcilers,
//! coordinates graceful shutdown.
//!
//! Each deployed knactor gets a reconcile loop task: watch the primary
//! store, call the reconciler per event. Supervision follows the "task
//! per unit of failure" pattern: every `reconcile` call runs in its own
//! task, so a panic is contained, logged, and the loop continues with the
//! next event. Shutdown is the Tokio watch-flag pattern — all loops
//! observe one flag and drain.

use crate::knactor::Knactor;
use crate::reconciler::ReconcilerCtx;
use knactor_net::ExchangeApi;
use knactor_types::{Error, Result, Revision};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::watch;
use tokio::task::JoinHandle;

/// Supervises a set of knactor reconcile loops.
pub struct Runtime {
    shutdown_tx: watch::Sender<bool>,
    tasks: Mutex<Vec<(String, JoinHandle<()>)>>,
    /// Reconcile invocations that ended in panic (visible to tests and
    /// operators; a growing count means a sick reconciler).
    panics: Arc<AtomicU64>,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    pub fn new() -> Runtime {
        let (shutdown_tx, _) = watch::channel(false);
        Runtime {
            shutdown_tx,
            tasks: Mutex::new(Vec::new()),
            panics: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Deploy a knactor: externalize its stores/schema through `api`,
    /// then (if it has a reconciler) start its reconcile loop using the
    /// same client.
    ///
    /// `api` should be authenticated as the knactor's own reconciler
    /// subject so the exchange's RBAC sees the right identity.
    pub async fn deploy(&self, knactor: Knactor, api: Arc<dyn ExchangeApi>) -> Result<()> {
        knactor.externalize(&*api).await?;
        self.deploy_pre_externalized(knactor, api).await
    }

    /// Like [`Runtime::deploy`], but the caller already created the
    /// stores (e.g. with a non-default engine profile) and registered
    /// any schema — only the reconcile loop is started.
    pub async fn deploy_pre_externalized(
        &self,
        knactor: Knactor,
        api: Arc<dyn ExchangeApi>,
    ) -> Result<()> {
        let Some(reconciler) = knactor.reconciler.clone() else {
            return Ok(());
        };
        let store = knactor
            .primary_store()
            .cloned()
            .ok_or_else(|| Error::Internal(format!("knactor {} has no store", knactor.id)))?;
        let ctx = ReconcilerCtx::new(
            knactor.id.clone(),
            store.clone(),
            knactor.log_stores.clone(),
            Arc::clone(&api),
        );
        let mut shutdown = self.shutdown_tx.subscribe();
        let panics = Arc::clone(&self.panics);
        let name = knactor.id.to_string();
        let task_name = name.clone();
        let task = tokio::spawn(async move {
            let mut rx = match api.watch(store.clone(), Revision::ZERO).await {
                Ok(rx) => rx,
                Err(_) => return,
            };
            loop {
                tokio::select! {
                    _ = shutdown.changed() => {
                        if *shutdown.borrow() {
                            return;
                        }
                    }
                    event = rx.recv() => {
                        let Some(event) = event else { return };
                        let ctx = ctx.clone();
                        let reconciler = Arc::clone(&reconciler);
                        // Contain panics: one bad event must not kill the
                        // loop.
                        let handle = tokio::spawn(async move {
                            reconciler.reconcile(&ctx, event).await
                        });
                        match handle.await {
                            Ok(Ok(())) => {}
                            Ok(Err(_e)) => {
                                // Reconcile errors are per-event; the next
                                // event retries naturally.
                            }
                            Err(join_err) if join_err.is_panic() => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => return,
                        }
                    }
                }
            }
        });
        self.tasks.lock().push((task_name, task));
        Ok(())
    }

    /// Register an externally-spawned task for shutdown tracking.
    pub fn adopt(&self, name: impl Into<String>, task: JoinHandle<()>) {
        self.tasks.lock().push((name.into(), task));
    }

    /// Replace a named task: abort the old one (if any) and track the new
    /// one under the same name. This is how the composer swaps an edge's
    /// supervision entry without leaking the stale handle.
    pub fn replace(&self, name: impl Into<String>, task: JoinHandle<()>) {
        let name = name.into();
        let mut tasks = self.tasks.lock();
        tasks.retain(|(n, t)| {
            if *n == name {
                t.abort();
                false
            } else {
                true
            }
        });
        tasks.push((name, task));
    }

    /// Stop tracking (and abort) a named task. Returns whether any entry
    /// matched.
    pub fn remove(&self, name: &str) -> bool {
        let mut tasks = self.tasks.lock();
        let before = tasks.len();
        tasks.retain(|(n, t)| {
            if n == name {
                t.abort();
                false
            } else {
                true
            }
        });
        tasks.len() != before
    }

    /// A shutdown flag receiver for custom components.
    pub fn shutdown_signal(&self) -> watch::Receiver<bool> {
        self.shutdown_tx.subscribe()
    }

    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    pub fn task_names(&self) -> Vec<String> {
        self.tasks.lock().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Graceful shutdown: raise the flag, await every task.
    pub async fn shutdown(self) {
        self.shutdown_with_grace(std::time::Duration::from_secs(10))
            .await;
    }

    /// Drain-aware shutdown: raise the flag, give every task `grace` to
    /// observe it and finish (a supervised composer uses this window to
    /// drain its edges), then abort stragglers so shutdown always
    /// terminates.
    pub async fn shutdown_with_grace(self, grace: std::time::Duration) {
        let _ = self.shutdown_tx.send(true);
        let tasks: Vec<_> = self.tasks.into_inner();
        for (_name, mut task) in tasks {
            if tokio::time::timeout(grace, &mut task).await.is_err() {
                task.abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knactor::Knactor;
    use crate::reconciler::FnReconciler;
    use knactor_net::loopback::in_process;
    use knactor_rbac::Subject;
    use knactor_store::WatchEvent;
    use knactor_types::{ObjectKey, StoreId};
    use serde_json::json;
    use std::time::{Duration, Instant};

    #[tokio::test]
    async fn deploy_runs_reconciler_on_events() {
        let (_, _, client) = in_process(Subject::reconciler("shipping"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let runtime = Runtime::new();

        // A shipping reconciler: when a shipment object appears with an
        // address, post a tracking id.
        let shipping = Knactor::builder("shipping")
            .object_store("state")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    if event
                        .value
                        .get("addr")
                        .map(|a| !a.is_null())
                        .unwrap_or(false)
                        && event.value.get("id").map(|v| v.is_null()).unwrap_or(true)
                    {
                        ctx.patch(&event.key, json!({"id": format!("track-{}", event.key)}))
                            .await?;
                    }
                    Ok(())
                },
            ))
            .build();
        runtime.deploy(shipping, Arc::clone(&api)).await.unwrap();

        api.create(
            StoreId::new("shipping/state"),
            ObjectKey::new("order-1"),
            json!({"addr": "Soda Hall"}),
        )
        .await
        .unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let obj = api
                .get(StoreId::new("shipping/state"), ObjectKey::new("order-1"))
                .await
                .unwrap();
            if obj.value.get("id").map(|v| !v.is_null()).unwrap_or(false) {
                assert_eq!(obj.value["id"], json!("track-order-1"));
                break;
            }
            assert!(Instant::now() < deadline, "reconciler never wrote id");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        runtime.shutdown().await;
    }

    #[tokio::test]
    async fn panicking_reconciler_is_contained() {
        let (_, _, client) = in_process(Subject::reconciler("flaky"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let runtime = Runtime::new();

        let flaky = Knactor::builder("flaky")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    if event.value.get("boom").is_some() {
                        panic!("injected failure");
                    }
                    ctx.patch(&event.key, json!({"ok": true})).await?;
                    Ok(())
                },
            ))
            .build();
        runtime.deploy(flaky, Arc::clone(&api)).await.unwrap();

        // First event panics; second must still be processed.
        api.create(
            StoreId::new("flaky/state"),
            ObjectKey::new("bad"),
            json!({"boom": 1}),
        )
        .await
        .unwrap();
        api.create(
            StoreId::new("flaky/state"),
            ObjectKey::new("good"),
            json!({"n": 1}),
        )
        .await
        .unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let obj = api
                .get(StoreId::new("flaky/state"), ObjectKey::new("good"))
                .await
                .unwrap();
            if obj.value.get("ok").is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "loop died after panic");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(runtime.panic_count() >= 1);
        runtime.shutdown().await;
    }

    #[tokio::test]
    async fn shutdown_stops_loops() {
        let (_, _, client) = in_process(Subject::reconciler("quiet"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let runtime = Runtime::new();
        let quiet = Knactor::builder("quiet")
            .reconciler(FnReconciler::new(
                |_ctx: ReconcilerCtx, _e: WatchEvent| async move { Ok(()) },
            ))
            .build();
        runtime.deploy(quiet, Arc::clone(&api)).await.unwrap();
        assert_eq!(runtime.task_names(), vec!["quiet"]);
        // Must return promptly.
        tokio::time::timeout(Duration::from_secs(5), runtime.shutdown())
            .await
            .expect("shutdown hung");
    }

    #[tokio::test]
    async fn deploy_without_reconciler_only_externalizes() {
        let (object, _, client) = in_process(Subject::operator("deploy"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let runtime = Runtime::new();
        runtime
            .deploy(Knactor::builder("passive").build(), Arc::clone(&api))
            .await
            .unwrap();
        assert!(object.store(&StoreId::new("passive/state")).is_ok());
        assert!(runtime.task_names().is_empty());
        runtime.shutdown().await;
    }
}
