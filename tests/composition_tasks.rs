//! The Table 1 tasks, executed behaviourally: each task is one
//! composition apply, executed against a *running* application.

use knactor::apps::retail::knactor_app::{self, retail_bindings, RetailOptions};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn asset(name: &str) -> String {
    std::fs::read_to_string(knactor::apps::crate_file(&format!("assets/{name}"))).unwrap()
}

/// T1: start with a DXG that composes nothing, then swap in the Fig. 6
/// DXG at run time — the Payment/Shipping composition appears without
/// touching any service.
#[tokio::test]
async fn t1_compose_payment_and_shipping_at_runtime() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = knactor_app::deploy(Arc::clone(&api), RetailOptions::default())
        .await
        .unwrap();

    // Swap DOWN to the do-nothing baseline spec first. The diff against
    // the full Fig. 6 composition stops the P and S edges and
    // reconfigures C's in place.
    let report = app
        .apply_dxg(Dxg::parse(&asset("retail_dxg_t1_base.yaml")).unwrap())
        .await
        .unwrap();
    assert_eq!(report.reconfigured, vec!["cast:C"]);
    assert_eq!(report.stopped, vec!["cast:P", "cast:S"]);

    // An order placed now goes nowhere: no shipment materializes even
    // after the baseline edge has demonstrably processed the event (the
    // drain barrier replaces a racy sleep here).
    api.create("checkout/state".into(), "o1".into(), sample_order(900.0))
        .await
        .unwrap();
    knactor::testkit::await_object_state(
        &api,
        "checkout/state",
        "o1",
        Duration::from_secs(5),
        |v| !v["order"]["totalCost"].is_null(),
    )
    .await
    .unwrap();
    app.composer.drain_all().await.unwrap();
    assert!(
        api.get("shipping/state".into(), "o1".into()).await.is_err(),
        "baseline spec must not create shipments"
    );

    // T1: one apply composes Payment + Shipping with Checkout.
    let report = app
        .apply_dxg(Dxg::parse(&asset("retail_dxg.yaml")).unwrap())
        .await
        .unwrap();
    assert_eq!(report.spawned, vec!["cast:P", "cast:S"]);
    assert_eq!(report.reconfigured, vec!["cast:C"]);

    // The EXISTING order now flows (a fresh event is needed: nudge it).
    api.patch(
        "checkout/state".into(),
        "o1".into(),
        json!({"nudge": 1}),
        false,
    )
    .await
    .unwrap();
    knactor::testkit::await_object_state(
        &api,
        "checkout/state",
        "o1",
        Duration::from_secs(10),
        |v| !v["order"]["trackingID"].is_null(),
    )
    .await
    .expect("T1 composition");
    app.shutdown().await;
}

/// T3: Shipping evolves its schema; adapting the composition is one spec
/// swap. The new spec writes `destination`/`contact` instead of `addr`.
#[tokio::test]
async fn t3_adapt_to_shipping_schema_v2() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    for s in ["checkout/state", "shipping/state", "payment/state"] {
        api.create_store(s.into(), ProfileSpec::Instant)
            .await
            .unwrap();
    }
    let dxg = Dxg::parse(&asset("retail_dxg_t3.yaml")).unwrap();
    let analysis = knactor::dxg::analyze::analyze(&dxg);
    assert!(!analysis.has_errors(), "{:?}", analysis.findings);

    api.create("checkout/state".into(), "o".into(), sample_order(500.0))
        .await
        .unwrap();
    let cast = Cast::new(Arc::clone(&api));
    let config = CastConfig {
        name: "retail-v2".into(),
        dxg,
        bindings: retail_bindings(),
        mode: CastMode::Direct,
        coalesce: 1,
    };
    cast.activate_once(&config, &"o".into()).await.unwrap();

    let shipment = api.get("shipping/state".into(), "o".into()).await.unwrap();
    assert_eq!(
        shipment.value["destination"],
        json!("2570 Soda Hall, Berkeley CA"),
        "v2 field name must be used"
    );
    assert!(
        shipment.value.get("addr").is_none(),
        "v1 field must be gone"
    );
    assert_eq!(shipment.value["method"], json!("ground"));
}

/// The schema files themselves document the evolution: v1 and v2 differ
/// exactly by the renamed/added fields.
#[test]
fn shipping_schema_versions_differ_as_documented() {
    let v1 = knactor::core::parse_schema(&asset("shipping_schema_v1.yaml")).unwrap();
    let v2 = knactor::core::parse_schema(&asset("shipping_schema_v2.yaml")).unwrap();
    assert_eq!(v1.name.version(), Some("v1"));
    assert_eq!(v2.name.version(), Some("v2"));
    assert!(v1.get("addr").is_some());
    assert!(v2.get("addr").is_none());
    assert!(v2.get("destination").is_some());
    assert!(v2.get("contact").is_some());
    // Both declare the integrator-filled surface.
    assert!(v1.get("addr").unwrap().is_external());
    assert!(v2.get("destination").unwrap().is_external());
}

/// The Fig. 5 checkout schema gates what enters the Checkout store.
#[tokio::test]
async fn checkout_schema_validates_ingest() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::operator("test"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    api.create_store("checkout/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    let schema = knactor::core::parse_schema(&asset("checkout_schema.yaml")).unwrap();
    api.register_schema(schema.clone()).await.unwrap();
    api.bind_schema("checkout/state".into(), schema.name.clone())
        .await
        .unwrap();

    // A conforming order object (the schema describes the inner order).
    let order = sample_order(100.0)["order"].clone();
    api.create("checkout/state".into(), "ok".into(), order)
        .await
        .unwrap();

    // Undeclared fields are rejected.
    let err = api
        .create("checkout/state".into(), "bad".into(), json!({"bogus": 1}))
        .await
        .unwrap_err();
    assert!(matches!(err, Error::SchemaViolation(_)));
}
