//! Minimal offline stand-in for `serde` (+ the value model of `serde_json`).
//!
//! The real serde serializes through a visitor pipeline; this stand-in
//! serializes through an owned JSON [`Value`] tree, which is exactly what
//! every caller in this workspace ultimately wants (the wire format and the
//! WAL are both JSON text). `Serialize` produces a `Value`; `Deserialize`
//! consumes one. The derive macros live in the `serde_derive` crate and are
//! re-exported here under the usual names.
#![allow(clippy::all)]

mod impls;
mod text;
mod value;

pub use text::{parse_json, write_json, write_json_into};
pub use value::{Map, Number, Value};

/// Error type shared by serialization and deserialization
/// (re-exported by `serde_json` as `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub mod ser {
    /// A type that can render itself as a JSON value tree.
    pub trait Serialize {
        fn serialize_value(&self) -> crate::Value;
    }
}

pub mod de {
    /// A type that can be rebuilt from a JSON value tree.
    ///
    /// The lifetime parameter exists only for signature compatibility with
    /// real serde (`for<'de> Deserialize<'de>` bounds in downstream code);
    /// this implementation always deserializes from owned values.
    pub trait Deserialize<'de>: Sized {
        fn deserialize_value(value: &crate::Value) -> Result<Self, crate::Error>;
    }

    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::Deserialize;
pub use ser::Serialize;

pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod __private {
    //! Paths the derive-generated code references, insulated from whatever
    //! the deriving module imports.
    pub use crate::de::Deserialize;
    pub use crate::ser::Serialize;
    pub use crate::{Error, Map, Value};

    /// `rename_all = "snake_case"`, matching serde's conversion exactly:
    /// an underscore is inserted before every uppercase letter except the
    /// first, then everything is lowercased (`RefCounted` → `ref_counted`,
    /// `I64` → `i64`).
    pub fn snake_case(name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 4);
        for (i, ch) in name.char_indices() {
            if ch.is_uppercase() {
                if i > 0 {
                    out.push('_');
                }
                out.extend(ch.to_lowercase());
            } else {
                out.push(ch);
            }
        }
        out
    }

    pub fn missing_field(ty: &str, field: &str) -> crate::Error {
        crate::Error::msg(format!("missing field `{field}` of {ty}"))
    }

    pub fn expected_object(ty: &str, got: &crate::Value) -> crate::Error {
        crate::Error::msg(format!("invalid type: expected object for {ty}, got {got}"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> crate::Error {
        crate::Error::msg(format!("unknown variant `{variant}` of enum {ty}"))
    }
}
