//! # knactor-bench
//!
//! Harnesses that regenerate the paper's evaluation:
//!
//! * [`table2`] — the latency breakdown of one shipment request across
//!   RPC, K-apiserver, K-redis, and K-redis-udf (Table 2). Run with
//!   `cargo run -p knactor-bench --bin table2 --release`.
//! * [`scatter`] — the §2 "composition logic is scattered" statistics:
//!   API-invocation sites across the API-centric apps vs the single DXG.
//!   Run with `cargo run -p knactor-bench --bin scatter`.
//! * Table 1 is measured from the manifests in `knactor_apps::table1`;
//!   run with `cargo run -p knactor-bench --bin table1`.
//!
//! Criterion micro-benchmarks for the §3.3 ablations live in `benches/`.

pub mod scatter;
pub mod table2;

/// Render a list of rows as an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_aligns_columns() {
        let out = super::render_table(
            &["Setup", "Total"],
            &[
                vec!["RPC".to_string(), "447.8".to_string()],
                vec!["K-apiserver".to_string(), "486.1".to_string()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("RPC"));
        assert!(lines[3].contains("K-apiserver"));
    }
}
