//! `block_on` and the `Runtime`/`Builder` facade.

use std::future::Future;
use std::pin::pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// A waker that unparks one specific thread via flag + condvar.
pub(crate) struct ThreadWaker {
    notified: Mutex<bool>,
    cv: Condvar,
}

impl ThreadWaker {
    pub(crate) fn new() -> Arc<ThreadWaker> {
        Arc::new(ThreadWaker {
            notified: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn wait(&self) {
        let mut notified = self.notified.lock().unwrap();
        while !*notified {
            notified = self.cv.wait(notified).unwrap();
        }
        *notified = false;
    }

    pub(crate) fn notify(&self) {
        *self.notified.lock().unwrap() = true;
        self.cv.notify_one();
    }
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.notify();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notify();
    }
}

/// Drive a future to completion on the calling thread.
pub fn block_on_free<F: Future>(fut: F) -> F::Output {
    let tw = ThreadWaker::new();
    let waker = Waker::from(Arc::clone(&tw));
    let mut cx = Context::from_waker(&waker);
    let mut fut = pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => tw.wait(),
        }
    }
}

/// Runtime facade. Tasks run on their own threads regardless of which
/// runtime spawned them, so this only needs to provide `block_on`.
#[derive(Debug)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        block_on_free(fut)
    }

    pub fn spawn<F>(&self, fut: F) -> crate::task::JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        crate::task::spawn(fut)
    }
}

#[derive(Debug, Default)]
pub struct Builder {
    _priv: (),
}

impl Builder {
    pub fn new_multi_thread() -> Builder {
        Builder { _priv: () }
    }

    pub fn new_current_thread() -> Builder {
        Builder { _priv: () }
    }

    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    pub fn enable_time(&mut self) -> &mut Builder {
        self
    }

    pub fn enable_io(&mut self) -> &mut Builder {
        self
    }

    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}
