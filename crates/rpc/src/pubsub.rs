//! Miniature Pub/Sub broker (the EMQX stand-in).
//!
//! Topics with fan-out delivery: a published message reaches every
//! current subscriber, asynchronously, in publish order per topic. As in
//! MQTT/Kafka-style composition, the *topic name and message schema* are
//! the implicit API — which is precisely the coupling the paper's
//! smart-home example (§2) exhibits: House subscribes to Motion's topic,
//! decodes Motion's schema, and publishes to Lamp's topic using Lamp's
//! schema.

use knactor_types::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::mpsc;

/// One received message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub topic: String,
    pub payload: Value,
}

/// An in-process broker.
#[derive(Clone, Default)]
pub struct Broker {
    topics: Arc<Mutex<HashMap<String, Vec<mpsc::UnboundedSender<Message>>>>>,
    published: Arc<Mutex<u64>>,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Broker({} topics)", self.topics.lock().len())
    }
}

impl Broker {
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Subscribe to a topic; returns a stream of messages published from
    /// now on (no replay — matching MQTT QoS-0 semantics, which is what
    /// the original smart-home app uses).
    pub fn subscribe(&self, topic: impl Into<String>) -> mpsc::UnboundedReceiver<Message> {
        let (tx, rx) = mpsc::unbounded_channel();
        self.topics.lock().entry(topic.into()).or_default().push(tx);
        rx
    }

    /// Publish to a topic. Returns the number of subscribers reached.
    pub fn publish(&self, topic: &str, payload: Value) -> usize {
        *self.published.lock() += 1;
        let mut topics = self.topics.lock();
        let Some(subs) = topics.get_mut(topic) else {
            return 0;
        };
        let msg = Message {
            topic: topic.to_string(),
            payload,
        };
        subs.retain(|tx| tx.send(msg.clone()).is_ok());
        subs.len()
    }

    /// Total messages published (diagnostics).
    pub fn published_count(&self) -> u64 {
        *self.published.lock()
    }

    pub fn topic_names(&self) -> Vec<String> {
        self.topics.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[tokio::test]
    async fn publish_reaches_all_subscribers() {
        let broker = Broker::new();
        let mut a = broker.subscribe("motion");
        let mut b = broker.subscribe("motion");
        let reached = broker.publish("motion", json!({"triggered": true}));
        assert_eq!(reached, 2);
        assert_eq!(a.recv().await.unwrap().payload, json!({"triggered": true}));
        assert_eq!(b.recv().await.unwrap().payload, json!({"triggered": true}));
    }

    #[tokio::test]
    async fn no_subscribers_drops_message() {
        let broker = Broker::new();
        assert_eq!(broker.publish("empty", json!(1)), 0);
        // No replay: a late subscriber misses it.
        let mut late = broker.subscribe("empty");
        broker.publish("empty", json!(2));
        assert_eq!(late.recv().await.unwrap().payload, json!(2));
    }

    #[tokio::test]
    async fn dropped_subscriber_pruned() {
        let broker = Broker::new();
        let rx = broker.subscribe("t");
        drop(rx);
        assert_eq!(broker.publish("t", json!(1)), 0);
    }

    #[tokio::test]
    async fn topics_are_independent() {
        let broker = Broker::new();
        let mut motion = broker.subscribe("motion");
        let _lamp = broker.subscribe("lamp");
        broker.publish("lamp", json!({"brightness": 5}));
        broker.publish("motion", json!({"triggered": true}));
        // The motion subscriber sees only motion traffic.
        assert_eq!(
            motion.recv().await.unwrap().payload,
            json!({"triggered": true})
        );
        assert_eq!(broker.published_count(), 2);
    }
}
