//! Log-DE query throughput bench: what do columnar sealed segments, the
//! parallel segment-at-a-time executor, and compaction buy over the
//! row-oriented seed path?
//!
//! ```text
//! cargo run -p knactor-bench --bin log --release          # full (1M records)
//! cargo run -p knactor-bench --bin log --release -- quick # CI variant
//! ```
//!
//! Two stores hold the *same* seeded telemetry: one configured like the
//! seed (row segments, no compaction), one with the current defaults
//! (columnar seal, parallel `run_store`). The baseline for every query is
//! the seed's execution path — materialize `read_all()` and run the
//! pipeline over the collected rows on one thread. The candidate is
//! `Query::run_store` on the columnar store. Parity tests guarantee the
//! two return bit-identical rows, so this measures representation and
//! scheduling only.
//!
//! Emits `BENCH_log.json`. Headline numbers: `speedup_aggregate` and
//! `speedup_filter` (acceptance floor: ≥ 4× on the full 1M-record run)
//! and `retained_reduction` (row bytes / columnar-compacted bytes,
//! floor ≥ 2× on repetitive telemetry).

use knactor_logstore::{AggFn, CompactionPolicy, LogConfig, LogStore, Query};
use serde_json::{json, Value};
use std::time::Instant;

/// SplitMix64 — deterministic record stream, no RNG dependency.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Smart-home-shaped telemetry: few distinct values per field, long runs
/// of the same device chattering — the dictionary/RLE sweet spot and an
/// honest model of the paper's workloads.
fn telemetry(n: usize) -> Vec<Value> {
    let mut rng = SplitMix(0x6C6F_675F_6465);
    let rooms = ["kitchen", "hall", "garage", "bedroom"];
    let kinds = ["energy", "motion", "door"];
    (0..n)
        .map(|i| {
            json!({
                "kind": kinds[rng.below(3) as usize],
                "room": rooms[rng.below(4) as usize],
                "device": format!("dev{}", rng.below(16)),
                "kwh": rng.below(64) as f64 / 16.0,
                "on": rng.below(2) == 0,
                "i": i,
            })
        })
        .collect()
}

fn fill(store: &LogStore, records: &[Value], chunk: usize) {
    for c in records.chunks(chunk) {
        store.append_batch(c.iter().cloned());
    }
}

/// Best-of-N wall time for `f`, in seconds.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.unwrap())
}

/// The seed path: collect `read_all()` payloads, run single-threaded.
fn run_seed_path(store: &LogStore, q: &Query) -> Vec<Value> {
    q.run(store.read_all().into_iter().map(|r| r.fields))
        .expect("seed-path query")
}

fn bench_query(
    name: &str,
    q: &Query,
    row: &LogStore,
    col: &LogStore,
    iters: usize,
) -> (serde_json::Value, f64) {
    let n = row.len() as f64;
    let (seed_s, seed_rows) = best_of(iters, || run_seed_path(row, q));
    let (store_s, store_rows) = best_of(iters, || q.run_store(col).expect("run_store query"));
    assert_eq!(seed_rows, store_rows, "{name}: paths must agree");
    let speedup = seed_s / store_s;
    eprintln!(
        "{name:>10}: seed {:>12.0} rec/s | columnar+parallel {:>12.0} rec/s | {speedup:.2}x",
        n / seed_s,
        n / store_s
    );
    (
        json!({
            "query": name,
            "seed_records_per_sec": n / seed_s,
            "store_records_per_sec": n / store_s,
            "speedup": speedup,
            "result_rows": store_rows.len(),
        }),
        speedup,
    )
}

fn run(records: usize, iters: usize, quick: bool) -> serde_json::Value {
    eprintln!("generating {records} records...");
    let data = telemetry(records);

    // Seed configuration: row segments, nothing merged.
    let row = LogStore::with_config(
        "bench/log-row",
        LogConfig {
            columnar: false,
            compaction: None,
            ..Default::default()
        },
    );
    // Current defaults plus background-style compaction, run to
    // quiescence before timing so segment counts are steady-state.
    let col = LogStore::with_config(
        "bench/log-col",
        LogConfig {
            columnar: true,
            compaction: None,
            ..Default::default()
        },
    );
    fill(&row, &data, 1024);
    fill(&col, &data, 1024);
    col.compact_now();
    drop(data);

    let filter = Query::new()
        .filter("this.kind == \"energy\" and this.kwh > 2")
        .unwrap();
    let aggregate = Query::new()
        .filter("this.kind == \"energy\"")
        .unwrap()
        .aggregate(Some("room"), AggFn::Sum, Some("kwh"), "kwh_sum")
        .unwrap();

    let (filter_row, speedup_filter) = bench_query("filter", &filter, &row, &col, iters);
    let (agg_row, speedup_aggregate) = bench_query("aggregate", &aggregate, &row, &col, iters);

    // Retention: same repetitive telemetry, row accounting vs columnar
    // segments merged by compaction (shared dictionaries, longer runs).
    let compacted = LogStore::with_config(
        "bench/log-compact",
        LogConfig {
            segment_capacity: 1024,
            columnar: true,
            compaction: Some(CompactionPolicy::default()),
            ..Default::default()
        },
    );
    let rep: Vec<Value> = (0..records.min(131_072))
        .map(|i| json!({"kind": "energy", "room": "kitchen", "device": "dev1", "on": i % 512 != 0}))
        .collect();
    let rep_row = LogStore::with_config(
        "bench/log-rep-row",
        LogConfig {
            columnar: false,
            compaction: None,
            ..Default::default()
        },
    );
    fill(&rep_row, &rep, 1024);
    fill(&compacted, &rep, 1024);
    compacted.compact_now();
    let row_bytes = rep_row.retained_bytes();
    let compacted_bytes = compacted.retained_bytes();
    let retained_reduction = row_bytes as f64 / compacted_bytes as f64;
    let (sealed, columnar_count) = compacted.segment_counts();
    eprintln!(
        "retention: row {row_bytes}B vs compacted columnar {compacted_bytes}B -> {retained_reduction:.2}x ({sealed} segments, {columnar_count} columnar)"
    );

    json!({
        "description": "Log-DE query bench (cargo run -p knactor-bench --bin log --release). Two stores hold identical seeded telemetry; the baseline is the seed path (read_all + single-threaded Query::run on a row-segment store), the candidate is Query::run_store on a columnar store (parallel segments, columnar filter/aggregate fast paths). Parity suites guarantee bit-identical rows. retained_reduction compares row-segment retained bytes against columnar segments merged by compaction on repetitive telemetry.",
        "records": records,
        "iters": iters,
        "quick": quick,
        "queries": [filter_row, agg_row],
        "speedup_filter": speedup_filter,
        "speedup_aggregate": speedup_aggregate,
        "retention": {
            "records": rep.len(),
            "row_bytes": row_bytes,
            "compacted_columnar_bytes": compacted_bytes,
            "sealed_segments": sealed,
        },
        "retained_reduction": retained_reduction,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let (records, iters) = if quick { (65_536, 3) } else { (1_000_000, 5) };

    // `run_store`'s parallel path spans worker threads itself; the bench
    // only needs a runtime for store-internal background tasks.
    let result = run(records, iters, quick);

    let pretty = serde_json::to_string(&result).unwrap();
    println!("{pretty}");
    std::fs::write("BENCH_log.json", format!("{pretty}\n")).expect("write BENCH_log.json");
    eprintln!("wrote BENCH_log.json");

    let retained = result["retained_reduction"].as_f64().unwrap();
    assert!(
        retained >= 2.0,
        "retained-bytes reduction {retained:.2}x below the 2x floor"
    );
    // Query-speedup floors only gate the full run: quick mode's store is
    // small enough that thread fan-out overhead eats the win.
    if !quick {
        for key in ["speedup_filter", "speedup_aggregate"] {
            let speedup = result[key].as_f64().unwrap();
            assert!(speedup >= 4.0, "{key} {speedup:.2}x below the 4x floor");
        }
    }
}
