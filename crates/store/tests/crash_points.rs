//! Deterministic crash-point tests for the durable store engine.
//!
//! Every scenario arms a [`CrashPoint`] in the WAL, lets the "process"
//! die mid-commit, reopens the store from disk, and asserts the recovery
//! contract: **no acknowledged commit is ever lost, revisions stay
//! gapless, and shard state rebuilds exactly** — at every registered
//! crash point, at every commit offset.

use knactor_store::{CrashPoint, EngineProfile, ObjectStore, Wal};
use knactor_types::{ObjectKey, Revision, StoreId, Value};
use serde_json::json;
use std::path::{Path, PathBuf};

const ALL_POINTS: [CrashPoint; 3] = [
    CrashPoint::BeforeAppend,
    CrashPoint::AfterAppend,
    CrashPoint::TornWrite,
];

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("knactor-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Durable profile without the apiserver's artificial latencies: crash
/// tests measure correctness, not timing.
fn durable_profile(dir: &Path, name: &str) -> EngineProfile {
    let mut profile = EngineProfile::apiserver(dir, name);
    profile.read_delay = std::time::Duration::ZERO;
    profile.write_delay = std::time::Duration::ZERO;
    profile
}

fn key(i: u64) -> ObjectKey {
    ObjectKey::new(format!("obj-{i}"))
}

fn val(i: u64) -> Value {
    json!({"n": i, "payload": format!("data-{i}")})
}

fn open(dir: &Path, name: &str) -> ObjectStore {
    ObjectStore::open(
        StoreId::new(format!("crash/{name}")),
        durable_profile(dir, name),
    )
    .unwrap()
}

/// The core invariant, checked after every simulated crash/restart:
/// every commit acknowledged before the crash is present, the store
/// revision equals the number of surviving commits, and the WAL replays
/// with no revision gaps (recovery itself verifies continuity — it
/// would have errored otherwise).
fn assert_recovered(store: &ObjectStore, acked: &[(ObjectKey, Value)], min_revision: u64) {
    for (k, v) in acked {
        let obj = store
            .get(k)
            .unwrap_or_else(|e| panic!("acked key {k} lost after crash: {e}"));
        assert_eq!(*obj.value, *v, "acked value for {k} corrupted by recovery");
    }
    assert!(
        store.revision().0 >= min_revision,
        "store revision {} went below the {} acked commits",
        store.revision(),
        min_revision
    );
}

#[test]
fn no_acked_commit_lost_at_any_crash_point() {
    for (pi, point) in ALL_POINTS.into_iter().enumerate() {
        let dir = tmp_dir(&format!("point-{pi}"));
        let name = "store";
        let mut acked: Vec<(ObjectKey, Value)> = Vec::new();
        {
            let store = open(&dir, name);
            for i in 0..10u64 {
                store.create(key(i), val(i)).unwrap();
                acked.push((key(i), val(i)));
            }
            // The very next commit dies at `point`.
            assert!(store.arm_crash(point, 0));
            let crashed = store.create(key(99), val(99));
            assert!(crashed.is_err(), "{point:?} must fail the commit");
            // The process is dead: every later commit fails too, so no
            // write can slip in after the crash and corrupt the log.
            assert!(store.create(key(100), val(100)).is_err());
        }
        let store = open(&dir, name);
        assert_recovered(&store, &acked, 10);
        match point {
            // Durable-but-unacked: the crashed write may legitimately
            // survive (at-least-once), but only as a *complete* commit.
            CrashPoint::AfterAppend => {
                assert_eq!(store.revision(), Revision(11));
                assert_eq!(*store.get(&key(99)).unwrap().value, val(99));
            }
            // Lost or torn: the crashed write must be fully absent.
            CrashPoint::BeforeAppend | CrashPoint::TornWrite => {
                assert_eq!(store.revision(), Revision(10));
                assert!(store.get(&key(99)).is_err());
            }
        }
        // The recovered store accepts new commits on a clean log tail.
        store.create(key(200), val(200)).unwrap();
        drop(store);
        let reopened = open(&dir, name);
        assert_eq!(*reopened.get(&key(200)).unwrap().value, val(200));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Crash at *every* commit offset of a fixed workload, for every crash
/// point: a sweep over the whole commit schedule, not one lucky spot.
#[test]
fn crash_sweep_over_every_commit_offset() {
    const WRITES: u64 = 8;
    for (pi, point) in ALL_POINTS.into_iter().enumerate() {
        for offset in 0..WRITES {
            let dir = tmp_dir(&format!("sweep-{pi}-{offset}"));
            let name = "store";
            let mut acked: Vec<(ObjectKey, Value)> = Vec::new();
            {
                let store = open(&dir, name);
                assert!(store.arm_crash(point, offset));
                for i in 0..WRITES {
                    match store.create(key(i), val(i)) {
                        Ok(_) => acked.push((key(i), val(i))),
                        Err(_) => break,
                    }
                }
                assert_eq!(acked.len() as u64, offset, "crash fired at wrong offset");
            }
            let store = open(&dir, name);
            assert_recovered(&store, &acked, offset);
            // Gapless: revision is exactly acked count, +1 only for the
            // durable-but-unacked AfterAppend commit.
            let rev = store.revision().0;
            match point {
                CrashPoint::AfterAppend => assert_eq!(rev, offset + 1),
                _ => assert_eq!(rev, offset),
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Updates and deletes crash just like creates; recovery replays the
/// *effects*, not just object existence.
#[test]
fn recovery_replays_updates_and_deletes() {
    let dir = tmp_dir("mixed");
    let name = "store";
    {
        let store = open(&dir, name);
        store.create(key(1), val(1)).unwrap();
        store.create(key(2), val(2)).unwrap();
        store
            .update(&key(1), json!({"n": 1, "updated": true}), None)
            .unwrap();
        store.delete(&key(2)).unwrap();
        store.arm_crash(CrashPoint::TornWrite, 0);
        assert!(store.update(&key(1), json!({"lost": true}), None).is_err());
    }
    let store = open(&dir, name);
    assert_eq!(
        *store.get(&key(1)).unwrap().value,
        json!({"n": 1, "updated": true})
    );
    assert!(store.get(&key(2)).is_err(), "delete must replay");
    assert_eq!(store.revision(), Revision(4));
    assert_eq!(store.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Shard state rebuilds exactly: keys hash across all 16 shards, and
/// every one must land back in the right shard for `get` to find it.
#[test]
fn recovery_rebuilds_all_shards() {
    let dir = tmp_dir("shards");
    let name = "store";
    const KEYS: u64 = 64;
    {
        let store = open(&dir, name);
        for i in 0..KEYS {
            store.create(key(i), val(i)).unwrap();
        }
        store.arm_crash(CrashPoint::BeforeAppend, 0);
        assert!(store.create(key(KEYS), val(KEYS)).is_err());
    }
    let store = open(&dir, name);
    assert_eq!(store.len() as u64, KEYS);
    assert_eq!(store.revision(), Revision(KEYS));
    for i in 0..KEYS {
        assert_eq!(*store.get(&key(i)).unwrap().value, val(i));
    }
    let (listed, rev) = store.list();
    assert_eq!(listed.len() as u64, KEYS);
    assert_eq!(rev, Revision(KEYS));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A recovered store starts with empty watch history, so a watcher that
/// resumes from a pre-crash revision gets the typed `WatchTooOld` error
/// (never silent gaps) and must re-list — exactly the fallback the
/// resilient client and Cast implement.
#[test]
fn post_recovery_watch_resume_is_too_old_not_gapped() {
    let dir = tmp_dir("watch");
    let name = "store";
    {
        let store = open(&dir, name);
        for i in 0..5u64 {
            store.create(key(i), val(i)).unwrap();
        }
        store.arm_crash(CrashPoint::TornWrite, 0);
        assert!(store.create(key(9), val(9)).is_err());
    }
    let store = open(&dir, name);
    let err = store.watch_from(Revision(2)).unwrap_err();
    match err {
        knactor_types::Error::WatchTooOld { from, oldest } => {
            assert_eq!(from, 2);
            assert_eq!(oldest, 5, "oldest must be the recovered revision");
        }
        other => panic!("expected WatchTooOld, got {other:?}"),
    }
    // The documented fallback works: list (consistent at the recovered
    // revision), then watch from there — gapless going forward.
    let (_, rev) = store.list();
    let mut rx = store.watch_from(rev).unwrap();
    store.create(key(10), val(10)).unwrap();
    // Fan-out is synchronous for an in-process watcher: the event is in
    // the channel by the time `create` returns.
    let event = rx.try_recv().unwrap();
    assert_eq!(event.revision, Revision(6));
    assert_eq!(event.key, key(10));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The WAL's torn tail really is truncated on disk (not merely skipped
/// in memory): after recovery the file ends at the last complete record,
/// so post-recovery appends can never glue onto garbage.
#[test]
fn torn_tail_is_physically_truncated() {
    let dir = tmp_dir("truncate");
    let name = "store";
    let wal_path = {
        let store = open(&dir, name);
        store.create(key(1), val(1)).unwrap();
        store.arm_crash(CrashPoint::TornWrite, 0);
        assert!(store.create(key(2), val(2)).is_err());
        durable_profile(&dir, name).wal_path.unwrap()
    };
    let torn_len = std::fs::metadata(&wal_path).unwrap().len();
    let recovery = Wal::recover(&wal_path).unwrap();
    assert!(recovery.torn_bytes > 0, "the torn write must leave a tail");
    {
        let _store = open(&dir, name);
    }
    let clean_len = std::fs::metadata(&wal_path).unwrap().len();
    assert_eq!(clean_len, torn_len - recovery.torn_bytes);
    assert_eq!(Wal::recover(&wal_path).unwrap().torn_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
