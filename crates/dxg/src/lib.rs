//! # knactor-dxg
//!
//! **Data exchange graphs** (DXGs): the declarative specification language
//! the Cast integrator executes (Fig. 6 of the paper).
//!
//! A DXG spec is a YAML document with two sections:
//!
//! ```yaml
//! Input:
//!   C: OnlineRetail/v1/Checkout/knactor-checkout
//!   S: OnlineRetail/v1/Shipping/knactor-shipping
//! DXG:
//!   C.order:
//!     shippingCost: >
//!       currency_convert(S.quote.price, S.quote.currency, this.currency)
//!   S:
//!     addr: C.order.address
//!     method: >
//!       "air" if C.order.cost > 1000 else "ground"
//! ```
//!
//! * **Input** binds aliases to knactor references. At activation time the
//!   integrator binds each alias to one concrete object (store + key).
//! * **DXG** is a set of *assignments*: `alias(.base).field: expression`.
//!   Keys with dots (`C.order`) set a base path inside the target object;
//!   nested mappings extend the path. `this` in an expression refers to
//!   the assignment's target base (`this.currency` under `C.order:` means
//!   `C.order.currency`).
//!
//! The crate provides:
//!
//! * [`spec`] — parsing into a [`spec::Dxg`] of [`spec::Assignment`]s
//! * [`analyze`] — static analysis (§5 "framework support for
//!   composition"): dependency-cycle detection, duplicate-target
//!   detection, unknown-reference checking against registered schemas,
//!   unused-state and unfilled-external-field reporting
//! * [`plan`] — an execution [`plan::Plan`]: dependency-respecting order
//!   with per-target consolidation (§3.3), plus export of any alias's
//!   assignments as store-side UDFs for pushdown

pub mod analyze;
pub mod cost;
pub mod diff;
pub mod plan;
pub mod spec;

pub use analyze::{Analysis, Finding, Severity};
pub use cost::{CandidateCost, CostModel, EdgeCostInput, EdgeCostReport, ExecChoice, Placement};
pub use diff::{affected_targets, diff, equivalent, Change};
pub use plan::{Plan, Step};
pub use spec::{Assignment, Dxg, InputRef};
