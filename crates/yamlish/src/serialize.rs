//! Serializer for the YAML subset.
//!
//! Produces documents that [`crate::parse`] reads back structurally equal
//! (source lines aside): strings that could be misread as numbers, bools,
//! or syntax are quoted; multi-line strings become literal (`|`) blocks;
//! `+kr:` annotations are emitted as trailing comments.

use crate::{Node, Yaml};

/// Serialize a node tree to YAML-subset text.
pub fn to_string(node: &Node) -> String {
    let mut out = String::new();
    match &node.yaml {
        Yaml::Scalar(v) => {
            out.push_str(&scalar_to_string(v));
            push_annotations(&mut out, &node.annotations);
            out.push('\n');
        }
        Yaml::Map(_) | Yaml::Seq(_) => emit_block(node, 0, &mut out),
    }
    out
}

fn emit_block(node: &Node, indent: usize, out: &mut String) {
    match &node.yaml {
        Yaml::Map(entries) => {
            for (key, value) in entries {
                push_indent(out, indent);
                out.push_str(&key_to_string(key));
                out.push(':');
                emit_value(value, indent, out);
            }
        }
        Yaml::Seq(items) => {
            for item in items {
                push_indent(out, indent);
                out.push('-');
                emit_value(item, indent, out);
            }
        }
        Yaml::Scalar(_) => unreachable!("emit_block called on scalar"),
    }
}

/// Emit the value part after `key:` or `-` (the leading token is already
/// in `out`, cursor sits right after it).
fn emit_value(value: &Node, indent: usize, out: &mut String) {
    match &value.yaml {
        Yaml::Scalar(v) => {
            if let Some(s) = v.as_str() {
                if s.contains('\n') {
                    // Literal block scalar.
                    out.push_str(" |\n");
                    push_annotations_inline(out, &value.annotations, indent);
                    for line in s.split('\n') {
                        push_indent(out, indent + 1);
                        out.push_str(line);
                        out.push('\n');
                    }
                    return;
                }
            }
            out.push(' ');
            out.push_str(&scalar_to_string(v));
            push_annotations(out, &value.annotations);
            out.push('\n');
        }
        Yaml::Map(entries) if entries.is_empty() => {
            // An empty mapping round-trips as null; there is no way to
            // write an empty block mapping in the subset.
            out.push_str(" null");
            push_annotations(out, &value.annotations);
            out.push('\n');
        }
        Yaml::Seq(items) if items.is_empty() => {
            out.push_str(" null");
            push_annotations(out, &value.annotations);
            out.push('\n');
        }
        Yaml::Map(_) | Yaml::Seq(_) => {
            push_annotations(out, &value.annotations);
            out.push('\n');
            emit_block(value, indent + 1, out);
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn push_annotations(out: &mut String, annotations: &[String]) {
    for a in annotations {
        out.push_str(" # +kr: ");
        out.push_str(a);
    }
}

/// Block scalars cannot carry a trailing comment on the `|` line in our
/// parser (it would be folded into nothing) — emit annotations as a
/// comment line instead. Parse drops comment-only lines, so annotations on
/// multi-line strings do not survive a round trip; the serializer keeps
/// them for human readers.
fn push_annotations_inline(out: &mut String, annotations: &[String], indent: usize) {
    for a in annotations {
        push_indent(out, indent + 1);
        out.push_str("# +kr: ");
        out.push_str(a);
        out.push('\n');
    }
}

fn key_to_string(key: &str) -> String {
    if key.is_empty()
        || key.contains(':')
        || key.contains('#')
        || key.contains('\'')
        || key.contains('"')
    {
        format!("'{}'", key.replace('\'', "''"))
    } else {
        key.to_string()
    }
}

fn scalar_to_string(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::Null => "null".to_string(),
        serde_json::Value::Bool(b) => b.to_string(),
        serde_json::Value::Number(n) => n.to_string(),
        serde_json::Value::String(s) => string_to_string(s),
        other => {
            // Nested JSON inside a Scalar node is a programming error, but
            // emitting the (quoted) JSON keeps the document parseable.
            format!("'{}'", other.to_string().replace('\'', "''"))
        }
    }
}

fn string_to_string(s: &str) -> String {
    if needs_quoting(s) {
        format!("'{}'", s.replace('\'', "''"))
    } else {
        s.to_string()
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Values that would coerce to another type.
    if matches!(s, "true" | "false" | "null" | "~") {
        return true;
    }
    if s.parse::<i64>().is_ok() || crate::parse::looks_like_float(s) {
        return true;
    }
    let first = s.chars().next().unwrap();
    if matches!(
        first,
        '\'' | '"' | '-' | '[' | '{' | '&' | '*' | '!' | '>' | '|' | '#' | ' '
    ) {
        return true;
    }
    if s.ends_with(' ') {
        return true;
    }
    // ": " or trailing ':' would read as a key separator; " #" starts a comment.
    if s.contains(": ") || s.ends_with(':') || s.contains(" #") || s.contains('\t') {
        return true;
    }
    // Unbalanced quote characters would derail the quote-aware comment
    // scanner on lines that also carry a trailing `+kr:` annotation.
    if s.contains('"') || s.contains('\'') {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use serde_json::json;

    fn roundtrip(node: &Node) {
        let text = to_string(node);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert!(
            parsed.structurally_eq(node),
            "round trip mismatch\n--- emitted ---\n{text}\n--- got ---\n{parsed:?}\n--- want ---\n{node:?}"
        );
    }

    #[test]
    fn simple_map_roundtrip() {
        roundtrip(&Node::map(vec![
            ("a".into(), Node::scalar(1)),
            ("b".into(), Node::scalar("hello")),
            ("c".into(), Node::scalar(true)),
            ("d".into(), Node::scalar(json!(null))),
        ]));
    }

    #[test]
    fn tricky_strings_are_quoted() {
        roundtrip(&Node::map(vec![
            ("a".into(), Node::scalar("42")),
            ("b".into(), Node::scalar("true")),
            ("c".into(), Node::scalar("- dash")),
            ("d".into(), Node::scalar("x: y")),
            ("e".into(), Node::scalar("it's")),
            ("f".into(), Node::scalar("")),
            ("g".into(), Node::scalar("has # hash")),
            ("h".into(), Node::scalar("redis://h:6379")),
        ]));
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(&Node::map(vec![(
            "dxg".into(),
            Node::map(vec![
                ("x".into(), Node::scalar("C.order.totalCost")),
                (
                    "subjects".into(),
                    Node::seq(vec![
                        Node::map(vec![("name".into(), Node::scalar("cast"))]),
                        Node::scalar("plain"),
                    ]),
                ),
            ]),
        )]));
    }

    #[test]
    fn annotations_roundtrip() {
        roundtrip(&Node::map(vec![(
            "shippingCost".into(),
            Node::scalar("number").with_annotation("external"),
        )]));
    }

    #[test]
    fn multiline_string_uses_literal_block() {
        roundtrip(&Node::map(vec![(
            "text".into(),
            Node::scalar("line one\nline two"),
        )]));
    }

    #[test]
    fn quoted_key_roundtrip() {
        roundtrip(&Node::map(vec![
            ("C.order".into(), Node::scalar(1)),
            ("a:b".into(), Node::scalar(2)),
        ]));
    }

    #[test]
    fn empty_containers_become_null() {
        let n = Node::map(vec![("a".into(), Node::map(vec![]))]);
        let text = to_string(&n);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("a").unwrap().to_json(), json!(null));
    }

    #[test]
    fn root_scalar_and_seq() {
        roundtrip(&Node::scalar("just a string"));
        roundtrip(&Node::seq(vec![Node::scalar(1), Node::scalar(2)]));
    }
}
