//! Ablation: per-operation cost of the Object exchange's engines
//! (§3.3 — "the choice of DE substantially impacts latency").
//!
//! Benchmarks the *core* (no injected profile delays, no fsync) and the
//! durable WAL variants separately, so the numbers separate algorithmic
//! cost from durability cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use knactor_store::{EngineProfile, ObjectStore};
use knactor_types::{ObjectKey, StoreId};
use serde_json::json;

fn bench_core_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_core");

    group.bench_function("create", |b| {
        b.iter_batched(
            || (ObjectStore::in_memory("b/s"), 0u64),
            |(store, mut n)| {
                n += 1;
                store.create(ObjectKey::new(format!("k{n}")), json!({"v": n})).unwrap();
                (store, n)
            },
            BatchSize::SmallInput,
        )
    });

    let store = ObjectStore::in_memory("b/get");
    store.create(ObjectKey::new("k"), json!({"v": 1, "nested": {"a": [1, 2, 3]}})).unwrap();
    group.bench_function("get", |b| {
        b.iter(|| store.get(&ObjectKey::new("k")).unwrap());
    });

    let store = ObjectStore::in_memory("b/update");
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update", |b| {
        b.iter(|| {
            n += 1;
            store.update(&ObjectKey::new("k"), json!({"v": n}), None).unwrap()
        });
    });

    let store = ObjectStore::in_memory("b/patch");
    store.create(ObjectKey::new("k"), json!({"v": 0, "stable": true})).unwrap();
    let mut n = 0u64;
    group.bench_function("patch_changing", |b| {
        b.iter(|| {
            n += 1;
            store.patch(&ObjectKey::new("k"), &json!({"v": n}), false).unwrap()
        });
    });

    // No-op patches are the convergence fast path for integrators.
    let store = ObjectStore::in_memory("b/noop");
    store.create(ObjectKey::new("k"), json!({"v": 1})).unwrap();
    group.bench_function("patch_noop_suppressed", |b| {
        b.iter(|| store.patch(&ObjectKey::new("k"), &json!({"v": 1}), false).unwrap());
    });

    group.finish();
}

fn bench_durable_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(20);

    // WAL without fsync: the serialization + I/O cost.
    let dir = std::env::temp_dir().join(format!("knactor-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut profile = EngineProfile::apiserver(&dir, "bench/nofsync");
    profile.fsync = false;
    let store = ObjectStore::open(StoreId::new("bench/nofsync"), profile).unwrap();
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update_wal_no_fsync", |b| {
        b.iter(|| {
            n += 1;
            store.update(&ObjectKey::new("k"), json!({"v": n}), None).unwrap()
        });
    });

    // WAL with fsync: the real durability price (the apiserver's story).
    let mut profile = EngineProfile::apiserver(&dir, "bench/fsync");
    profile.fsync = true;
    let store = ObjectStore::open(StoreId::new("bench/fsync"), profile).unwrap();
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update_wal_fsync", |b| {
        b.iter(|| {
            n += 1;
            store.update(&ObjectKey::new("k"), json!({"v": n}), None).unwrap()
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_core_ops, bench_durable_ops);
criterion_main!(benches);
