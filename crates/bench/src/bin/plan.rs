//! Cost-based planner bench: does the tuner's metrics→plan loop actually
//! buy throughput, and does the live switch harm any record?
//!
//! ```text
//! cargo run -p knactor-bench --bin plan --release          # full
//! cargo run -p knactor-bench --bin plan --release -- quick # CI variant
//! ```
//!
//! Both runs go over a real TCP exchange with Redis-profiled stores
//! (modelled 250µs reads / 300µs writes): direct execution pays those
//! windows client-side per activation, a pushdown UDF folds them into
//! the exchange — the asymmetry the cost model prices.
//!
//! * **static** — the untuned baseline: the edge is pinned to Direct and
//!   a batch of keys is pushed through; steady-state throughput is
//!   keys/second from first write to full propagation.
//! * **tuned** — the same edge deployed Direct, but with the tuner
//!   running. The workload shifts from a light trickle (below the
//!   tuner's activation floor — no evidence, no switch) to streaming
//!   load; the tuner scores the measured window, re-plans the edge to
//!   pushdown live, and the same batch is measured post-convergence.
//!
//! Emits `BENCH_plan.json`. Asserts (always) zero records lost or
//! duplicated across the re-plan, and (full mode) tuned steady-state
//! throughput ≥ 1.5× the untuned static plan.

use knactor_core::tuner::{Tuner, TunerConfig, TunerPolicy};
use knactor_core::{CastBinding, CastMode, Composer, Composition};
use knactor_net::proto::ProfileSpec;
use knactor_net::{ExchangeApi, ExchangeServer, TcpClient};
use knactor_rbac::Subject;
use knactor_types::Revision;
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dxg(prefix: &str) -> String {
    format!(
        "Input:\n  A: Bench/v1/A/{prefix}a\n  B: Bench/v1/B/{prefix}b\nDXG:\n  B:\n    copied: A.tag\n"
    )
}

fn bindings(prefix: &str) -> BTreeMap<String, CastBinding> {
    let mut b = BTreeMap::new();
    b.insert(
        "A".to_string(),
        CastBinding::correlated(format!("{prefix}a/state").as_str()),
    );
    b.insert(
        "B".to_string(),
        CastBinding::correlated(format!("{prefix}b/state").as_str()),
    );
    b
}

async fn create_stores(api: &Arc<dyn ExchangeApi>, prefix: &str) {
    for s in [format!("{prefix}a/state"), format!("{prefix}b/state")] {
        api.create_store(s.as_str().into(), ProfileSpec::Redis)
            .await
            .unwrap();
    }
}

/// Stream `keys` distinct keys into the source store as fast as the wire
/// accepts, then measure until every one has propagated to the target.
/// Returns (throughput keys/s, elapsed ms).
async fn push_and_measure(
    api: &Arc<dyn ExchangeApi>,
    prefix: &str,
    start_at: usize,
    keys: usize,
    deadline: Duration,
) -> (f64, u64) {
    let source = format!("{prefix}a/state");
    let target = format!("{prefix}b/state");
    let start = Instant::now();
    for i in start_at..start_at + keys {
        api.create(
            source.as_str().into(),
            format!("k-{i}").as_str().into(),
            json!({"tag": format!("t{i}")}),
        )
        .await
        .unwrap();
    }
    let expected = start_at + keys;
    let limit = Instant::now() + deadline;
    loop {
        let (objects, _) = api.list(target.as_str().into()).await.unwrap();
        if objects.len() >= expected {
            break;
        }
        assert!(
            Instant::now() < limit,
            "{prefix}: only {}/{expected} keys propagated within {deadline:?}",
            objects.len()
        );
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    let elapsed = start.elapsed();
    (
        keys as f64 / elapsed.as_secs_f64(),
        elapsed.as_millis() as u64,
    )
}

/// Untuned baseline: the edge pinned to one static mode.
async fn run_static(
    api: &Arc<dyn ExchangeApi>,
    prefix: &str,
    mode: CastMode,
    keys: usize,
    deadline: Duration,
) -> (f64, u64) {
    create_stores(api, prefix).await;
    let composer = Composer::new(format!("plan-{prefix}"), Arc::clone(api));
    composer
        .apply(Composition::new().with_cast(
            knactor_dxg::Dxg::parse(&dxg(prefix)).unwrap(),
            bindings(prefix),
            mode,
        ))
        .await
        .unwrap();
    let out = push_and_measure(api, prefix, 0, keys, deadline).await;
    composer.drain_all().await.unwrap();
    composer.shutdown_all().await;
    out
}

struct TunedOutcome {
    convergence_ms: u64,
    keys_before_switch: usize,
    throughput: f64,
    steady_ms: u64,
    total_keys: usize,
    lost: usize,
    duplicated: usize,
    replans: u64,
}

/// The closed loop: deploy Direct, shift the workload from trickle to
/// streaming, let the tuner re-plan live, then measure steady state.
async fn run_tuned(
    api: &Arc<dyn ExchangeApi>,
    prefix: &str,
    keys: usize,
    deadline: Duration,
) -> TunedOutcome {
    create_stores(api, prefix).await;
    let composer = Arc::new(Composer::new(format!("plan-{prefix}"), Arc::clone(api)));
    composer
        .apply(Composition::new().with_cast(
            knactor_dxg::Dxg::parse(&dxg(prefix)).unwrap(),
            bindings(prefix),
            CastMode::Direct,
        ))
        .await
        .unwrap();

    // Duplicate audit: every target mutation, from the beginning.
    let mut target_events = api
        .watch(format!("{prefix}b/state").as_str().into(), Revision::ZERO)
        .await
        .unwrap();

    let tuner = Tuner::spawn(
        Arc::clone(&composer),
        TunerConfig {
            interval: Duration::from_millis(200),
            policy: TunerPolicy {
                hysteresis: 0.2,
                cooldown: Duration::from_secs(1),
                // Above the trickle phase's total: the switch can only
                // happen once the workload has shifted to streaming.
                min_activations: 10,
            },
            shard_map: None,
            pushdown_udf: format!("plan-{prefix}-udf"),
        },
    );

    // Phase 1 — light trickle: too few activations per window to act on.
    let source = format!("{prefix}a/state");
    let mut written = 0usize;
    for _ in 0..8 {
        api.create(
            source.as_str().into(),
            format!("k-{written}").as_str().into(),
            json!({"tag": format!("t{written}")}),
        )
        .await
        .unwrap();
        written += 1;
        tokio::time::sleep(Duration::from_millis(60)).await;
    }

    // Phase 2 — the workload shifts to streaming; the tuner must find
    // the cheaper plan and switch under load.
    let shift_start = Instant::now();
    let mut switched = false;
    while shift_start.elapsed() < deadline {
        api.create(
            source.as_str().into(),
            format!("k-{written}").as_str().into(),
            json!({"tag": format!("t{written}")}),
        )
        .await
        .unwrap();
        written += 1;
        if written.is_multiple_of(10) {
            if let Some(applied) = composer.applied().await {
                let section = applied.cast.expect("cast section applied");
                if matches!(
                    section.mode_overrides.get("B"),
                    Some(CastMode::Pushdown { .. })
                ) {
                    switched = true;
                    break;
                }
            }
        }
        tokio::time::sleep(Duration::from_millis(2)).await;
    }
    assert!(switched, "tuner never converged to pushdown");
    let convergence_ms = shift_start.elapsed().as_millis() as u64;
    let keys_before_switch = written;

    // Let in-flight direct activations finish so the steady-state
    // measurement is purely the tuned plan.
    let limit = Instant::now() + deadline;
    loop {
        let (objects, _) = api
            .list(format!("{prefix}b/state").as_str().into())
            .await
            .unwrap();
        if objects.len() >= written {
            break;
        }
        assert!(Instant::now() < limit, "pre-switch keys never drained");
        tokio::time::sleep(Duration::from_millis(5)).await;
    }

    // Phase 3 — steady state under the tuned plan.
    let (throughput, steady_ms) = push_and_measure(api, prefix, written, keys, deadline).await;
    let total_keys = written + keys;

    composer.drain_all().await.unwrap();
    tuner.shutdown().await;

    // Audit: zero loss (every key present once in the target), zero
    // duplicates (the watch saw exactly one mutation per key).
    let (objects, _) = api
        .list(format!("{prefix}b/state").as_str().into())
        .await
        .unwrap();
    let lost = total_keys - objects.len().min(total_keys);
    tokio::time::sleep(Duration::from_millis(200)).await;
    let mut per_key: BTreeMap<String, usize> = BTreeMap::new();
    while let Ok(event) = target_events.try_recv() {
        if !event.is_delete() {
            *per_key.entry(event.key.as_str().to_string()).or_default() += 1;
        }
    }
    let duplicated = per_key.values().filter(|&&n| n > 1).count();

    let replans = knactor_core::metrics::global()
        .snapshot()
        .counter_value(
            "knactor_planner_replans_total",
            &[("composer", &format!("plan-{prefix}"))],
        )
        .unwrap_or(0);

    composer.shutdown_all().await;
    TunedOutcome {
        convergence_ms,
        keys_before_switch,
        throughput,
        steady_ms,
        total_keys,
        lost,
        duplicated,
        replans,
    }
}

async fn run(keys: usize, full: bool) -> serde_json::Value {
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::operator("plan-bench"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let deadline = Duration::from_secs(120);

    // Baseline: the untuned static plan the workload started with.
    let (static_tput, static_ms) =
        run_static(&api, "static", CastMode::Direct, keys, deadline).await;

    // Reference ceiling: pushdown pinned from the start.
    let (pinned_tput, pinned_ms) = run_static(
        &api,
        "pinned",
        CastMode::Pushdown {
            udf_name: "plan-pinned-udf".to_string(),
        },
        keys,
        deadline,
    )
    .await;

    // The closed loop.
    let tuned = run_tuned(&api, "tuned", keys, deadline).await;

    server.shutdown().await;

    let speedup = tuned.throughput / static_tput;
    eprintln!(
        "static {static_tput:.0}/s, pinned pushdown {pinned_tput:.0}/s, \
         tuned {:.0}/s ({speedup:.2}x), converged in {}ms after {} keys",
        tuned.throughput, tuned.convergence_ms, tuned.keys_before_switch
    );

    assert_eq!(tuned.lost, 0, "records lost across the re-plan");
    assert_eq!(tuned.duplicated, 0, "records duplicated across the re-plan");
    assert!(tuned.replans >= 1, "the tuner must have re-planned");
    if full {
        assert!(
            speedup >= 1.5,
            "tuned steady state must be ≥1.5× the untuned static plan, got {speedup:.2}x"
        );
    }

    json!({
        "description": "Cost-based planner bench (cargo run -p knactor-bench --bin plan --release). One cast edge over a real TCP exchange with Redis-profiled stores (modelled 250µs reads / 300µs writes). 'static' pins the edge to Direct; 'pinned_pushdown' pins the reference ceiling; 'tuned' starts Direct under a shifting workload (trickle → streaming) and the tuner re-plans it to pushdown live from measured metrics windows. Throughput is keys/second from first write to full propagation. Contract: zero records lost or duplicated across the re-plan; tuned steady state ≥1.5× static (asserted in full mode).",
        "keys_per_measurement": keys,
        "static_direct": {"throughput_per_s": static_tput, "elapsed_ms": static_ms},
        "pinned_pushdown": {"throughput_per_s": pinned_tput, "elapsed_ms": pinned_ms},
        "tuned": {
            "throughput_per_s": tuned.throughput,
            "steady_state_ms": tuned.steady_ms,
            "convergence_ms": tuned.convergence_ms,
            "keys_before_switch": tuned.keys_before_switch,
            "total_keys": tuned.total_keys,
            "replans": tuned.replans,
            "lost": tuned.lost,
            "duplicated": tuned.duplicated,
        },
        "speedup_tuned_vs_static": speedup,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let keys = if quick { 150 } else { 1000 };

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(run(keys, !quick));

    let pretty = serde_json::to_string(&result).unwrap();
    println!("{pretty}");
    std::fs::write("BENCH_plan.json", format!("{pretty}\n")).expect("write BENCH_plan.json");
    eprintln!("wrote BENCH_plan.json");
}
