//! Deterministic workload generation.
//!
//! An [`OpGen`] is a pure function of its [`WorkloadSpec`]: the same
//! spec (seed included) always yields the same operation sequence,
//! byte for byte. That makes load runs reproducible — a failing sweep
//! config can be rerun exactly — and is what the determinism property
//! tests pin down.
//!
//! Two app-shaped presets target the paper's case studies:
//!
//! * **retail** — reads, upsert-patches, and batch reads against the
//!   `checkout/state` store, order-shaped values, Zipf-skewed order
//!   keys. Writes wake the Checkout reconciler and the Cast integrator,
//!   so the measured system is the composed app, not a bare KV store.
//! * **smart-home** — reads across the three device config stores,
//!   telemetry appends (single and batched) into `lamp/telemetry`,
//!   which drive the Sync pipelines and the continuous windowed-energy
//!   query.

use crate::zipf::Zipf;
use knactor_net::FaultRng;
use knactor_types::{ObjectKey, StoreId, Value};
use serde_json::json;

/// Which case-study app the workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    Retail,
    SmartHome,
}

impl AppKind {
    pub fn label(&self) -> &'static str {
        match self {
            AppKind::Retail => "retail",
            AppKind::SmartHome => "smarthome",
        }
    }
}

/// Everything that determines an operation sequence.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub app: AppKind,
    /// Seed for the generator's RNG; printed by every harness and test
    /// so failures replay exactly.
    pub seed: u64,
    /// Number of distinct keys (retail orders / smart-home devices).
    pub keyspace: usize,
    /// Zipf skew over the keyspace (0 = uniform, 0.99 = YCSB default).
    pub zipf_theta: f64,
    /// Relative weights of the operation classes.
    pub read_weight: f64,
    pub write_weight: f64,
    pub batch_weight: f64,
    /// Keys (or records) per batch operation.
    pub batch_size: usize,
    /// Approximate payload padding per written value, in bytes.
    pub payload_bytes: usize,
}

impl WorkloadSpec {
    /// Retail preset: read-heavy order traffic (70/20/10) over a
    /// Zipf-skewed order keyspace.
    pub fn retail(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            app: AppKind::Retail,
            seed,
            keyspace: 1024,
            zipf_theta: 0.99,
            read_weight: 0.7,
            write_weight: 0.2,
            batch_weight: 0.1,
            batch_size: 16,
            payload_bytes: 64,
        }
    }

    /// Smart-home preset: telemetry-heavy (30/50/20) — appends dominate,
    /// reads sample device config state.
    pub fn smarthome(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            app: AppKind::SmartHome,
            seed,
            keyspace: 3,
            zipf_theta: 0.5,
            read_weight: 0.3,
            write_weight: 0.5,
            batch_weight: 0.2,
            batch_size: 16,
            payload_bytes: 32,
        }
    }
}

/// One generated operation, transport-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadOp {
    Get {
        store: StoreId,
        key: ObjectKey,
    },
    /// Upsert-patch: naturally idempotent, so overload retries are safe
    /// and the generator never trips `AlreadyExists` races against its
    /// own concurrent in-flight writes.
    Patch {
        store: StoreId,
        key: ObjectKey,
        value: Value,
    },
    BatchGet {
        store: StoreId,
        keys: Vec<ObjectKey>,
    },
    Append {
        store: StoreId,
        fields: Value,
    },
    AppendBatch {
        store: StoreId,
        batch: Vec<Value>,
    },
}

/// Deterministic operation generator: `(spec) -> op, op, op, ...`.
pub struct OpGen {
    spec: WorkloadSpec,
    rng: FaultRng,
    zipf: Zipf,
    seq: u64,
    pad: String,
}

const SMARTHOME_CONFIGS: [&str; 3] = ["house/config", "lamp/config", "motion/config"];

impl OpGen {
    pub fn new(spec: WorkloadSpec) -> OpGen {
        let rng = FaultRng::new(spec.seed);
        let zipf = Zipf::new(spec.keyspace.max(1), spec.zipf_theta);
        let pad = "x".repeat(spec.payload_bytes);
        OpGen {
            spec,
            rng,
            zipf,
            seq: 0,
            pad,
        }
    }

    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Keys the retail preset addresses; the harness preloads them so
    /// measured reads are hits, not a `NotFound` storm.
    pub fn retail_keys(&self) -> Vec<ObjectKey> {
        (0..self.spec.keyspace)
            .map(|i| ObjectKey::new(format!("order-{i:05}").as_str()))
            .collect()
    }

    fn sample_key(&mut self) -> usize {
        let u = self.rng.unit();
        self.zipf.sample(u)
    }

    fn order_key(rank: usize) -> ObjectKey {
        ObjectKey::new(format!("order-{rank:05}").as_str())
    }

    fn order_value(&mut self, rank: usize) -> Value {
        let amount = 10.0 + (rank % 97) as f64;
        json!({
            "order": {
                "amount": amount,
                "addr": format!("addr-{rank}"),
                "items": [{"sku": format!("sku-{}", rank % 13), "qty": 1 + (self.seq % 3)}],
                "pad": self.pad,
            }
        })
    }

    /// Produce the next operation. Total-weight-relative class choice,
    /// then Zipf key choice — all from the seeded RNG, so the sequence
    /// is a pure function of the spec.
    pub fn next_op(&mut self) -> LoadOp {
        self.seq += 1;
        let total = self.spec.read_weight + self.spec.write_weight + self.spec.batch_weight;
        let draw = self.rng.unit() * total;
        let class = if draw < self.spec.read_weight {
            0
        } else if draw < self.spec.read_weight + self.spec.write_weight {
            1
        } else {
            2
        };
        match self.spec.app {
            AppKind::Retail => {
                let store = StoreId::new("checkout/state");
                match class {
                    0 => LoadOp::Get {
                        store,
                        key: Self::order_key(self.sample_key()),
                    },
                    1 => {
                        let rank = self.sample_key();
                        LoadOp::Patch {
                            store,
                            key: Self::order_key(rank),
                            value: self.order_value(rank),
                        }
                    }
                    _ => {
                        let keys = (0..self.spec.batch_size)
                            .map(|_| Self::order_key(self.sample_key()))
                            .collect();
                        LoadOp::BatchGet { store, keys }
                    }
                }
            }
            AppKind::SmartHome => match class {
                0 => {
                    let dev = SMARTHOME_CONFIGS[self.sample_key() % SMARTHOME_CONFIGS.len()];
                    LoadOp::Get {
                        store: StoreId::new(dev),
                        key: ObjectKey::new("state"),
                    }
                }
                1 => LoadOp::Append {
                    store: StoreId::new("lamp/telemetry"),
                    fields: self.telemetry(),
                },
                _ => {
                    let batch = (0..self.spec.batch_size)
                        .map(|_| self.telemetry())
                        .collect();
                    LoadOp::AppendBatch {
                        store: StoreId::new("lamp/telemetry"),
                        batch,
                    }
                }
            },
        }
    }

    fn telemetry(&mut self) -> Value {
        let kwh = (self.rng.below(500) as f64) / 100.0;
        json!({"kwh": kwh, "seq": self.seq, "pad": self.pad})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pick_app_stores() {
        let mut retail = OpGen::new(WorkloadSpec::retail(7));
        for _ in 0..50 {
            match retail.next_op() {
                LoadOp::Get { store, .. }
                | LoadOp::Patch { store, .. }
                | LoadOp::BatchGet { store, .. } => {
                    assert_eq!(store, StoreId::new("checkout/state"));
                }
                other => panic!("retail generated {other:?}"),
            }
        }
        let mut home = OpGen::new(WorkloadSpec::smarthome(7));
        for _ in 0..50 {
            match home.next_op() {
                LoadOp::Get { store, .. } => {
                    assert!(SMARTHOME_CONFIGS.contains(&store.as_str()));
                }
                LoadOp::Append { store, .. } | LoadOp::AppendBatch { store, .. } => {
                    assert_eq!(store, StoreId::new("lamp/telemetry"));
                }
                other => panic!("smart-home generated {other:?}"),
            }
        }
    }
}
