//! The knactor service abstraction.
//!
//! A knactor is "a service that contains a reconciler component and one or
//! multiple data stores" (§3.2). Building one performs the first two
//! steps of the development workflow:
//!
//! 1. **Externalize** — register the data-store schema with the exchange
//!    and create the store(s).
//! 2. **Express** — the schema's `+kr: external` annotations declare what
//!    the store can ingest from integrators.
//!
//! The third step, **Exchange**, belongs to integrators (`cast`, `sync`),
//! not to any knactor — that is the decoupling.

use crate::reconciler::Reconciler;
use knactor_net::ExchangeApi;
use knactor_store::object::RetentionPolicy;
use knactor_types::{KnactorId, Result, Schema, StoreId};
use std::sync::Arc;

/// A declared knactor: identity, stores, schema, and (optionally) its
/// reconciler. Deployment happens through [`crate::runtime::Runtime`].
pub struct Knactor {
    pub id: KnactorId,
    /// Object stores owned by this knactor (usually one, `<id>/state`).
    pub object_stores: Vec<StoreId>,
    /// Log stores owned by this knactor (telemetry).
    pub log_stores: Vec<StoreId>,
    /// Schema registered for the primary object store.
    pub schema: Option<Schema>,
    pub retention: RetentionPolicy,
    pub reconciler: Option<Arc<dyn Reconciler>>,
}

impl std::fmt::Debug for Knactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Knactor")
            .field("id", &self.id)
            .field("object_stores", &self.object_stores)
            .field("log_stores", &self.log_stores)
            .field("has_reconciler", &self.reconciler.is_some())
            .finish()
    }
}

impl Knactor {
    pub fn builder(id: impl Into<KnactorId>) -> KnactorBuilder {
        KnactorBuilder::new(id)
    }

    /// The knactor's primary object store (`<id>/state` by convention).
    pub fn primary_store(&self) -> Option<&StoreId> {
        self.object_stores.first()
    }

    /// Externalize: create stores and register the schema on the exchange
    /// reachable through `api`.
    pub async fn externalize(&self, api: &dyn ExchangeApi) -> Result<()> {
        for store in &self.object_stores {
            api.create_store(store.clone(), knactor_net::proto::ProfileSpec::Instant)
                .await?;
        }
        for store in &self.log_stores {
            api.log_create_store(store.clone()).await?;
        }
        if let Some(schema) = &self.schema {
            api.register_schema(schema.clone()).await?;
            if let Some(primary) = self.primary_store() {
                api.bind_schema(primary.clone(), schema.name.clone())
                    .await?;
            }
        }
        Ok(())
    }
}

/// Fluent construction of a [`Knactor`].
pub struct KnactorBuilder {
    id: KnactorId,
    object_stores: Vec<StoreId>,
    log_stores: Vec<StoreId>,
    schema: Option<Schema>,
    retention: RetentionPolicy,
    reconciler: Option<Arc<dyn Reconciler>>,
}

impl KnactorBuilder {
    pub fn new(id: impl Into<KnactorId>) -> KnactorBuilder {
        KnactorBuilder {
            id: id.into(),
            object_stores: Vec::new(),
            log_stores: Vec::new(),
            schema: None,
            retention: RetentionPolicy::Forever,
            reconciler: None,
        }
    }

    /// Add an object store named `<id>/<name>`.
    pub fn object_store(mut self, name: &str) -> Self {
        self.object_stores.push(StoreId::of(&self.id, name));
        self
    }

    /// Add a log store named `<id>/<name>`.
    pub fn log_store(mut self, name: &str) -> Self {
        self.log_stores.push(StoreId::of(&self.id, name));
        self
    }

    /// Register the primary store's schema (the Externalize step).
    pub fn schema(mut self, schema: Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    pub fn retention(mut self, policy: RetentionPolicy) -> Self {
        self.retention = policy;
        self
    }

    pub fn reconciler(mut self, r: impl Reconciler + 'static) -> Self {
        self.reconciler = Some(Arc::new(r));
        self
    }

    pub fn reconciler_arc(mut self, r: Arc<dyn Reconciler>) -> Self {
        self.reconciler = Some(r);
        self
    }

    pub fn build(mut self) -> Knactor {
        if self.object_stores.is_empty() {
            // Every knactor externalizes at least one object store.
            self.object_stores.push(StoreId::of(&self.id, "state"));
        }
        Knactor {
            id: self.id,
            object_stores: self.object_stores,
            log_stores: self.log_stores,
            schema: self.schema,
            retention: self.retention,
            reconciler: self.reconciler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_rbac::Subject;
    use knactor_types::schema::{FieldSpec, FieldType};

    #[test]
    fn builder_defaults_primary_store() {
        let k = Knactor::builder("checkout").build();
        assert_eq!(k.primary_store().unwrap().as_str(), "checkout/state");
        assert!(k.log_stores.is_empty());
    }

    #[test]
    fn builder_collects_stores() {
        let k = Knactor::builder("house")
            .object_store("config")
            .log_store("telemetry")
            .build();
        assert_eq!(k.object_stores[0].as_str(), "house/config");
        assert_eq!(k.log_stores[0].as_str(), "house/telemetry");
    }

    #[tokio::test]
    async fn externalize_creates_stores_and_schema() {
        let (object, log, client) = in_process(Subject::operator("deploy"));
        let schema = Schema::new("OnlineRetail/v1/Checkout/Order")
            .field(FieldSpec::new("address", FieldType::String));
        let k = Knactor::builder("checkout")
            .object_store("state")
            .log_store("audit")
            .schema(schema.clone())
            .build();
        k.externalize(&client).await.unwrap();
        assert!(object.store(&StoreId::new("checkout/state")).is_ok());
        assert!(log.store(&StoreId::new("checkout/audit")).is_ok());
        assert_eq!(
            object.schema(&schema.name).unwrap().fields.len(),
            schema.fields.len()
        );
    }
}
