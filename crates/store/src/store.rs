//! The synchronous, versioned object-store core.
//!
//! Everything observable about a store is ordered by its single revision
//! counter: each committed mutation bumps the revision by exactly one,
//! appends one event to the watch history, and (for durable engines)
//! appends one WAL record. Watchers resume from any revision still in the
//! history window and receive every later event exactly once, in order.

use crate::event::{EventKind, WatchEvent};
use crate::object::{RetentionPolicy, StoredObject};
use crate::profile::EngineProfile;
use crate::wal::Wal;
use knactor_types::{value, Error, ObjectKey, Result, Revision, Schema, StoreId, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Default number of events kept for watch resumption.
const DEFAULT_HISTORY_CAP: usize = 8192;

/// A single data store: versioned objects + watch machinery.
///
/// The core is synchronous and engine-agnostic; durability comes from an
/// optional [`Wal`], and latency/delivery behaviour is layered on by
/// [`crate::handle::StoreHandle`] according to the [`EngineProfile`].
pub struct ObjectStore {
    id: StoreId,
    profile: EngineProfile,
    schema: Mutex<Option<Schema>>,
    policy: Mutex<RetentionPolicy>,
    inner: Mutex<Inner>,
}

struct Inner {
    revision: Revision,
    objects: BTreeMap<ObjectKey, StoredObject>,
    history: VecDeque<WatchEvent>,
    history_cap: usize,
    subscribers: Vec<mpsc::UnboundedSender<WatchEvent>>,
    wal: Option<Arc<Wal>>,
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ObjectStore")
            .field("id", &self.id)
            .field("engine", &self.profile.name)
            .field("revision", &inner.revision)
            .field("objects", &inner.objects.len())
            .finish()
    }
}

impl ObjectStore {
    /// Create a store with the given engine profile. Durable profiles
    /// replay their WAL, restoring all previously committed state.
    pub fn open(id: StoreId, profile: EngineProfile) -> Result<ObjectStore> {
        let mut inner = Inner {
            revision: Revision::ZERO,
            objects: BTreeMap::new(),
            history: VecDeque::new(),
            history_cap: DEFAULT_HISTORY_CAP,
            subscribers: Vec::new(),
            wal: None,
        };
        if let Some(path) = &profile.wal_path {
            for event in Wal::replay(path)? {
                apply_event(&mut inner.objects, &event);
                inner.revision = event.revision;
            }
            inner.wal = Some(Arc::new(Wal::open(path, profile.fsync)?));
        }
        Ok(ObjectStore {
            id,
            profile,
            schema: Mutex::new(None),
            policy: Mutex::new(RetentionPolicy::Forever),
            inner: Mutex::new(inner),
        })
    }

    /// In-memory store with the `instant` profile (tests, examples).
    pub fn in_memory(id: impl Into<StoreId>) -> ObjectStore {
        ObjectStore::open(id.into(), EngineProfile::instant()).expect("in-memory open cannot fail")
    }

    pub fn id(&self) -> &StoreId {
        &self.id
    }

    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Attach a schema; subsequent writes are validated against it.
    pub fn set_schema(&self, schema: Schema) {
        *self.schema.lock() = Some(schema);
    }

    pub fn schema(&self) -> Option<Schema> {
        self.schema.lock().clone()
    }

    pub fn set_retention(&self, policy: RetentionPolicy) {
        *self.policy.lock() = policy;
    }

    pub fn retention(&self) -> RetentionPolicy {
        *self.policy.lock()
    }

    /// Current store revision (revision of the last committed mutation).
    pub fn revision(&self) -> Revision {
        self.inner.lock().revision
    }

    pub fn len(&self) -> usize {
        self.inner.lock().objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create a new object. Fails with `AlreadyExists` if the key is taken.
    pub fn create(&self, key: ObjectKey, value: Value) -> Result<Revision> {
        if let Some(schema) = &*self.schema.lock() {
            schema.validate(&value)?;
        }
        let mut inner = self.inner.lock();
        if inner.objects.contains_key(&key) {
            return Err(Error::AlreadyExists(key.to_string()));
        }
        let rev = inner.revision.next();
        inner
            .objects
            .insert(key.clone(), StoredObject::new(key.clone(), value.clone(), rev));
        commit(&mut inner, WatchEvent { revision: rev, kind: EventKind::Created, key, value })?;
        Ok(rev)
    }

    /// Read an object (clone of current value and metadata).
    pub fn get(&self, key: &ObjectKey) -> Result<StoredObject> {
        self.inner
            .lock()
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| Error::NotFound(key.to_string()))
    }

    /// List all objects, in key order, plus the revision the listing is
    /// consistent at (use it to start a gapless watch).
    pub fn list(&self) -> (Vec<StoredObject>, Revision) {
        let inner = self.inner.lock();
        (inner.objects.values().cloned().collect(), inner.revision)
    }

    /// Replace an object's value. `expected` enables optimistic
    /// concurrency: the write commits only if the object's revision still
    /// matches.
    pub fn update(
        &self,
        key: &ObjectKey,
        new_value: Value,
        expected: Option<Revision>,
    ) -> Result<Revision> {
        let schema = self.schema.lock().clone();
        let mut inner = self.inner.lock();
        let obj = inner
            .objects
            .get(key)
            .ok_or_else(|| Error::NotFound(key.to_string()))?;
        if let Some(expected) = expected {
            if obj.revision != expected {
                return Err(Error::Conflict { expected: expected.0, actual: obj.revision.0 });
            }
        }
        if let Some(schema) = &schema {
            schema.validate_update(&obj.value, &new_value)?;
        }
        let rev = inner.revision.next();
        {
            let obj = inner.objects.get_mut(key).expect("checked above");
            obj.value = new_value.clone();
            obj.revision = rev;
            // A new value invalidates prior consumption.
            for done in obj.consumers.values_mut() {
                *done = false;
            }
        }
        commit(
            &mut inner,
            WatchEvent { revision: rev, kind: EventKind::Updated, key: clone_key(key), value: new_value },
        )?;
        Ok(rev)
    }

    /// Deep-merge `patch` into the current value (creating the object when
    /// `upsert` is set and the key is absent).
    ///
    /// A patch that leaves the value unchanged does **not** commit: no
    /// revision bump, no watch event. This no-op suppression is what lets
    /// integrators converge — a Cast activation that recomputes the same
    /// derived state produces no new events to re-trigger on.
    pub fn patch(&self, key: &ObjectKey, patch: &Value, upsert: bool) -> Result<Revision> {
        let current = {
            let inner = self.inner.lock();
            inner.objects.get(key).map(|o| (o.value.clone(), o.revision))
        };
        match current {
            Some((mut base, rev)) => {
                let before = base.clone();
                value::merge(&mut base, patch);
                if base == before {
                    return Ok(rev);
                }
                self.update(key, base, Some(rev))
            }
            None if upsert => self.create(clone_key(key), patch.clone()),
            None => Err(Error::NotFound(key.to_string())),
        }
    }

    /// Delete an object.
    pub fn delete(&self, key: &ObjectKey) -> Result<Revision> {
        let mut inner = self.inner.lock();
        let obj = inner
            .objects
            .remove(key)
            .ok_or_else(|| Error::NotFound(key.to_string()))?;
        let rev = inner.revision.next();
        commit(
            &mut inner,
            WatchEvent { revision: rev, kind: EventKind::Deleted, key: clone_key(key), value: obj.value },
        )?;
        Ok(rev)
    }

    /// Subscribe to committed events with revision **greater than**
    /// `from`. Events still in the history window are replayed first; the
    /// stream then continues live, in revision order, without gaps or
    /// duplicates.
    ///
    /// Fails if `from` is older than the history window (the caller must
    /// [`ObjectStore::list`] and watch from the listing's revision).
    pub fn watch_from(&self, from: Revision) -> Result<mpsc::UnboundedReceiver<WatchEvent>> {
        let mut inner = self.inner.lock();
        let oldest = inner.history.front().map(|e| e.revision);
        if let Some(oldest) = oldest {
            if from.next() < oldest {
                return Err(Error::Internal(format!(
                    "watch revision {from} too old; history starts at {oldest} — list and re-watch"
                )));
            }
        } else if from < inner.revision {
            return Err(Error::Internal(format!(
                "watch revision {from} too old; history is empty at revision {}",
                inner.revision
            )));
        }
        let (tx, rx) = mpsc::unbounded_channel();
        for event in inner.history.iter().filter(|e| e.revision > from) {
            // Receiver can't be dropped yet; ignore errors defensively.
            let _ = tx.send(event.clone());
        }
        inner.subscribers.push(tx);
        Ok(rx)
    }

    /// Convenience: watch everything from the beginning of history.
    pub fn watch(&self) -> Result<mpsc::UnboundedReceiver<WatchEvent>> {
        self.watch_from(Revision::ZERO)
    }

    /// Register `consumer` as interested in `key` (state retention).
    pub fn register_consumer(&self, key: &ObjectKey, consumer: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let obj = inner
            .objects
            .get_mut(key)
            .ok_or_else(|| Error::NotFound(key.to_string()))?;
        obj.consumers.entry(consumer.to_string()).or_insert(false);
        Ok(())
    }

    /// Mark `consumer`'s processing of the current value complete, then
    /// run retention. Returns the keys garbage-collected (if any).
    pub fn mark_processed(&self, key: &ObjectKey, consumer: &str) -> Result<Vec<ObjectKey>> {
        {
            let mut inner = self.inner.lock();
            let obj = inner
                .objects
                .get_mut(key)
                .ok_or_else(|| Error::NotFound(key.to_string()))?;
            match obj.consumers.get_mut(consumer) {
                Some(done) => *done = true,
                None => {
                    return Err(Error::Internal(format!(
                        "consumer '{consumer}' not registered on {key}"
                    )))
                }
            }
        }
        self.gc()
    }

    /// Run the retention policy, deleting collectable objects. Emits
    /// normal `Deleted` events so watchers observe GC.
    pub fn gc(&self) -> Result<Vec<ObjectKey>> {
        let policy = *self.policy.lock();
        let victims: Vec<ObjectKey> = {
            let inner = self.inner.lock();
            match policy {
                RetentionPolicy::Forever => Vec::new(),
                RetentionPolicy::RefCounted => inner
                    .objects
                    .values()
                    .filter(|o| o.fully_consumed())
                    .map(|o| clone_key(&o.key))
                    .collect(),
                RetentionPolicy::Archive { keep } => {
                    let mut consumed: Vec<&StoredObject> =
                        inner.objects.values().filter(|o| o.fully_consumed()).collect();
                    consumed.sort_by_key(|o| o.created_revision);
                    let excess = consumed.len().saturating_sub(keep);
                    consumed
                        .into_iter()
                        .take(excess)
                        .map(|o| clone_key(&o.key))
                        .collect()
                }
            }
        };
        for key in &victims {
            self.delete(key)?;
        }
        Ok(victims)
    }

    /// Number of live watch subscribers (diagnostics).
    pub fn subscriber_count(&self) -> usize {
        let mut inner = self.inner.lock();
        inner.subscribers.retain(|s| !s.is_closed());
        inner.subscribers.len()
    }
}

fn clone_key(k: &ObjectKey) -> ObjectKey {
    ObjectKey::new(k.as_str())
}

/// Commit an already-applied mutation: advance the revision, log to the
/// WAL (durability point), record history, fan out to subscribers.
fn commit(inner: &mut Inner, event: WatchEvent) -> Result<()> {
    debug_assert_eq!(event.revision, inner.revision.next());
    if let Some(wal) = &inner.wal {
        wal.append(&event)?;
    }
    inner.revision = event.revision;
    inner.history.push_back(event.clone());
    while inner.history.len() > inner.history_cap {
        inner.history.pop_front();
    }
    inner.subscribers.retain(|tx| tx.send(event.clone()).is_ok());
    Ok(())
}

/// Apply a WAL event to the object map during replay.
fn apply_event(objects: &mut BTreeMap<ObjectKey, StoredObject>, event: &WatchEvent) {
    match event.kind {
        EventKind::Created => {
            objects.insert(
                event.key.clone(),
                StoredObject::new(event.key.clone(), event.value.clone(), event.revision),
            );
        }
        EventKind::Updated => {
            if let Some(obj) = objects.get_mut(&event.key) {
                obj.value = event.value.clone();
                obj.revision = event.revision;
            } else {
                // An update without a create can only mean the history
                // window predates the WAL; treat as create.
                objects.insert(
                    event.key.clone(),
                    StoredObject::new(event.key.clone(), event.value.clone(), event.revision),
                );
            }
        }
        EventKind::Deleted => {
            objects.remove(&event.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_types::schema::{FieldSpec, FieldType};
    use serde_json::json;

    fn store() -> ObjectStore {
        ObjectStore::in_memory("test/store")
    }

    fn k(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    #[test]
    fn create_get_roundtrip() {
        let s = store();
        let rev = s.create(k("a"), json!({"x": 1})).unwrap();
        assert_eq!(rev, Revision(1));
        let obj = s.get(&k("a")).unwrap();
        assert_eq!(obj.value, json!({"x": 1}));
        assert_eq!(obj.revision, Revision(1));
        assert_eq!(obj.created_revision, Revision(1));
    }

    #[test]
    fn create_duplicate_fails() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        assert!(matches!(s.create(k("a"), json!(2)), Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn revisions_bump_by_one_per_mutation() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        s.create(k("b"), json!(2)).unwrap();
        s.update(&k("a"), json!(3), None).unwrap();
        s.delete(&k("b")).unwrap();
        assert_eq!(s.revision(), Revision(4));
    }

    #[test]
    fn optimistic_concurrency() {
        let s = store();
        let rev = s.create(k("a"), json!({"v": 0})).unwrap();
        let r2 = s.update(&k("a"), json!({"v": 1}), Some(rev)).unwrap();
        // Re-using the stale revision must conflict.
        let err = s.update(&k("a"), json!({"v": 2}), Some(rev)).unwrap_err();
        assert_eq!(err, Error::Conflict { expected: rev.0, actual: r2.0 });
        // Unconditional update still works.
        s.update(&k("a"), json!({"v": 3}), None).unwrap();
        assert_eq!(s.get(&k("a")).unwrap().value, json!({"v": 3}));
    }

    #[test]
    fn patch_merges_and_upserts() {
        let s = store();
        s.create(k("a"), json!({"x": {"y": 1}, "keep": true})).unwrap();
        s.patch(&k("a"), &json!({"x": {"z": 2}}), false).unwrap();
        assert_eq!(
            s.get(&k("a")).unwrap().value,
            json!({"x": {"y": 1, "z": 2}, "keep": true})
        );
        assert!(matches!(s.patch(&k("nope"), &json!({}), false), Err(Error::NotFound(_))));
        s.patch(&k("nope"), &json!({"fresh": 1}), true).unwrap();
        assert_eq!(s.get(&k("nope")).unwrap().value, json!({"fresh": 1}));
    }

    #[test]
    fn schema_enforced_on_write() {
        let s = store();
        s.set_schema(
            Schema::new("T/v1/S/K")
                .field(FieldSpec::new("name", FieldType::String).required())
                .field(FieldSpec::new("qty", FieldType::Number)),
        );
        assert!(s.create(k("bad"), json!({"qty": 2})).is_err());
        s.create(k("ok"), json!({"name": "mug", "qty": 2})).unwrap();
        assert!(s.update(&k("ok"), json!({"name": 5}), None).is_err());
    }

    #[test]
    fn list_returns_consistent_snapshot() {
        let s = store();
        s.create(k("b"), json!(2)).unwrap();
        s.create(k("a"), json!(1)).unwrap();
        let (objs, rev) = s.list();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].key, k("a"), "key order");
        assert_eq!(rev, Revision(2));
    }

    #[tokio::test]
    async fn watch_sees_all_events_in_order() {
        let s = store();
        let mut rx = s.watch().unwrap();
        s.create(k("a"), json!(1)).unwrap();
        s.update(&k("a"), json!(2), None).unwrap();
        s.delete(&k("a")).unwrap();
        let e1 = rx.recv().await.unwrap();
        let e2 = rx.recv().await.unwrap();
        let e3 = rx.recv().await.unwrap();
        assert_eq!(
            (e1.kind, e2.kind, e3.kind),
            (EventKind::Created, EventKind::Updated, EventKind::Deleted)
        );
        assert!(e1.revision < e2.revision && e2.revision < e3.revision);
    }

    #[tokio::test]
    async fn watch_from_replays_history() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        let mid = s.revision();
        s.create(k("b"), json!(2)).unwrap();
        let mut rx = s.watch_from(mid).unwrap();
        let e = rx.recv().await.unwrap();
        assert_eq!(e.key, k("b"));
        // Nothing else pending.
        s.create(k("c"), json!(3)).unwrap();
        let e = rx.recv().await.unwrap();
        assert_eq!(e.key, k("c"));
    }

    #[test]
    fn watch_too_old_fails() {
        let s = store();
        {
            let mut inner = s.inner.lock();
            inner.history_cap = 2;
        }
        for i in 0..5 {
            s.create(k(&format!("k{i}")), json!(i)).unwrap();
        }
        assert!(s.watch_from(Revision(1)).is_err());
        assert!(s.watch_from(Revision(3)).is_ok());
        assert!(s.watch_from(s.revision()).is_ok());
    }

    #[test]
    fn refcount_retention_collects_consumed() {
        let s = store();
        s.set_retention(RetentionPolicy::RefCounted);
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "cast").unwrap();
        s.register_consumer(&k("a"), "reconciler").unwrap();
        assert!(s.mark_processed(&k("a"), "cast").unwrap().is_empty());
        let collected = s.mark_processed(&k("a"), "reconciler").unwrap();
        assert_eq!(collected, vec![k("a")]);
        assert!(s.get(&k("a")).is_err());
    }

    #[test]
    fn update_resets_consumption() {
        let s = store();
        s.set_retention(RetentionPolicy::RefCounted);
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "cast").unwrap();
        s.mark_processed(&k("a"), "cast").unwrap();
        // Object was collected; recreate and test the reset path.
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "x").unwrap();
        s.register_consumer(&k("a"), "y").unwrap();
        s.mark_processed(&k("a"), "x").unwrap();
        s.update(&k("a"), json!(2), None).unwrap();
        // x's mark was invalidated by the update.
        let collected = s.mark_processed(&k("a"), "y").unwrap();
        assert!(collected.is_empty());
        assert!(s.get(&k("a")).is_ok());
    }

    #[test]
    fn archive_retention_keeps_last_n() {
        let s = store();
        s.set_retention(RetentionPolicy::Archive { keep: 2 });
        for i in 0..4 {
            let key = k(&format!("o{i}"));
            s.create(key.clone(), json!(i)).unwrap();
            s.register_consumer(&key, "c").unwrap();
        }
        for i in 0..4 {
            s.mark_processed(&k(&format!("o{i}")), "c").unwrap();
        }
        // Two oldest consumed objects were collected.
        assert!(s.get(&k("o0")).is_err());
        assert!(s.get(&k("o1")).is_err());
        assert!(s.get(&k("o2")).is_ok());
        assert!(s.get(&k("o3")).is_ok());
    }

    #[test]
    fn forever_retention_never_collects() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "c").unwrap();
        assert!(s.mark_processed(&k("a"), "c").unwrap().is_empty());
        assert!(s.get(&k("a")).is_ok());
    }

    #[test]
    fn unregistered_consumer_cannot_mark() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        assert!(s.mark_processed(&k("a"), "ghost").is_err());
    }

    #[test]
    fn durable_store_recovers_from_wal() {
        let dir = std::env::temp_dir().join(format!("knactor-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = EngineProfile::apiserver(&dir, "recover/store");
        {
            let s = ObjectStore::open(StoreId::new("recover/store"), profile.clone()).unwrap();
            s.create(k("a"), json!({"v": 1})).unwrap();
            s.create(k("b"), json!({"v": 2})).unwrap();
            s.update(&k("a"), json!({"v": 10}), None).unwrap();
            s.delete(&k("b")).unwrap();
        }
        let s = ObjectStore::open(StoreId::new("recover/store"), profile).unwrap();
        assert_eq!(s.revision(), Revision(4));
        assert_eq!(s.get(&k("a")).unwrap().value, json!({"v": 10}));
        assert!(s.get(&k("b")).is_err());
        // New writes continue the revision sequence.
        assert_eq!(s.create(k("c"), json!(1)).unwrap(), Revision(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[tokio::test]
    async fn dropped_subscriber_is_pruned() {
        let s = store();
        let rx = s.watch().unwrap();
        assert_eq!(s.subscriber_count(), 1);
        drop(rx);
        s.create(k("a"), json!(1)).unwrap();
        assert_eq!(s.subscriber_count(), 0);
    }
}
