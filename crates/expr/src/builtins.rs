//! Builtin function registry for DXG expressions.
//!
//! All builtins are pure: no I/O, no clocks, no randomness. The registry
//! is extensible so applications can register domain transforms (the
//! paper's `currency_convert` is exactly such a transform); extension
//! functions must uphold the same purity contract because integrators and
//! store-side UDFs re-run expressions at will.

use crate::eval::{as_number, num};
use knactor_types::{Error, Result};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Signature of a builtin: evaluated argument values in, value out.
pub type BuiltinFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registry of named pure functions.
#[derive(Clone, Default)]
pub struct FnRegistry {
    fns: BTreeMap<String, BuiltinFn>,
}

impl std::fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnRegistry")
            .field("functions", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FnRegistry {
    /// An empty registry (no functions, not even the standard ones).
    pub fn empty() -> FnRegistry {
        FnRegistry::default()
    }

    /// The standard library described below, including a fixed-rate
    /// `currency_convert` suitable for tests and the example apps.
    ///
    /// | name | effect |
    /// |------|--------|
    /// | `len(x)` | length of array, object, or string |
    /// | `sum(xs)` / `min(xs)` / `max(xs)` / `avg(xs)` | numeric folds |
    /// | `abs(n)` / `round(n)` / `floor(n)` / `ceil(n)` | numeric maps |
    /// | `upper(s)` / `lower(s)` / `trim(s)` | string maps |
    /// | `concat(a, b, …)` | stringify-and-join all arguments |
    /// | `join(xs, sep)` / `split(s, sep)` | array ↔ string |
    /// | `contains(hay, needle)` | substring / array membership / object key |
    /// | `coalesce(a, b, …)` | first non-null argument |
    /// | `default(a, d)` | `a` unless null, else `d` |
    /// | `str(x)` / `number(x)` | conversions |
    /// | `keys(obj)` / `values(obj)` | object projections |
    /// | `currency_convert(amount, from, to)` | fixed-table FX conversion |
    pub fn standard() -> FnRegistry {
        let mut reg = FnRegistry::empty();
        install_standard(&mut reg);
        reg
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.into(), Arc::new(f));
    }

    /// Invoke a function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        let f = self
            .fns
            .get(name)
            .ok_or_else(|| Error::Expr(format!("unknown function '{name}'")))?;
        f(args)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.fns.keys()
    }
}

fn arity(args: &[Value], want: usize, name: &str) -> Result<()> {
    if args.len() == want {
        Ok(())
    } else {
        Err(Error::Expr(format!(
            "{name} expects {want} argument(s), got {}",
            args.len()
        )))
    }
}

fn want_array<'a>(v: &'a Value, name: &str) -> Result<&'a Vec<Value>> {
    v.as_array().ok_or_else(|| {
        Error::Expr(format!(
            "{name} expects an array, got {}",
            knactor_types::value::type_name(v)
        ))
    })
}

fn want_str<'a>(v: &'a Value, name: &str) -> Result<&'a str> {
    v.as_str().ok_or_else(|| {
        Error::Expr(format!(
            "{name} expects a string, got {}",
            knactor_types::value::type_name(v)
        ))
    })
}

fn stringify(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Fixed FX table (per-USD rates) so `currency_convert` is pure. A real
/// deployment would register its own function backed by a rates *state*
/// (itself exchanged through a data store), keeping evaluation pure.
const FX_PER_USD: &[(&str, f64)] = &[
    ("USD", 1.0),
    ("EUR", 0.92),
    ("GBP", 0.79),
    ("JPY", 157.0),
    ("CAD", 1.37),
    ("AUD", 1.50),
];

fn fx_rate(code: &str) -> Result<f64> {
    FX_PER_USD
        .iter()
        .find(|(c, _)| *c == code)
        .map(|(_, r)| *r)
        .ok_or_else(|| Error::Expr(format!("unknown currency '{code}'")))
}

fn install_standard(reg: &mut FnRegistry) {
    reg.register("len", |args| {
        arity(args, 1, "len")?;
        let n = match &args[0] {
            Value::Array(a) => a.len(),
            Value::Object(o) => o.len(),
            Value::String(s) => s.chars().count(),
            Value::Null => 0,
            other => {
                return Err(Error::Expr(format!(
                    "len: unsupported type {}",
                    knactor_types::value::type_name(other)
                )))
            }
        };
        Ok(num(n as f64))
    });

    reg.register("sum", |args| {
        arity(args, 1, "sum")?;
        let xs = want_array(&args[0], "sum")?;
        let mut acc = 0.0;
        for x in xs {
            acc += as_number(x, "sum")?;
        }
        Ok(num(acc))
    });

    reg.register("avg", |args| {
        arity(args, 1, "avg")?;
        let xs = want_array(&args[0], "avg")?;
        if xs.is_empty() {
            return Ok(Value::Null);
        }
        let mut acc = 0.0;
        for x in xs {
            acc += as_number(x, "avg")?;
        }
        Ok(num(acc / xs.len() as f64))
    });

    reg.register("min", |args| {
        arity(args, 1, "min")?;
        let xs = want_array(&args[0], "min")?;
        let mut best: Option<f64> = None;
        for x in xs {
            let n = as_number(x, "min")?;
            best = Some(best.map_or(n, |b| b.min(n)));
        }
        Ok(best.map(num).unwrap_or(Value::Null))
    });

    reg.register("max", |args| {
        arity(args, 1, "max")?;
        let xs = want_array(&args[0], "max")?;
        let mut best: Option<f64> = None;
        for x in xs {
            let n = as_number(x, "max")?;
            best = Some(best.map_or(n, |b| b.max(n)));
        }
        Ok(best.map(num).unwrap_or(Value::Null))
    });

    reg.register("abs", |args| {
        arity(args, 1, "abs")?;
        Ok(num(as_number(&args[0], "abs")?.abs()))
    });
    reg.register("round", |args| {
        arity(args, 1, "round")?;
        Ok(num(as_number(&args[0], "round")?.round()))
    });
    reg.register("floor", |args| {
        arity(args, 1, "floor")?;
        Ok(num(as_number(&args[0], "floor")?.floor()))
    });
    reg.register("ceil", |args| {
        arity(args, 1, "ceil")?;
        Ok(num(as_number(&args[0], "ceil")?.ceil()))
    });

    reg.register("upper", |args| {
        arity(args, 1, "upper")?;
        Ok(Value::String(want_str(&args[0], "upper")?.to_uppercase()))
    });
    reg.register("lower", |args| {
        arity(args, 1, "lower")?;
        Ok(Value::String(want_str(&args[0], "lower")?.to_lowercase()))
    });
    reg.register("trim", |args| {
        arity(args, 1, "trim")?;
        Ok(Value::String(
            want_str(&args[0], "trim")?.trim().to_string(),
        ))
    });

    reg.register("concat", |args| {
        let mut out = String::new();
        for a in args {
            out.push_str(&stringify(a));
        }
        Ok(Value::String(out))
    });

    reg.register("join", |args| {
        arity(args, 2, "join")?;
        let xs = want_array(&args[0], "join")?;
        let sep = want_str(&args[1], "join")?;
        Ok(Value::String(
            xs.iter().map(stringify).collect::<Vec<_>>().join(sep),
        ))
    });

    reg.register("split", |args| {
        arity(args, 2, "split")?;
        let s = want_str(&args[0], "split")?;
        let sep = want_str(&args[1], "split")?;
        if sep.is_empty() {
            return Err(Error::Expr("split: empty separator".to_string()));
        }
        Ok(Value::Array(
            s.split(sep).map(|p| Value::String(p.to_string())).collect(),
        ))
    });

    reg.register("contains", |args| {
        arity(args, 2, "contains")?;
        let found = match (&args[0], &args[1]) {
            (Value::String(hay), Value::String(needle)) => hay.contains(needle.as_str()),
            (Value::Array(xs), needle) => xs.iter().any(|x| crate::eval::values_equal(x, needle)),
            (Value::Object(map), Value::String(key)) => map.contains_key(key),
            (hay, _) => {
                return Err(Error::Expr(format!(
                    "contains: unsupported haystack {}",
                    knactor_types::value::type_name(hay)
                )))
            }
        };
        Ok(Value::Bool(found))
    });

    reg.register("coalesce", |args| {
        for a in args {
            if !a.is_null() {
                return Ok(a.clone());
            }
        }
        Ok(Value::Null)
    });

    reg.register("default", |args| {
        arity(args, 2, "default")?;
        Ok(if args[0].is_null() {
            args[1].clone()
        } else {
            args[0].clone()
        })
    });

    reg.register("str", |args| {
        arity(args, 1, "str")?;
        Ok(Value::String(stringify(&args[0])))
    });

    reg.register("number", |args| {
        arity(args, 1, "number")?;
        match &args[0] {
            Value::Number(n) => Ok(Value::Number(*n)),
            Value::String(s) => s
                .trim()
                .parse::<f64>()
                .map(num)
                .map_err(|_| Error::Expr(format!("number: cannot parse '{s}'"))),
            Value::Bool(b) => Ok(num(if *b { 1.0 } else { 0.0 })),
            other => Err(Error::Expr(format!(
                "number: cannot convert {}",
                knactor_types::value::type_name(other)
            ))),
        }
    });

    reg.register("keys", |args| {
        arity(args, 1, "keys")?;
        match &args[0] {
            Value::Object(map) => Ok(Value::Array(
                map.keys().map(|k| Value::String(k.clone())).collect(),
            )),
            Value::Null => Ok(Value::Array(Vec::new())),
            other => Err(Error::Expr(format!(
                "keys: expected object, got {}",
                knactor_types::value::type_name(other)
            ))),
        }
    });

    reg.register("values", |args| {
        arity(args, 1, "values")?;
        match &args[0] {
            Value::Object(map) => Ok(Value::Array(map.values().cloned().collect())),
            Value::Null => Ok(Value::Array(Vec::new())),
            other => Err(Error::Expr(format!(
                "values: expected object, got {}",
                knactor_types::value::type_name(other)
            ))),
        }
    });

    reg.register("currency_convert", |args| {
        arity(args, 3, "currency_convert")?;
        let amount = as_number(&args[0], "currency_convert")?;
        let from = want_str(&args[1], "currency_convert")?;
        let to = want_str(&args[2], "currency_convert")?;
        let usd = amount / fx_rate(from)?;
        // Round to cents to keep exchanged money states stable.
        let converted = (usd * fx_rate(to)? * 100.0).round() / 100.0;
        Ok(num(converted))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn call(name: &str, args: &[Value]) -> Value {
        FnRegistry::standard().call(name, args).unwrap()
    }

    fn call_err(name: &str, args: &[Value]) -> Error {
        FnRegistry::standard().call(name, args).unwrap_err()
    }

    #[test]
    fn len_across_types() {
        assert_eq!(call("len", &[json!([1, 2, 3])]), json!(3.0));
        assert_eq!(call("len", &[json!({"a": 1})]), json!(1.0));
        assert_eq!(call("len", &[json!("héllo")]), json!(5.0));
        assert_eq!(call("len", &[json!(null)]), json!(0.0));
        assert!(matches!(call_err("len", &[json!(5)]), Error::Expr(_)));
    }

    #[test]
    fn numeric_folds() {
        assert_eq!(call("sum", &[json!([1, 2, 3.5])]), json!(6.5));
        assert_eq!(call("min", &[json!([3, 1, 2])]), json!(1.0));
        assert_eq!(call("max", &[json!([3, 1, 2])]), json!(3.0));
        assert_eq!(call("avg", &[json!([1, 2, 3])]), json!(2.0));
        assert_eq!(call("min", &[json!([])]), json!(null));
        assert_eq!(call("avg", &[json!([])]), json!(null));
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("upper", &[json!("air")]), json!("AIR"));
        assert_eq!(call("lower", &[json!("AIR")]), json!("air"));
        assert_eq!(call("trim", &[json!("  x ")]), json!("x"));
        assert_eq!(
            call("concat", &[json!("a"), json!(1), json!(null)]),
            json!("a1")
        );
        assert_eq!(call("join", &[json!(["a", "b"]), json!("-")]), json!("a-b"));
        assert_eq!(
            call("split", &[json!("a-b"), json!("-")]),
            json!(["a", "b"])
        );
    }

    #[test]
    fn contains_variants() {
        assert_eq!(
            call("contains", &[json!("shipment"), json!("ship")]),
            json!(true)
        );
        assert_eq!(call("contains", &[json!([1, 2]), json!(2)]), json!(true));
        assert_eq!(call("contains", &[json!([1, 2]), json!(2.0)]), json!(true));
        assert_eq!(
            call("contains", &[json!({"k": 1}), json!("k")]),
            json!(true)
        );
        assert_eq!(
            call("contains", &[json!({"k": 1}), json!("z")]),
            json!(false)
        );
    }

    #[test]
    fn null_handling_helpers() {
        assert_eq!(
            call("coalesce", &[json!(null), json!(null), json!(3)]),
            json!(3)
        );
        assert_eq!(call("coalesce", &[json!(null)]), json!(null));
        assert_eq!(call("default", &[json!(null), json!("d")]), json!("d"));
        assert_eq!(call("default", &[json!(0), json!("d")]), json!(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(call("str", &[json!(1.5)]), json!("1.5"));
        assert_eq!(call("number", &[json!("2.5")]), json!(2.5));
        assert_eq!(call("number", &[json!(true)]), json!(1.0));
        assert!(matches!(
            call_err("number", &[json!("abc")]),
            Error::Expr(_)
        ));
    }

    #[test]
    fn currency_convert_identity_and_cross() {
        assert_eq!(
            call(
                "currency_convert",
                &[json!(12.5), json!("USD"), json!("USD")]
            ),
            json!(12.5)
        );
        assert_eq!(
            call(
                "currency_convert",
                &[json!(100), json!("USD"), json!("EUR")]
            ),
            json!(92.0)
        );
        assert!(matches!(
            call_err("currency_convert", &[json!(1), json!("XXX"), json!("USD")]),
            Error::Expr(_)
        ));
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(matches!(call_err("zzz", &[]), Error::Expr(_)));
    }

    #[test]
    fn custom_registration_overrides() {
        let mut reg = FnRegistry::standard();
        reg.register("currency_convert", |_args| Ok(json!(42.0)));
        assert_eq!(
            reg.call("currency_convert", &[json!(1), json!("USD"), json!("USD")])
                .unwrap(),
            json!(42.0)
        );
    }

    #[test]
    fn keys_values() {
        // serde_json maps are sorted by key.
        assert_eq!(call("keys", &[json!({"b": 1, "a": 2})]), json!(["a", "b"]));
        assert_eq!(call("values", &[json!({"b": 1, "a": 2})]), json!([2, 1]));
        assert_eq!(call("keys", &[json!(null)]), json!([]));
    }
}
