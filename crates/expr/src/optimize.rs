//! Constant folding for DXG expressions.
//!
//! Integrators and store-side UDFs re-evaluate expressions on every
//! activation; pre-computing constant sub-trees once at compile time is a
//! free win (§3.3 "consolidate state processing logic into fewer, more
//! efficient operations"). Folding is semantics-preserving by
//! construction: a sub-tree is replaced only when it evaluates
//! successfully in an *empty* environment, i.e. it is closed and pure.
//! Anything that errors (division by zero, unknown function) or touches
//! state is left intact so run-time behaviour — including which errors
//! surface and when — is unchanged.

use crate::ast::Expr;
use crate::builtins::FnRegistry;
use crate::eval::{eval, Env};

/// Fold every closed, pure sub-expression to a literal.
pub fn fold_constants(expr: &Expr, fns: &FnRegistry) -> Expr {
    // Fold children first so enclosing nodes see literals.
    let rebuilt = match expr {
        Expr::Literal(_) | Expr::Ident(_) => expr.clone(),
        Expr::Member(base, field) => {
            Expr::Member(Box::new(fold_constants(base, fns)), field.clone())
        }
        Expr::Index(base, idx) => Expr::Index(
            Box::new(fold_constants(base, fns)),
            Box::new(fold_constants(idx, fns)),
        ),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| fold_constants(a, fns)).collect(),
        ),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(fold_constants(l, fns)),
            Box::new(fold_constants(r, fns)),
        ),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(fold_constants(e, fns))),
        Expr::If {
            then,
            cond,
            otherwise,
        } => Expr::If {
            then: Box::new(fold_constants(then, fns)),
            cond: Box::new(fold_constants(cond, fns)),
            otherwise: Box::new(fold_constants(otherwise, fns)),
        },
        Expr::Comprehension {
            body,
            var,
            source,
            filter,
        } => Expr::Comprehension {
            body: Box::new(fold_constants(body, fns)),
            var: var.clone(),
            source: Box::new(fold_constants(source, fns)),
            filter: filter.as_ref().map(|f| Box::new(fold_constants(f, fns))),
        },
        Expr::List(items) => Expr::List(items.iter().map(|i| fold_constants(i, fns)).collect()),
    };
    if matches!(rebuilt, Expr::Literal(_)) {
        return rebuilt;
    }
    // Closed expression? Evaluate once and freeze — but only if it has no
    // free roots (no state access, no comprehension leakage).
    if rebuilt.free_roots().is_empty() {
        if let Ok(v) = eval(&rebuilt, &Env::new(), fns) {
            return Expr::Literal(v);
        }
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expr;
    use serde_json::json;

    fn fold(src: &str) -> Expr {
        fold_constants(&parse_expr(src).unwrap(), &FnRegistry::standard())
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(fold("1 + 2 * 3"), Expr::Literal(json!(7.0)));
        assert_eq!(fold("upper(\"air\")"), Expr::Literal(json!("AIR")));
        assert_eq!(fold("[1, 2] + [3]"), Expr::Literal(json!([1.0, 2.0, 3.0])));
    }

    #[test]
    fn folds_constant_subtrees_inside_open_expressions() {
        let folded = fold("C.order.cost > 500 * 2");
        assert_eq!(folded.to_string(), "(C.order.cost > 1000.0)");
    }

    #[test]
    fn leaves_state_access_alone() {
        let folded = fold("C.order.cost + P.fee");
        assert_eq!(folded.to_string(), "(C.order.cost + P.fee)");
    }

    #[test]
    fn does_not_fold_erroring_subtrees() {
        // Division by zero must still surface at run time, not vanish or
        // crash compilation.
        let folded = fold("1 / 0");
        assert_eq!(folded.to_string(), "(1.0 / 0.0)");
        let err = eval(&folded, &Env::new(), &FnRegistry::standard()).unwrap_err();
        assert!(format!("{err}").contains("division by zero"));
    }

    #[test]
    fn folds_conditionals_with_constant_condition() {
        assert_eq!(fold(r#""a" if 2 > 1 else "b""#), Expr::Literal(json!("a")));
        // Open condition: branches fold, structure remains.
        let folded = fold(r#"(1 + 1) if C.x else (2 + 2)"#);
        assert_eq!(folded.to_string(), "(2.0 if C.x else 4.0)");
    }

    #[test]
    fn comprehension_over_literal_list_folds() {
        assert_eq!(
            fold("[i * 2 for i in [1, 2, 3]]"),
            Expr::Literal(json!([2.0, 4.0, 6.0]))
        );
        // Open source survives.
        let folded = fold("[i * (1 + 1) for i in C.items]");
        assert_eq!(folded.to_string(), "[(i * 2.0) for i in C.items]");
    }
}
