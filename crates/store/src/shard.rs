//! Shard topology: which node owns which key.
//!
//! The store core has always partitioned its in-memory map 16 ways for
//! lock concurrency (see [`crate::store`]); a [`ShardMap`] promotes the
//! same idea to *deployment* topology — consistent-hash partitioning of
//! keys over N shard **nodes**, each of which runs its own full store +
//! WAL exactly as a single-node exchange does today.
//!
//! Design points:
//!
//! * **Consistent hashing with virtual nodes.** Each node contributes
//!   `vnodes` points on a 64-bit ring; a key is owned by the node whose
//!   point follows the key's hash (wrapping). Adding or removing a node
//!   moves only ~1/N of the keyspace.
//! * **Versioned topology object.** A `ShardMap` is a value: it
//!   serializes (so it can itself live in a store, ship over the wire, or
//!   sit in a config file) and carries a monotonically bumped `version`
//!   so routers can detect that they disagree about topology.
//! * **Store-granular and key-granular placement.** Object keys spread
//!   across nodes ([`ShardMap::owner_of_key`]); Log-DE stores are placed
//!   *whole* on one node ([`ShardMap::owner_of_store`]) because their
//!   dense append sequence is per-store state that cannot be split
//!   without breaking tail/Sync cursors.
//!
//! The hash is a fixed FNV-1a/splitmix64 combination — deterministic
//! across processes, architectures, and releases, which is what makes a
//! serialized map a contract between independently deployed routers.

use serde::{Deserialize, Serialize};

/// FNV-1a over the bytes, then a splitmix64 finalizer to spread the
/// avalanche. Stable by construction: never re-seeded, never
/// platform-dependent (unlike `std::hash`).
fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Serialized form: the ring is derived state, so only the inputs travel.
#[derive(Serialize, Deserialize)]
struct ShardMapSpec {
    version: u64,
    nodes: Vec<String>,
    vnodes: usize,
}

impl Serialize for ShardMap {
    fn serialize_value(&self) -> serde_json::Value {
        ShardMapSpec {
            version: self.version,
            nodes: self.nodes.clone(),
            vnodes: self.vnodes,
        }
        .serialize_value()
    }
}

impl<'de> Deserialize<'de> for ShardMap {
    fn deserialize_value(value: &serde_json::Value) -> Result<Self, serde::Error> {
        let spec = ShardMapSpec::deserialize_value(value)?;
        if spec.nodes.is_empty() || spec.vnodes == 0 {
            return Err(serde::Error::msg(
                "shard map needs at least one node and one vnode",
            ));
        }
        Ok(ShardMap::with_vnodes(spec.version, spec.nodes, spec.vnodes))
    }
}

/// Consistent-hash partitioning of the keyspace over N shard nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    nodes: Vec<String>,
    vnodes: usize,
    /// Sorted ring of (point, node index). Rebuilt, never serialized.
    ring: Vec<(u64, u32)>,
}

/// Default virtual nodes per physical node: enough that a 4-node map
/// keeps every node within ~±20% of its fair share of a uniform keyspace.
pub const DEFAULT_VNODES: usize = 128;

impl ShardMap {
    /// A map over the given named nodes (index in the slice = shard id).
    pub fn new(version: u64, nodes: Vec<String>) -> ShardMap {
        ShardMap::with_vnodes(version, nodes, DEFAULT_VNODES)
    }

    pub fn with_vnodes(version: u64, nodes: Vec<String>, vnodes: usize) -> ShardMap {
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        assert!(vnodes > 0, "a shard map needs at least one vnode per node");
        let mut ring = Vec::with_capacity(nodes.len() * vnodes);
        for (idx, node) in nodes.iter().enumerate() {
            for v in 0..vnodes {
                let point = stable_hash(format!("{node}\u{1}{v}").as_bytes());
                ring.push((point, idx as u32));
            }
        }
        // Ties (hash collisions between vnodes) break by node index so
        // the ring is a pure function of the spec.
        ring.sort_unstable();
        ShardMap {
            version,
            nodes,
            vnodes,
            ring,
        }
    }

    /// The usual test/bootstrap topology: `n` nodes named `shard-0..n`.
    pub fn uniform(n: usize) -> ShardMap {
        ShardMap::new(1, (0..n).map(|i| format!("shard-{i}")).collect())
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// Virtual nodes per physical node on the hash ring.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// A new topology with the given node set and a bumped version.
    pub fn rebalanced(&self, nodes: Vec<String>) -> ShardMap {
        ShardMap::with_vnodes(self.version + 1, nodes, self.vnodes)
    }

    fn owner_of_hash(&self, h: u64) -> usize {
        let i = self.ring.partition_point(|&(point, _)| point < h);
        let (_, node) = self.ring[i % self.ring.len()];
        node as usize
    }

    /// Which shard owns this object. Keys of one store spread over all
    /// nodes; the store id participates in the hash so the same key in
    /// two stores need not co-locate.
    pub fn owner_of_key(&self, store: &str, key: &str) -> usize {
        let mut bytes = Vec::with_capacity(store.len() + 1 + key.len());
        bytes.extend_from_slice(store.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(key.as_bytes());
        self.owner_of_hash(stable_hash(&bytes))
    }

    /// Which shard owns this store as a whole (Log-DE placement: the
    /// append sequence is store-level state and must stay dense).
    pub fn owner_of_store(&self, store: &str) -> usize {
        self.owner_of_hash(stable_hash(store.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = ShardMap::uniform(4);
        let b = ShardMap::uniform(4);
        for i in 0..1000 {
            let key = format!("key-{i}");
            assert_eq!(
                a.owner_of_key("s/state", &key),
                b.owner_of_key("s/state", &key)
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    fn keys_balance_across_nodes() {
        let map = ShardMap::uniform(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[map.owner_of_key("bal/state", &format!("key-{i}"))] += 1;
        }
        // Fair share is 2500 per node; with 128 vnodes each node should
        // land well within 2× either way.
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (1250..=5000).contains(&c),
                "node {node} owns {c} of 10000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn store_id_participates_in_key_placement() {
        let map = ShardMap::uniform(4);
        let spread = (0..100)
            .map(|i| format!("key-{i}"))
            .filter(|k| map.owner_of_key("a/state", k) != map.owner_of_key("b/state", k))
            .count();
        assert!(spread > 0, "same key always co-located across stores");
    }

    #[test]
    fn serde_roundtrip_rebuilds_the_ring() {
        let map = ShardMap::uniform(3);
        let wire = serde_json::to_string(&map).unwrap();
        let back: ShardMap = serde_json::from_str(&wire).unwrap();
        assert_eq!(map, back);
        for i in 0..200 {
            let key = format!("key-{i}");
            assert_eq!(
                map.owner_of_key("s/state", &key),
                back.owner_of_key("s/state", &key)
            );
        }
    }

    #[test]
    fn rebalance_moves_a_minority_of_keys() {
        let four = ShardMap::uniform(4);
        let five = four.rebalanced((0..5).map(|i| format!("shard-{i}")).collect());
        assert_eq!(five.version(), four.version() + 1);
        let moved = (0..10_000)
            .map(|i| format!("key-{i}"))
            .filter(|k| four.owner_of_key("s/state", k) != five.owner_of_key("s/state", k))
            .count();
        // Consistent hashing: only ~1/5 of keys should move to the new
        // node; a modulo scheme would move ~4/5.
        assert!(
            moved < 4_000,
            "{moved} of 10000 keys moved adding one node — not consistent hashing"
        );
        assert!(moved > 0, "a new node must take over some keys");
    }

    #[test]
    fn single_node_owns_everything() {
        let map = ShardMap::uniform(1);
        for i in 0..100 {
            assert_eq!(map.owner_of_key("s/state", &format!("k{i}")), 0);
            assert_eq!(map.owner_of_store(&format!("store-{i}")), 0);
        }
    }
}
