//! Client stub modules for the API-centric retail app.
//!
//! Each module mirrors what a Protobuf/gRPC toolchain generates from a
//! service's API definition: request/response message types, a typed
//! client wrapper over the transport, and error mapping. In the
//! API-centric world **these files live with the consumer** (Checkout
//! vendors them in), so every schema change upstream lands here and in
//! the code that uses them — which is exactly the churn Table 1 counts.

pub mod currency_v1;
pub mod payment_v1;
pub mod shipping_v1;
pub mod shipping_v2;
