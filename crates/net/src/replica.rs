//! Leader/follower replication: the node runtime, the follower
//! replicator, failover, and the client-side [`ReplicaRouter`].
//!
//! One node of a replica set is the **leader**; it serves every mutation
//! and streams its committed event sequence (the same dense revision
//! stream the WAL and watch history order) to **followers** over
//! `ReplSubscribe`. Followers apply the stream through their own
//! `apply_batch` path — so their stores, revisions, histories, and watch
//! outboxes are indistinguishable from the leader's — and `ReplAck`
//! their durably-staged high-water mark back. A `Replicated(n)` write
//! acks to the client only once `n` followers have staged it.
//!
//! **Fencing.** Roles are guarded twice: follower nodes reject client
//! mutations on replicated stores with [`Error::NotLeader`], and — the
//! backstop that needs no connectivity — a deposed leader can never
//! acknowledge a write, because its followers have stopped acking it and
//! `Replicated(n)` holds the ack until quorum. Promotion bumps a fencing
//! epoch; `ReplPromote` with a stale epoch is refused.
//!
//! **Failover.** Followers heartbeat the leader (`ReplStatus` doubles as
//! the probe). After a miss budget, survivors poll every peer's status
//! and elect deterministically: the most-caught-up reachable node wins,
//! ties broken toward the lowest node index, so independent electors
//! agree without a coordination round. The winner promotes itself at
//! `max_seen_epoch + 1`; losers re-point their replicators at it.
//!
//! **Reads.** [`ReplicaRouter`] sends writes to the leader and fans
//! reads out across the replica set with read-your-writes session
//! guarantees: it remembers the last revision each store acked to *this*
//! session and issues a `ReplWait` barrier before serving the session's
//! read from a replica that has not provably caught up to it.

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::client::{ReplStatusInfo, ResilientClient, RetryPolicy, TcpClient};
use crate::fault::{FaultApi, FaultPlan};
use crate::loopback::LoopbackClient;
use crate::proto::{ProfileSpec, QuerySpec};
use crate::server::ExchangeServer;
use knactor_logstore::LogRecord;
use knactor_rbac::Subject;
use knactor_store::udf::UdfAssignment;
use knactor_store::ApplyOutcome as CursorOutcome;
use knactor_store::{
    BatchOp, DataExchange, EventKind, FollowerCursor, ItemResult, PutItem, ReplGroup, ReplState,
    StoredObject, TxOp, UdfBinding, WatchEvent,
};
use knactor_types::{
    metrics, Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

/// Follower → leader heartbeat cadence.
const HEARTBEAT: Duration = Duration::from_millis(20);
/// Consecutive heartbeat misses before the leader is declared dead.
const HEARTBEAT_MISSES: u32 = 5;
/// Per-probe timeout for heartbeats and election status polls.
const PROBE_TIMEOUT: Duration = Duration::from_millis(300);
/// How long an election keeps re-polling before giving up this round
/// (the follower loop immediately starts another).
const ELECTION_ROUND: Duration = Duration::from_secs(5);
/// Max events coalesced into one follower apply batch.
const APPLY_BATCH_MAX: usize = 128;
/// Bounded router retries across leader re-resolutions.
const LEAD_ATTEMPTS: u32 = 6;
/// How long `resolve_leader` keeps polling for *some* node to claim the
/// role before the write fails. Covers a full detection + election round.
const RESOLVE_DEADLINE: Duration = Duration::from_secs(10);

/// Per-node replication role state, shared between the serving stack
/// (which fences mutations) and every attached [`ReplState`] (which
/// gates quorum waits on the same flag).
pub struct ReplRuntime {
    leading: Arc<AtomicBool>,
    epoch: AtomicU64,
    failovers: Arc<metrics::Counter>,
}

impl ReplRuntime {
    fn with_role(leading: bool) -> Arc<ReplRuntime> {
        Arc::new(ReplRuntime {
            leading: Arc::new(AtomicBool::new(leading)),
            epoch: AtomicU64::new(0),
            failovers: metrics::global().counter("knactor_failover_total", &[]),
        })
    }

    /// A node that starts out leading (epoch 0).
    pub fn leader() -> Arc<ReplRuntime> {
        ReplRuntime::with_role(true)
    }

    /// A node that starts out following.
    pub fn follower() -> Arc<ReplRuntime> {
        ReplRuntime::with_role(false)
    }

    pub fn is_leader(&self) -> bool {
        self.leading.load(Ordering::Acquire)
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The flag [`ReplState`]s share so promotion/demotion flips quorum
    /// behaviour for every store on the node at once.
    pub fn leading_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.leading)
    }

    /// Demote to follower (initial wiring; a live demotion happens via
    /// [`ReplRuntime::observe_epoch`]).
    pub fn set_follower(&self) {
        self.leading.store(false, Ordering::Release);
    }

    /// Take leadership at `epoch`. Fails with `Conflict` unless `epoch`
    /// is strictly newer than the node's current epoch — the fence that
    /// keeps a deposed leader (or a lost election round) from reclaiming
    /// the role with stale authority.
    pub fn promote(&self, epoch: u64) -> Result<()> {
        loop {
            let current = self.epoch.load(Ordering::Acquire);
            if epoch <= current {
                return Err(Error::Conflict {
                    expected: epoch,
                    actual: current,
                });
            }
            if self
                .epoch
                .compare_exchange(current, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if !self.leading.swap(true, Ordering::AcqRel) {
                    self.failovers.inc();
                }
                return Ok(());
            }
        }
    }

    /// Learn of a peer's epoch. A strictly higher epoch than ours means
    /// someone else was promoted after us: record it and stand down.
    pub fn observe_epoch(&self, epoch: u64) {
        loop {
            let current = self.epoch.load(Ordering::Acquire);
            if epoch <= current {
                return;
            }
            if self
                .epoch
                .compare_exchange(current, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.leading.store(false, Ordering::Release);
                return;
            }
        }
    }
}

/// Static wiring of one follower node into its replica set.
#[derive(Clone)]
pub struct FollowerConfig {
    /// Follower identity used in `ReplAck`s (must be unique per node).
    pub name: String,
    /// This node's index in `peers`.
    pub node_index: usize,
    /// Every replica-set member's address, index-aligned across nodes.
    pub peers: Vec<SocketAddr>,
    /// Index of the node believed to lead at startup.
    pub initial_leader: usize,
}

/// Handle onto one follower node's replication machinery.
pub struct FollowerHandle {
    task: JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
    leader_idx: Arc<AtomicUsize>,
}

impl FollowerHandle {
    /// Index of the peer this follower currently replicates from.
    pub fn leader_index(&self) -> usize {
        self.leader_idx.load(Ordering::Acquire)
    }

    pub async fn stop(self) {
        self.shutdown.store(true, Ordering::Release);
        self.task.abort();
        let _ = self.task.await;
    }
}

/// Start a follower node's replication + failover machinery.
///
/// `apply` is the path replicated events take into this node's own
/// exchange — normally a [`LoopbackClient`] onto `server`'s exchanges,
/// optionally decorated with a [`FaultApi`] to inject replication delay
/// or loss in tests. The apply path runs on the follower role, where
/// quorum waits are passive, so it can never deadlock on itself.
pub fn run_follower(
    server: &ExchangeServer,
    apply: Arc<dyn ExchangeApi>,
    config: FollowerConfig,
) -> FollowerHandle {
    let object = Arc::clone(&server.object);
    let runtime = server.repl();
    let shutdown = Arc::new(AtomicBool::new(false));
    let leader_idx = Arc::new(AtomicUsize::new(config.initial_leader));
    let task = tokio::spawn(follower_loop(
        object,
        runtime,
        apply,
        config,
        Arc::clone(&leader_idx),
        Arc::clone(&shutdown),
    ));
    FollowerHandle {
        task,
        shutdown,
        leader_idx,
    }
}

async fn follower_loop(
    object: Arc<DataExchange>,
    runtime: Arc<ReplRuntime>,
    apply: Arc<dyn ExchangeApi>,
    config: FollowerConfig,
    leader_idx: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::Acquire) && !runtime.is_leader() {
        let target = leader_idx.load(Ordering::Acquire);
        let addr = config.peers[target];
        let connected = TcpClient::connect(addr, Subject::integrator(&config.name)).await;
        match connected {
            Ok(client) => {
                let client = Arc::new(client.with_request_timeout(PROBE_TIMEOUT));
                replication_session(&object, &runtime, &apply, &config, &client, &shutdown).await;
            }
            Err(_) => {
                tokio::time::sleep(HEARTBEAT).await;
            }
        }
        if shutdown.load(Ordering::Acquire) || runtime.is_leader() {
            break;
        }
        // The session collapsed (or the leader never answered): elect.
        run_election(&object, &runtime, &config, &leader_idx, &shutdown).await;
    }
}

/// One replication session against one (believed) leader connection.
/// Returns when the connection dies, the peer stops leading, heartbeats
/// lapse, or this node is promoted.
async fn replication_session(
    object: &Arc<DataExchange>,
    runtime: &Arc<ReplRuntime>,
    apply: &Arc<dyn ExchangeApi>,
    config: &FollowerConfig,
    client: &Arc<TcpClient>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut streams: HashMap<StoreId, JoinHandle<()>> = HashMap::new();
    let mut misses = 0u32;
    let mut ticker = tokio::time::interval(HEARTBEAT);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    loop {
        ticker.tick().await;
        if shutdown.load(Ordering::Acquire) || runtime.is_leader() || client.is_closed() {
            break;
        }
        // Track replicated stores as they appear (the router broadcasts
        // `CreateStore` to every member, so discovery is local).
        for id in object.store_ids() {
            let replicated = object
                .store(&id)
                .map(|s| s.repl().is_some() || s.profile().repl_acks > 0)
                .unwrap_or(false);
            let dead = streams.get(&id).map(|t| t.is_finished()).unwrap_or(true);
            if replicated && dead {
                streams.insert(
                    id.clone(),
                    tokio::spawn(replicate_store(
                        Arc::clone(object),
                        Arc::clone(runtime),
                        Arc::clone(apply),
                        config.name.clone(),
                        Arc::clone(client),
                        id,
                        Arc::clone(shutdown),
                    )),
                );
            }
        }
        // Heartbeat: the leader's status doubles as liveness, epoch
        // learning, and role verification.
        match tokio::time::timeout(PROBE_TIMEOUT, client.repl_status()).await {
            Ok(Ok(status)) => {
                misses = 0;
                runtime.observe_epoch(status.epoch);
                if !status.leader {
                    break; // it stood down; re-resolve
                }
            }
            _ => {
                misses += 1;
                if misses >= HEARTBEAT_MISSES {
                    break;
                }
            }
        }
    }
    for (_, task) in streams {
        task.abort();
    }
}

/// Convert one replicated event into the batch op that reproduces it.
fn op_of(event: &WatchEvent) -> BatchOp {
    match event.kind {
        EventKind::Created => BatchOp::Create {
            key: event.key.clone(),
            value: (*event.value).clone(),
        },
        EventKind::Updated => BatchOp::Update {
            key: event.key.clone(),
            value: (*event.value).clone(),
            expected: None,
        },
        EventKind::Deleted => BatchOp::Delete {
            key: event.key.clone(),
        },
    }
}

/// Stream one store's replication feed and apply it locally. Runs until
/// the feed, the apply path, or the node's follower role ends; the
/// session loop respawns it (resubscribing from the store's recovered
/// revision), which is also the catch-up path after a follower crash.
async fn replicate_store(
    object: Arc<DataExchange>,
    runtime: Arc<ReplRuntime>,
    apply: Arc<dyn ExchangeApi>,
    follower: String,
    client: Arc<TcpClient>,
    id: StoreId,
    shutdown: Arc<AtomicBool>,
) {
    let Ok(local) = object.store(&id) else { return };
    'subscribe: while !shutdown.load(Ordering::Acquire) && !runtime.is_leader() {
        let from = local.revision();
        let mut cursor = FollowerCursor::at(from);
        let mut rx = match client.repl_subscribe(id.clone(), from).await {
            Ok(rx) => rx,
            Err(_) => return, // connection-level problem; session handles it
        };
        while let Some(first) = rx.recv().await {
            // Coalesce whatever else already arrived into one apply
            // batch (one group fsync + one ack on the follower).
            let mut events = vec![first];
            while events.len() < APPLY_BATCH_MAX {
                match rx.try_recv() {
                    Ok(event) => events.push(event),
                    Err(_) => break,
                }
            }
            let mut ops = Vec::with_capacity(events.len());
            let mut expected = Vec::with_capacity(events.len());
            for event in &events {
                // Classify per event: replays after resubscription may
                // overlap what this store already holds.
                match cursor.offer(&ReplGroup::new(vec![event.clone()])) {
                    CursorOutcome::Apply { .. } => {
                        ops.push(op_of(event));
                        expected.push(event.revision);
                    }
                    CursorOutcome::Duplicate => {}
                    CursorOutcome::Gap { .. } => {
                        // A frame went missing: resubscribe from what we
                        // actually hold rather than tear a hole.
                        continue 'subscribe;
                    }
                }
            }
            if ops.is_empty() {
                continue;
            }
            let applied = match apply.batch_commit(id.clone(), ops).await {
                Ok(items) => items,
                Err(_) => continue 'subscribe, // e.g. WAL crash injection; re-sync
            };
            // The follower must land the leader's exact revisions; any
            // divergence means its state drifted (or a crash point fired
            // mid-batch) and the only safe continuation is a fresh
            // subscription from what the store really holds.
            let clean = applied.len() == expected.len()
                && applied.iter().zip(&expected).all(|(item, want)| {
                    matches!(item, ItemResult::Revision { revision } if revision == want)
                });
            if !clean {
                continue 'subscribe;
            }
            let high = *expected.last().expect("non-empty batch");
            if client
                .repl_ack(id.clone(), follower.clone(), high)
                .await
                .is_err()
            {
                return;
            }
        }
        // Feed ended (lag cut or connection close): resubscribe — the
        // session loop notices dead connections via its heartbeat.
        if client.is_closed() {
            return;
        }
    }
}

/// Deterministic failover: poll every peer, adopt an existing newer
/// leader if one emerged, otherwise promote the most-caught-up reachable
/// node (ties to the lowest index). Every elector runs the same rule on
/// the same (quiesced — the old leader is gone, so progress has stopped)
/// data, so they agree without a coordination protocol.
async fn run_election(
    object: &Arc<DataExchange>,
    runtime: &Arc<ReplRuntime>,
    config: &FollowerConfig,
    leader_idx: &Arc<AtomicUsize>,
    shutdown: &Arc<AtomicBool>,
) {
    let deadline = Instant::now() + ELECTION_ROUND;
    while Instant::now() < deadline {
        if shutdown.load(Ordering::Acquire) || runtime.is_leader() {
            return;
        }
        let mut statuses: Vec<Option<ReplStatusInfo>> = Vec::with_capacity(config.peers.len());
        for (i, addr) in config.peers.iter().enumerate() {
            if i == config.node_index {
                statuses.push(Some(ReplStatusInfo {
                    leader: runtime.is_leader(),
                    epoch: runtime.epoch(),
                    applied: object
                        .store_ids()
                        .into_iter()
                        .filter_map(|id| object.store(&id).ok().map(|s| (id, s.revision())))
                        .collect(),
                }));
                continue;
            }
            statuses.push(probe_status(*addr, &config.name).await);
        }
        let max_epoch = statuses
            .iter()
            .flatten()
            .map(|s| s.epoch)
            .max()
            .unwrap_or(0);
        runtime.observe_epoch(max_epoch);
        // A leader already emerged (possibly a racing elector): follow it.
        if let Some((idx, _)) = statuses
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .filter(|(i, s)| s.leader && *i != config.node_index)
            .max_by_key(|(_, s)| s.epoch)
        {
            leader_idx.store(idx, Ordering::Release);
            return;
        }
        // Most caught-up reachable node wins; lowest index breaks ties.
        let winner = statuses
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s.total_applied())))
            .max_by(|(ai, at), (bi, bt)| at.cmp(bt).then(bi.cmp(ai)))
            .map(|(i, _)| i);
        match winner {
            Some(i) if i == config.node_index => {
                // promote() refuses stale epochs, so losing a race here
                // just sends us back around the loop to adopt the winner.
                if runtime.promote(max_epoch + 1).is_ok() {
                    return;
                }
            }
            Some(_) => {
                // The winner should promote itself shortly; re-poll.
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
            None => {
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
        }
    }
}

async fn probe_status(addr: SocketAddr, name: &str) -> Option<ReplStatusInfo> {
    let connect = tokio::time::timeout(
        PROBE_TIMEOUT,
        TcpClient::connect(addr, Subject::integrator(name)),
    );
    let client = connect.await.ok()?.ok()?;
    tokio::time::timeout(PROBE_TIMEOUT, client.repl_status())
        .await
        .ok()?
        .ok()
}

// ---------------------------------------------------------------------------
// ReplicaRouter
// ---------------------------------------------------------------------------

/// Client-side entry point to a replica set, behind the unchanged
/// [`ExchangeApi`]: writes go to the leader (re-resolving through
/// `NotLeader`/transport failures and failovers), reads round-robin
/// across the whole set with read-your-writes session barriers, and
/// watches ride replicas so they only ever observe replicated — hence
/// ack-eligible — state.
pub struct ReplicaRouter {
    nodes: Vec<Arc<ResilientClient>>,
    leader: AtomicUsize,
    rr: AtomicUsize,
    reads: AtomicU64,
    /// Nodes recently seen dead; skipped by read rotation and revived
    /// periodically (and whenever a status poll answers).
    dead: Vec<AtomicBool>,
    /// Session write high-water marks: last *acked* revision per store.
    session: Mutex<HashMap<StoreId, u64>>,
    /// Per-(node, store) proof of catch-up, so the barrier round-trip is
    /// paid once per write burst, not once per read.
    caught_up: Mutex<HashMap<(usize, StoreId), u64>>,
}

impl ReplicaRouter {
    /// Connect one resilient client per replica-set member and resolve
    /// the current leader.
    pub async fn connect(
        addrs: &[SocketAddr],
        subject: Subject,
        policy: RetryPolicy,
    ) -> Result<ReplicaRouter> {
        assert!(!addrs.is_empty(), "a replica set has at least one node");
        let mut nodes = Vec::with_capacity(addrs.len());
        for addr in addrs {
            nodes.push(Arc::new(
                ResilientClient::connect(*addr, subject.clone(), policy).await?,
            ));
        }
        let router = ReplicaRouter {
            dead: nodes.iter().map(|_| AtomicBool::new(false)).collect(),
            nodes,
            leader: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
            session: Mutex::new(HashMap::new()),
            caught_up: Mutex::new(HashMap::new()),
        };
        let _ = router.resolve_leader().await;
        Ok(router)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the node currently believed to lead.
    pub fn leader_index(&self) -> usize {
        self.leader.load(Ordering::Acquire)
    }

    /// Poll the set until some node claims leadership; highest epoch
    /// wins. Nodes that answer are revived for read rotation.
    pub async fn resolve_leader(&self) -> Result<usize> {
        let deadline = Instant::now() + RESOLVE_DEADLINE;
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, node) in self.nodes.iter().enumerate() {
                let status = tokio::time::timeout(PROBE_TIMEOUT, node.repl_status()).await;
                match status {
                    Ok(Ok(s)) => {
                        self.dead[i].store(false, Ordering::Release);
                        if s.leader && best.map(|(_, e)| s.epoch > e).unwrap_or(true) {
                            best = Some((i, s.epoch));
                        }
                    }
                    _ => self.dead[i].store(true, Ordering::Release),
                }
            }
            if let Some((idx, _)) = best {
                self.leader.store(idx, Ordering::Release);
                return Ok(idx);
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout(
                    "no replica-set node claims leadership".to_string(),
                ));
            }
            tokio::time::sleep(Duration::from_millis(50)).await;
        }
    }

    /// Run `op` against the leader, re-resolving leadership and retrying
    /// on `NotLeader` and transport-level failures (which is how a write
    /// in flight during failover finds the new leader). `op` receives
    /// the routing attempt number; `attempt > 0` means an earlier try
    /// may have executed on a now-dead leader without us seeing its ack.
    async fn lead<T, F>(&self, op: F) -> Result<T>
    where
        F: for<'c> Fn(&'c ResilientClient, u32) -> BoxFuture<'c, Result<T>>,
    {
        let mut last: Option<Error> = None;
        for attempt in 0..LEAD_ATTEMPTS {
            let idx = self.leader.load(Ordering::Acquire);
            match op(&self.nodes[idx], attempt).await {
                Err(e @ (Error::NotLeader { .. } | Error::Transport(_) | Error::Timeout(_))) => {
                    last = Some(e);
                    if let Err(resolve) = self.resolve_leader().await {
                        return Err(last.unwrap_or(resolve));
                    }
                }
                other => return other,
            }
        }
        Err(last.unwrap_or_else(|| Error::Transport("leader retries exhausted".to_string())))
    }

    /// Record an acked write: the session's floor for replica reads.
    fn note_write(&self, store: &StoreId, rev: Revision) {
        let mut session = self.session.lock();
        let entry = session.entry(store.clone()).or_insert(0);
        if rev.0 > *entry {
            *entry = rev.0;
        }
    }

    fn session_floor(&self, store: &StoreId) -> u64 {
        self.session.lock().get(store).copied().unwrap_or(0)
    }

    /// Pick the next read node (round-robin over live nodes). Every 64
    /// reads the dead set is revived so crashed-then-recovered replicas
    /// rejoin the rotation without a control-plane event.
    fn read_candidates(&self) -> Vec<usize> {
        if self.reads.fetch_add(1, Ordering::Relaxed) % 64 == 63 {
            for flag in &self.dead {
                flag.store(false, Ordering::Release);
            }
        }
        let n = self.nodes.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        let mut order: Vec<usize> = (0..n).map(|i| (start + i) % n).collect();
        order.retain(|i| !self.dead[*i].load(Ordering::Acquire));
        let leader = self.leader.load(Ordering::Acquire);
        if order.is_empty() {
            order.push(leader);
        } else if !order.contains(&leader) {
            // The leader always serves as the fallback of last resort.
            order.push(leader);
        }
        order
    }

    /// Read-your-writes barrier: make sure `node` has applied this
    /// session's last acked write to `store` before reading from it.
    async fn barrier(&self, idx: usize, store: &StoreId) -> Result<()> {
        let floor = self.session_floor(store);
        if floor == 0 || idx == self.leader.load(Ordering::Acquire) {
            return Ok(());
        }
        if self
            .caught_up
            .lock()
            .get(&(idx, store.clone()))
            .map(|have| *have >= floor)
            .unwrap_or(false)
        {
            return Ok(());
        }
        let seen = self.nodes[idx]
            .repl_wait(store.clone(), Revision(floor))
            .await?;
        let mut caught = self.caught_up.lock();
        let entry = caught.entry((idx, store.clone())).or_insert(0);
        if seen.0 > *entry {
            *entry = seen.0;
        }
        Ok(())
    }

    /// Run a read against the replica set: rotate across live nodes
    /// (barriered), falling back toward the leader on failure.
    async fn read<T, F>(&self, store: &StoreId, op: F) -> Result<T>
    where
        F: for<'c> Fn(&'c ResilientClient) -> BoxFuture<'c, Result<T>>,
    {
        let mut last: Option<Error> = None;
        for idx in self.read_candidates() {
            if self.barrier(idx, store).await.is_err() {
                // Replica can't prove catch-up (e.g. partitioned from the
                // leader): skip it rather than risk a stale read.
                continue;
            }
            match op(&self.nodes[idx]).await {
                Err(e @ (Error::Transport(_) | Error::Timeout(_))) => {
                    self.dead[idx].store(true, Ordering::Release);
                    last = Some(e);
                }
                other => return other,
            }
        }
        Err(last.unwrap_or_else(|| Error::Transport("no readable replica".to_string())))
    }
}

impl ExchangeApi for ReplicaRouter {
    /// Broadcast: every member materializes the store (followers need it
    /// before the replication stream can land). `AlreadyExists` from a
    /// member that restarted with surviving state is tolerated.
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            let leader = self.leader.load(Ordering::Acquire);
            let mut order: Vec<usize> = (0..self.nodes.len()).collect();
            order.sort_by_key(|i| if *i == leader { 0 } else { 1 });
            for idx in order {
                match self.nodes[idx]
                    .create_store(store.clone(), profile.clone())
                    .await
                {
                    Ok(()) | Err(Error::AlreadyExists(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            let result = self
                .lead(|node, attempt| {
                    let (store, key, value) = (store.clone(), key.clone(), value.clone());
                    Box::pin(async move {
                        match node.create(store.clone(), key.clone(), value.clone()).await {
                            // A retried create that lost its ack to a dying
                            // leader resurfaces as AlreadyExists on the new
                            // one; identical content means it was ours.
                            Err(Error::AlreadyExists(_)) if attempt > 0 => {
                                let existing = node.get(store, key).await?;
                                if *existing.value == value {
                                    Ok(existing.revision)
                                } else {
                                    Err(Error::AlreadyExists(existing.key.to_string()))
                                }
                            }
                            other => other,
                        }
                    })
                })
                .await?;
            self.note_write(&store, result);
            Ok(result)
        })
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        Box::pin(async move {
            self.read(&store, |node| {
                let (store, key) = (store.clone(), key.clone());
                Box::pin(async move { node.get(store, key).await })
            })
            .await
        })
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            self.read(&store, |node| {
                let store = store.clone();
                Box::pin(async move { node.list(store).await })
            })
            .await
        })
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            let result = self
                .lead(|node, attempt| {
                    let (store, key, value) = (store.clone(), key.clone(), value.clone());
                    Box::pin(async move {
                        match node
                            .update(store.clone(), key.clone(), value.clone(), expected)
                            .await
                        {
                            // OCC conflict on a routing retry: if the store
                            // already holds exactly our value, the lost ack
                            // was ours.
                            Err(Error::Conflict { .. }) if attempt > 0 && expected.is_some() => {
                                let existing = node.get(store, key).await?;
                                if *existing.value == value {
                                    Ok(existing.revision)
                                } else {
                                    Err(Error::Conflict {
                                        expected: expected.map(|r| r.0).unwrap_or(0),
                                        actual: existing.revision.0,
                                    })
                                }
                            }
                            other => other,
                        }
                    })
                })
                .await?;
            self.note_write(&store, result);
            Ok(result)
        })
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            // A patch is naturally idempotent across routing retries: the
            // store's no-op suppression absorbs a re-merge of content that
            // already landed.
            let result = self
                .lead(|node, _| {
                    let (store, key, patch) = (store.clone(), key.clone(), patch.clone());
                    Box::pin(async move { node.patch(store, key, patch, upsert).await })
                })
                .await?;
            self.note_write(&store, result);
            Ok(result)
        })
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            let result = self
                .lead(|node, attempt| {
                    let (store, key) = (store.clone(), key.clone());
                    Box::pin(async move {
                        match node.delete(store, key).await {
                            // Our earlier attempt may have deleted it before
                            // the ack was lost: report the store's revision.
                            Err(Error::NotFound(_)) if attempt > 0 => Err(Error::NotFound(
                                "deleted (ack lost in failover)".to_string(),
                            )),
                            other => other,
                        }
                    })
                })
                .await?;
            self.note_write(&store, result);
            Ok(result)
        })
    }

    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            self.read(&store, |node| {
                let (store, keys) = (store.clone(), keys.clone());
                Box::pin(async move { node.batch_get(store, keys).await })
            })
            .await
        })
    }

    fn batch_put(
        &self,
        store: StoreId,
        items: Vec<PutItem>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let results = self
                .lead(|node, _| {
                    let (store, items) = (store.clone(), items.clone());
                    Box::pin(async move { node.batch_put(store, items).await })
                })
                .await?;
            if let Some(high) = results.iter().filter_map(item_revision).max() {
                self.note_write(&store, high);
            }
            Ok(results)
        })
    }

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let results = self
                .lead(|node, _| {
                    let (store, ops) = (store.clone(), ops.clone());
                    Box::pin(async move { node.batch_commit(store, ops).await })
                })
                .await?;
            if let Some(high) = results.iter().filter_map(item_revision).max() {
                self.note_write(&store, high);
            }
            Ok(results)
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, key, consumer) = (store.clone(), key.clone(), consumer.clone());
                Box::pin(async move { node.register_consumer(store, key, consumer).await })
            })
            .await
        })
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, key, consumer) = (store.clone(), key.clone(), consumer.clone());
                Box::pin(async move { node.mark_processed(store, key, consumer).await })
            })
            .await
        })
    }

    /// Watch through the replica set, surviving node loss: the stream
    /// rides one node's resilient watch until that node dies, then
    /// resumes from the router's own `last_seen` cursor on another
    /// member — deduplicating the overlap and verifying the dense
    /// revision sequence, exactly like the single-node resume protocol.
    ///
    /// Watches prefer replicas: a replica only ever fans out *applied
    /// replicated* state, so a promotion can never retract an event this
    /// stream delivered.
    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let nodes = self.nodes.clone();
            let leader = self.leader.load(Ordering::Acquire);
            let start = watch_node_order(nodes.len(), leader);
            // Establish eagerly so immediate errors surface to the caller.
            let (mut current, mut inner) = establish_watch(&nodes, &start, &store, from).await?;
            let (tx, rx) = mpsc::unbounded_channel();
            let store_id = store.clone();
            tokio::spawn(async move {
                let mut last_seen = from;
                loop {
                    match inner.recv().await {
                        Some(event) => {
                            if event.revision <= last_seen {
                                continue; // resubscription overlap
                            }
                            if event.revision.0 > last_seen.0 + 1 {
                                // Gap on the live stream: resume from the
                                // cursor rather than deliver a hole.
                                match establish_watch(
                                    &nodes,
                                    &rotation(nodes.len(), current),
                                    &store_id,
                                    last_seen,
                                )
                                .await
                                {
                                    Ok((node, stream)) => {
                                        current = node;
                                        inner = stream;
                                        continue;
                                    }
                                    Err(_) => break,
                                }
                            }
                            last_seen = event.revision;
                            if tx.send(event).is_err() {
                                return; // consumer gone
                            }
                        }
                        None => {
                            // This node's resilient watch gave up (node
                            // dead): resume on the next member.
                            match establish_watch(
                                &nodes,
                                &rotation(nodes.len(), current),
                                &store_id,
                                last_seen,
                            )
                            .await
                            {
                                Ok((node, stream)) => {
                                    current = node;
                                    inner = stream;
                                }
                                Err(_) => break,
                            }
                        }
                    }
                }
            });
            Ok(rx)
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let schema = schema.clone();
                Box::pin(async move { node.register_schema(schema).await })
            })
            .await
        })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, schema) = (store.clone(), schema.clone());
                Box::pin(async move { node.bind_schema(store, schema).await })
            })
            .await
        })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let schema = schema.clone();
                Box::pin(async move { node.get_schema(schema).await })
            })
            .await
        })
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (name, inputs, assignments) =
                    (name.clone(), inputs.clone(), assignments.clone());
                Box::pin(async move { node.register_udf(name, inputs, assignments).await })
            })
            .await
        })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            let revisions = self
                .lead(|node, _| {
                    let (name, bindings) = (name.clone(), bindings.clone());
                    Box::pin(async move { node.execute_udf(name, bindings).await })
                })
                .await?;
            for (store, rev) in &revisions {
                self.note_write(store, *rev);
            }
            Ok(revisions)
        })
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            let revisions = self
                .lead(|node, _| {
                    let ops = ops.clone();
                    Box::pin(async move { node.transact(ops).await })
                })
                .await?;
            for (store, rev) in &revisions {
                self.note_write(store, *rev);
            }
            Ok(revisions)
        })
    }

    // Log stores are not replicated (ROADMAP: Object-DE first); log
    // traffic rides the leader like any single-node deployment.
    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let store = store.clone();
                Box::pin(async move { node.log_create_store(store).await })
            })
            .await
        })
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, fields) = (store.clone(), fields.clone());
                Box::pin(async move { node.log_append(store, fields).await })
            })
            .await
        })
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, batch) = (store.clone(), batch.clone());
                Box::pin(async move { node.log_append_batch(store, batch).await })
            })
            .await
        })
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let store = store.clone();
                Box::pin(async move { node.log_read(store, from).await })
            })
            .await
        })
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        Box::pin(async move {
            self.lead(|node, _| {
                let (store, query) = (store.clone(), query.clone());
                Box::pin(async move { node.log_query(store, query).await })
            })
            .await
        })
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        Box::pin(async move {
            let idx = self.leader.load(Ordering::Acquire);
            self.nodes[idx].log_tail(store, from).await
        })
    }

    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        Box::pin(async move {
            let idx = self.leader.load(Ordering::Acquire);
            self.nodes[idx].metrics().await
        })
    }
}

fn item_revision(item: &ItemResult) -> Option<Revision> {
    match item {
        ItemResult::Revision { revision } => Some(*revision),
        _ => None,
    }
}

/// Watch-node preference order: replicas first (leader last), so the
/// stream observes only replicated state.
fn watch_node_order(n: usize, leader: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).filter(|i| *i != leader).collect();
    order.push(leader);
    order
}

/// Resume order after node `current` failed: everyone else first, then
/// `current` again as the last resort.
fn rotation(n: usize, current: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).filter(|i| *i != current).collect();
    order.push(current);
    order
}

/// Try the given nodes in order until one yields a watch stream.
async fn establish_watch(
    nodes: &[Arc<ResilientClient>],
    order: &[usize],
    store: &StoreId,
    from: Revision,
) -> Result<(usize, WatchRx)> {
    let mut last: Option<Error> = None;
    for idx in order {
        match nodes[*idx].watch(store.clone(), from).await {
            Ok(rx) => return Ok((*idx, rx)),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| Error::Transport("no watchable replica".to_string())))
}

// ---------------------------------------------------------------------------
// ReplicatedExchange harness
// ---------------------------------------------------------------------------

/// One member of an in-process [`ReplicatedExchange`].
pub struct ReplicaNode {
    pub name: String,
    addr: SocketAddr,
    server: Option<ExchangeServer>,
    follower: Option<FollowerHandle>,
}

impl ReplicaNode {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's exchange server, if it is still alive.
    pub fn server(&self) -> Option<&ExchangeServer> {
        self.server.as_ref()
    }
}

/// A whole replica set in one process: a leader plus N followers with
/// their replicators and failover sentinels running — the deployment
/// harness tests, benches, and `knactorctl serve --replicas` share.
pub struct ReplicatedExchange {
    nodes: Vec<ReplicaNode>,
    subject: Subject,
}

impl ReplicatedExchange {
    /// Launch a leader (node 0) and `followers` follower nodes.
    pub async fn launch(followers: usize) -> Result<ReplicatedExchange> {
        ReplicatedExchange::launch_with(followers, None).await
    }

    /// [`ReplicatedExchange::launch`] with a [`FaultPlan`] decorating
    /// every follower's *apply path* — deterministic replication delay,
    /// loss, and duplication between leader commit and follower apply.
    pub async fn launch_with(
        followers: usize,
        apply_plan: Option<FaultPlan>,
    ) -> Result<ReplicatedExchange> {
        let total = followers + 1;
        let mut servers = Vec::with_capacity(total);
        for i in 0..total {
            let server = ExchangeServer::bind_ephemeral().await?;
            if i > 0 {
                server.repl().set_follower();
            }
            servers.push(server);
        }
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
        let subject = Subject::integrator("repl-harness");
        let mut nodes = Vec::with_capacity(total);
        for (i, server) in servers.into_iter().enumerate() {
            let name = format!("node-{i}");
            let follower = if i > 0 {
                let loopback: Arc<dyn ExchangeApi> = Arc::new(
                    LoopbackClient::new(
                        Arc::clone(&server.object),
                        Arc::clone(&server.log),
                        Subject::integrator(&name),
                    )
                    .with_data_dir(server.data_dir()),
                );
                let apply = match &apply_plan {
                    Some(plan) => {
                        let mut plan = *plan;
                        // One independent deterministic stream per node.
                        plan.seed = plan.seed.wrapping_add(i as u64);
                        Arc::new(FaultApi::new(loopback, plan)) as Arc<dyn ExchangeApi>
                    }
                    None => loopback,
                };
                Some(run_follower(
                    &server,
                    apply,
                    FollowerConfig {
                        name: name.clone(),
                        node_index: i,
                        peers: addrs.clone(),
                        initial_leader: 0,
                    },
                ))
            } else {
                None
            };
            nodes.push(ReplicaNode {
                name,
                addr: addrs[i],
                server: Some(server),
                follower,
            });
        }
        Ok(ReplicatedExchange { nodes, subject })
    }

    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    pub fn node(&self, idx: usize) -> &ReplicaNode {
        &self.nodes[idx]
    }

    /// Index of the node currently leading (in-process view).
    pub fn leader_index(&self) -> Option<usize> {
        self.nodes.iter().position(|n| {
            n.server
                .as_ref()
                .map(|s| s.repl().is_leader())
                .unwrap_or(false)
        })
    }

    /// A [`ReplicaRouter`] over the whole set.
    pub async fn router(&self, policy: RetryPolicy) -> Result<ReplicaRouter> {
        ReplicaRouter::connect(&self.addrs(), self.subject.clone(), policy).await
    }

    /// Kill the current leader (server shutdown: every connection dies,
    /// the node never comes back). Returns the dead node's index.
    pub async fn kill_leader(&mut self) -> usize {
        let idx = self.leader_index().expect("a live leader to kill");
        if let Some(server) = self.nodes[idx].server.take() {
            server.shutdown().await;
        }
        if let Some(follower) = self.nodes[idx].follower.take() {
            follower.stop().await;
        }
        idx
    }

    /// Wait until some surviving node has promoted itself.
    pub async fn await_leader(&self, timeout: Duration) -> Result<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(idx) = self.leader_index() {
                return Ok(idx);
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout("no node promoted itself".to_string()));
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    }

    /// Block until every *live* node's copy of `store` has applied at
    /// least `revision` (test convergence helper).
    pub async fn await_converged(
        &self,
        store: &StoreId,
        revision: Revision,
        timeout: Duration,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let caught_up = self
                .nodes
                .iter()
                .filter_map(|n| n.server.as_ref())
                .all(|s| {
                    s.object
                        .store(store)
                        .map(|st| st.revision() >= revision)
                        .unwrap_or(false)
                });
            if caught_up {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let positions: Vec<String> = self
                    .nodes
                    .iter()
                    .map(|n| match &n.server {
                        Some(s) => format!(
                            "{}={}",
                            n.name,
                            s.object.store(store).map(|st| st.revision().0).unwrap_or(0)
                        ),
                        None => format!("{}=dead", n.name),
                    })
                    .collect();
                return Err(Error::Timeout(format!(
                    "replicas not converged to {}: {}",
                    revision.0,
                    positions.join(", ")
                )));
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    }

    /// Simulate a follower crash at store granularity: drop the node's
    /// copy of `store` and re-open it from its WAL (the PR 2 recovery
    /// path truncates any torn tail). The node's replicator re-discovers
    /// the store and catches up from its recovered revision.
    pub fn crash_recover_store(&self, idx: usize, store: &StoreId) -> Result<Revision> {
        let server = self.nodes[idx]
            .server
            .as_ref()
            .ok_or_else(|| Error::Internal("node is dead".to_string()))?;
        let profile = server.object.store(store)?.profile().clone();
        server.object.drop_store(store)?;
        let reopened = server.object.create_store(store.clone(), profile)?;
        reopened.attach_repl(ReplState::new(store, server.repl().leading_flag()));
        Ok(reopened.revision())
    }

    /// Live (non-killed) node indexes.
    pub fn live_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.server.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    pub async fn shutdown(mut self) {
        for node in &mut self.nodes {
            if let Some(follower) = node.follower.take() {
                follower.stop().await;
            }
            if let Some(server) = node.server.take() {
                server.shutdown().await;
            }
        }
    }
}
