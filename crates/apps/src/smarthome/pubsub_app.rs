//! The smart home, the API-centric way (§2's second example).
//!
//! House, Motion, and Lamp compose through broker topics. Note where the
//! knowledge lives: **House's code** subscribes to Motion's topic,
//! decodes Motion's message schema, decides the brightness, and publishes
//! to Lamp's topic in Lamp's schema. Swapping the lamp vendor, renaming a
//! field, or adding an energy dashboard all mean editing and redeploying
//! House (and possibly the devices).

use crate::smarthome::lamp_kwh;
use knactor_rpc::Broker;
use knactor_types::Value;
use parking_lot::Mutex;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::watch;
use tokio::task::JoinHandle;

/// Topic names — the implicit API surface of this composition.
pub const TOPIC_MOTION: &str = "home/motion";
pub const TOPIC_LAMP: &str = "home/lamp/set";
pub const TOPIC_ENERGY: &str = "home/lamp/energy";

/// Shared observable state for assertions (each service's internal view).
#[derive(Debug, Default)]
pub struct HomeState {
    pub lamp_brightness: f64,
    pub house_motion: bool,
    pub house_energy_total: f64,
    pub lamp_commands_seen: u64,
}

/// The running Pub/Sub smart home.
pub struct PubSubHome {
    pub broker: Broker,
    pub state: Arc<Mutex<HomeState>>,
    changes: Arc<watch::Sender<()>>,
    tasks: Vec<JoinHandle<()>>,
}

/// Start the three services against a broker.
pub fn deploy(target_brightness: f64) -> PubSubHome {
    let broker = Broker::new();
    let state = Arc::new(Mutex::new(HomeState::default()));
    let (changes, _) = watch::channel(());
    let changes = Arc::new(changes);
    let mut tasks = Vec::new();

    // House: subscribes to Motion's topic, publishes to Lamp's topic —
    // composition logic embedded in the service.
    {
        let mut motion_rx = broker.subscribe(TOPIC_MOTION);
        let mut energy_rx = broker.subscribe(TOPIC_ENERGY);
        let broker = broker.clone();
        let state = Arc::clone(&state);
        let changes = Arc::clone(&changes);
        tasks.push(tokio::spawn(async move {
            loop {
                tokio::select! {
                    msg = motion_rx.recv() => {
                        let Some(msg) = msg else { return };
                        // Decode Motion's schema (vendor Z).
                        let triggered = msg.payload["triggered"].as_bool().unwrap_or(false);
                        state.lock().house_motion = triggered;
                        let _ = changes.send(());
                        // Encode Lamp's schema (vendor Y).
                        let brightness = if triggered { target_brightness } else { 0.0 };
                        broker.publish(TOPIC_LAMP, json!({"brightness": brightness}));
                    }
                    msg = energy_rx.recv() => {
                        let Some(msg) = msg else { return };
                        let kwh = msg.payload["kwh"].as_f64().unwrap_or(0.0);
                        state.lock().house_energy_total += kwh;
                        let _ = changes.send(());
                    }
                }
            }
        }));
    }

    // Lamp: applies brightness commands, reports energy.
    {
        let mut lamp_rx = broker.subscribe(TOPIC_LAMP);
        let broker = broker.clone();
        let state = Arc::clone(&state);
        let changes = Arc::clone(&changes);
        tasks.push(tokio::spawn(async move {
            while let Some(msg) = lamp_rx.recv().await {
                let b = msg.payload["brightness"].as_f64().unwrap_or(0.0);
                {
                    let mut s = state.lock();
                    s.lamp_brightness = b;
                    s.lamp_commands_seen += 1;
                }
                let _ = changes.send(());
                broker.publish(TOPIC_ENERGY, json!({"kwh": lamp_kwh(b)}));
            }
        }));
    }

    PubSubHome {
        broker,
        state,
        changes,
        tasks,
    }
}

impl PubSubHome {
    /// The motion device fires.
    pub fn sense_motion(&self, triggered: bool) {
        self.broker.publish(TOPIC_MOTION, motion_message(triggered));
    }

    /// Event-driven barrier: resolves once `f` holds over the shared
    /// state. Every state mutation in the service tasks publishes a
    /// change notification, so the predicate is re-checked exactly when
    /// something changed — no sleep/poll cadence, no missed wakeups
    /// (the subscription is registered before the first check).
    pub async fn wait_for(
        &self,
        timeout: Duration,
        f: impl Fn(&HomeState) -> bool,
    ) -> Result<(), String> {
        let mut rx = self.changes.subscribe();
        let settled = async {
            loop {
                if f(&self.state.lock()) {
                    return;
                }
                if rx.changed().await.is_err() {
                    // All services gone; give the predicate one last look.
                    assert!(f(&self.state.lock()), "home shut down before condition");
                    return;
                }
            }
        };
        tokio::time::timeout(timeout, settled).await.map_err(|_| {
            format!(
                "condition not met within {timeout:?}: {:?}",
                self.state.lock()
            )
        })
    }

    pub async fn shutdown(self) {
        for t in &self.tasks {
            t.abort();
        }
        for t in self.tasks {
            let _ = t.await;
        }
    }
}

/// Motion's message schema (vendor Z's Protobuf, in JSON form here).
pub fn motion_message(triggered: bool) -> Value {
    json!({"triggered": triggered, "sensor": "ring-v2"})
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_secs(5);

    #[tokio::test]
    async fn motion_drives_lamp_through_broker() {
        let home = deploy(8.0);
        home.sense_motion(true);
        home.wait_for(WAIT, |s| s.lamp_brightness == 8.0 && s.house_motion)
            .await
            .unwrap();
        home.sense_motion(false);
        home.wait_for(WAIT, |s| s.lamp_brightness == 0.0)
            .await
            .unwrap();
        home.shutdown().await;
    }

    #[tokio::test]
    async fn energy_accumulates_in_house() {
        let home = deploy(4.0);
        home.sense_motion(true);
        home.wait_for(WAIT, |s| s.house_energy_total > 0.0)
            .await
            .unwrap();
        home.shutdown().await;
    }
}
