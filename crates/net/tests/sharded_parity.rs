//! Transport parity for the sharded exchange: the same batch workload
//! must produce identical per-item outcomes on a 4-shard **loopback**
//! router and a 4-shard **routed-TCP** router with the same topology —
//! and the same outcome *shape* (typed error codes in the same slots) as
//! the single-node parity suite pins down.

use knactor_net::proto::ProfileSpec;
use knactor_net::{ExchangeApi, ShardRouter, ShardedExchange};
use knactor_rbac::Subject;
use knactor_store::ItemResult;
use knactor_types::{Revision, StoreId};
use serde_json::json;

#[path = "util/batch_workload.rs"]
mod batch_workload;
use batch_workload::{batch_script, outcome_tags};

/// Loopback ≡ routed-TCP, item by item, at 4 shards. Both routers share
/// one `ShardMap::uniform(4)`, so per-item (shard-local) revisions must
/// match exactly, not just error codes.
#[tokio::test]
async fn batch_ops_parity_sharded_loopback_vs_routed_tcp() {
    let (_objects, _logs, local_router) = ShardRouter::in_process(4, Subject::operator("parity"));
    let local = batch_script(&local_router).await;

    let exchange = ShardedExchange::launch(4).await.unwrap();
    let remote_router = exchange.client(Subject::operator("parity")).await.unwrap();
    let remote = batch_script(&remote_router).await;

    assert_eq!(
        local, remote,
        "sharded loopback and routed TCP must produce identical batch outcomes"
    );

    // The outcome shape is the one the single-node suite pins: same typed
    // errors in the same slots, commits and reads where commits and reads
    // belong. (Revision numbers are shard-local, hence compared via the
    // full equality above, not against the single-node 1..6 sequence.)
    assert_eq!(
        outcome_tags(&local[0]),
        [
            "rev",
            "rev",
            "err:already_exists",
            "err:not_found",
            "err:conflict",
            "rev"
        ]
    );
    assert_eq!(outcome_tags(&local[1]), ["rev", "rev", "err:not_found"]);
    assert_eq!(outcome_tags(&local[2]), ["obj:a", "err:not_found", "obj:c"]);
    assert_eq!(outcome_tags(&local[3]), ["rev", "err:not_found"]);
    // The merge-patch really merged, through the router.
    let ItemResult::Object { object } = &local[2][0] else {
        panic!("expected object for a");
    };
    assert_eq!(*object.value, json!({"v": 1, "extra": true}));

    // Virtual revision accounting: the script commits 6 mutations
    // (a, b, patch-b, merge-a, upsert-c, delete-b), so the routed list
    // revision — the sum of shard revisions — must be exactly 6.
    let (_, revision) = remote_router
        .list(StoreId::new("parity/batch"))
        .await
        .unwrap();
    assert_eq!(revision, Revision(6));

    exchange.shutdown().await;
}

/// The same workload at 1 shard must be bit-identical to the single-node
/// loopback — a 1-shard router is just a pass-through.
#[tokio::test]
async fn one_shard_router_is_a_passthrough() {
    let (_object, _log, plain) = knactor_net::loopback::in_process(Subject::operator("parity"));
    let baseline = batch_script(&plain).await;

    let (_objects, _logs, router) = ShardRouter::in_process(1, Subject::operator("parity"));
    let routed = batch_script(&router).await;

    assert_eq!(baseline, routed);
}

/// A watch established through the routed-TCP 4-shard exchange delivers
/// dense virtual revisions 1..=N for N commits.
#[tokio::test]
async fn routed_tcp_watch_is_dense() {
    let exchange = ShardedExchange::launch(4).await.unwrap();
    let router = exchange.client(Subject::operator("watcher")).await.unwrap();
    let store = StoreId::new("w/state");
    router
        .create_store(store.clone(), ProfileSpec::Instant)
        .await
        .unwrap();
    let mut sub = router.watch(store.clone(), Revision::ZERO).await.unwrap();
    const WRITES: u64 = 24;
    for i in 0..WRITES {
        router
            .create(
                store.clone(),
                knactor_types::ObjectKey::new(format!("k-{i}")),
                json!({"n": i}),
            )
            .await
            .unwrap();
    }
    let mut revisions = Vec::new();
    for _ in 0..WRITES {
        revisions.push(sub.recv().await.unwrap().revision.0);
    }
    assert_eq!(revisions, (1..=WRITES).collect::<Vec<_>>());
    exchange.shutdown().await;
}
