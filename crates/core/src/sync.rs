//! The **Sync** integrator: dataflow between Log stores (§3.2).
//!
//! Sync tails a source log store and runs a dataflow pipeline
//! ([`knactor_logstore::Query`], shipped as a serializable
//! [`QuerySpec`]) over the records, delivering results to either
//!
//! * another **log store** (streaming mode — the Fig. 4 example renames
//!   the Motion knactor's `triggered` field to `motion` before loading it
//!   into the House knactor's log store), or
//! * an **object-store field** (snapshot mode — e.g. the House's running
//!   `energy` total, recomputed over the source log on every new record).
//!
//! Like Cast, a running Sync is reconfigurable through its controller
//! without touching any knactor.

use crate::telemetry::TraceCollector;
use knactor_net::proto::QuerySpec;
use knactor_net::ExchangeApi;
use knactor_types::{Error, FieldPath, ObjectKey, Result, StoreId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

/// Where pipeline output goes.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncDest {
    /// Append each output row to a log store.
    Log(StoreId),
    /// Write into a field of an object (upserted). With one output row
    /// holding one field, the field's value is written; otherwise the
    /// whole row set is written as an array.
    ObjectField {
        store: StoreId,
        key: ObjectKey,
        field: FieldPath,
    },
}

/// How the pipeline runs relative to the source log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Each new record flows through the pipeline alone (stateless
    /// per-record operators: filter, rename, project, derive).
    Stream,
    /// Each new record triggers a re-query over the whole retained log
    /// (aggregations: running totals, averages).
    Snapshot,
}

/// Configuration of a Sync instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncConfig {
    pub name: String,
    pub source: StoreId,
    pub dest: SyncDest,
    pub query: QuerySpec,
    pub mode: SyncMode,
    /// Batch threshold: how many already-tailed records one loop turn
    /// may fold into a single delivery. Stream mode still runs the
    /// pipeline per record (aggregation semantics are per-record) but
    /// ships all produced rows in one batched append; Snapshot mode
    /// collapses the batch into a single re-query (earlier refreshes
    /// are subsumed by the last). `0`/`1` disable batching. The cost
    /// model suggests a value from the observed record rate.
    pub max_batch: usize,
}

impl SyncConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        // Compile once to surface expression errors before running.
        self.query.compile()?;
        if let SyncDest::Log(dest) = &self.dest {
            if *dest == self.source {
                return Err(Error::Dxg(format!(
                    "sync {}: destination equals source ({}) — would loop",
                    self.name, dest
                )));
            }
        }
        Ok(())
    }
}

enum Command {
    Reconfigure(SyncConfig, oneshot::Sender<Result<()>>),
    Drain(oneshot::Sender<()>),
    Shutdown(oneshot::Sender<()>),
}

/// Handle to a running Sync task.
pub struct SyncController {
    cmd_tx: mpsc::UnboundedSender<Command>,
    task: JoinHandle<()>,
    processed: Arc<AtomicU64>,
    tail_pos: Arc<AtomicU64>,
}

impl SyncController {
    pub async fn reconfigure(&self, config: SyncConfig) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Reconfigure(config, tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)?
    }

    /// Finish the work already queued: every record the tail has
    /// delivered by the time the drain is handled is processed before
    /// the call returns. Records appended afterwards still flow; drain
    /// is a barrier, not a stop.
    pub async fn drain(&self) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Drain(tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)
    }

    pub async fn shutdown(self) {
        let (tx, rx) = oneshot::channel();
        if self.cmd_tx.send(Command::Shutdown(tx)).is_ok() {
            let _ = rx.await;
        }
        let _ = self.task.await;
    }

    /// Records processed so far (test synchronization).
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Highest source sequence processed. Survives reconfiguration (the
    /// tail resumes here, so nothing is re-delivered) and is the value
    /// composer tests assert to prove an edge was not disturbed.
    pub fn tail_position(&self) -> u64 {
        self.tail_pos.load(Ordering::Relaxed)
    }

    /// True while the integrator task is alive and accepting commands.
    pub fn is_running(&self) -> bool {
        !self.task.is_finished() && !self.cmd_tx.is_closed()
    }
}

/// The Sync integrator factory.
pub struct Sync {
    api: Arc<dyn ExchangeApi>,
    traces: TraceCollector,
}

impl Sync {
    pub fn new(api: Arc<dyn ExchangeApi>) -> Sync {
        Sync {
            api,
            traces: TraceCollector::new(),
        }
    }

    pub fn with_traces(mut self, traces: TraceCollector) -> Sync {
        self.traces = traces;
        self
    }

    pub fn traces(&self) -> &TraceCollector {
        &self.traces
    }

    /// Run the pipeline once over the full source log and deliver the
    /// results (tests, CLI, batch back-fills).
    pub async fn run_once(&self, config: &SyncConfig) -> Result<usize> {
        config.validate()?;
        let rows = self
            .api
            .log_query(config.source.clone(), config.query.clone())
            .await?;
        let n = rows.len();
        deliver(&*self.api, config, rows).await?;
        Ok(n)
    }

    /// Spawn the continuous integrator.
    pub async fn spawn(self, config: SyncConfig) -> Result<SyncController> {
        config.validate()?;
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let processed = Arc::new(AtomicU64::new(0));
        let tail_pos = Arc::new(AtomicU64::new(0));
        let task = tokio::spawn(run_loop(
            self.api,
            self.traces,
            config,
            cmd_rx,
            Arc::clone(&processed),
            Arc::clone(&tail_pos),
        ));
        Ok(SyncController {
            cmd_tx,
            task,
            processed,
            tail_pos,
        })
    }
}

async fn run_loop(
    api: Arc<dyn ExchangeApi>,
    traces: TraceCollector,
    mut config: SyncConfig,
    mut cmd_rx: mpsc::UnboundedReceiver<Command>,
    processed: Arc<AtomicU64>,
    tail_pos: Arc<AtomicU64>,
) {
    // Resume point: highest source sequence already processed. Survives
    // re-tailing (reconfigure, transport loss) so records are not
    // re-delivered to the destination; resets when the source changes.
    let mut last_seq: u64 = 0;
    let mut tail_source = config.source.clone();
    'outer: loop {
        if config.source != tail_source {
            tail_source = config.source.clone();
            last_seq = 0;
            tail_pos.store(0, Ordering::Relaxed);
        }
        let mut tail = match api.log_tail(config.source.clone(), last_seq).await {
            Ok(t) => t,
            Err(_) => {
                // Source unavailable — retry with backoff while still
                // answering commands.
                tokio::select! {
                    cmd = cmd_rx.recv() => {
                        match cmd {
                            Some(Command::Reconfigure(new, ack)) => {
                                match new.validate() {
                                    Ok(()) => {
                                        config = new;
                                        let _ = ack.send(Ok(()));
                                    }
                                    Err(e) => { let _ = ack.send(Err(e)); }
                                }
                            }
                            // Nothing tailed → nothing queued to finish.
                            Some(Command::Drain(ack)) => { let _ = ack.send(()); }
                            Some(Command::Shutdown(ack)) => {
                                let _ = ack.send(());
                                return;
                            }
                            None => return,
                        }
                    }
                    _ = tokio::time::sleep(std::time::Duration::from_millis(200)) => {}
                }
                continue 'outer;
            }
        };
        loop {
            tokio::select! {
                cmd = cmd_rx.recv() => {
                    match cmd {
                        Some(Command::Reconfigure(new, ack)) => {
                            match new.validate() {
                                Ok(()) => {
                                    config = new;
                                    let _ = ack.send(Ok(()));
                                    continue 'outer;
                                }
                                Err(e) => { let _ = ack.send(Err(e)); }
                            }
                        }
                        Some(Command::Drain(ack)) => {
                            // Barrier: everything the tail already
                            // delivered is processed before the ack.
                            let mut events = Vec::new();
                            while let Ok(event) = tail.try_recv() {
                                events.push(event);
                            }
                            process_batch(
                                &api, &traces, &config, &mut last_seq,
                                &processed, &tail_pos, events,
                            )
                            .await;
                            let _ = ack.send(());
                        }
                        Some(Command::Shutdown(ack)) => {
                            let _ = ack.send(());
                            return;
                        }
                        None => return,
                    }
                }
                event = tail.recv() => {
                    let Some(event) = event else { return };
                    // Fold up to `max_batch` already-tailed events into
                    // one delivery (see `SyncConfig::max_batch`).
                    let mut events = vec![event];
                    while events.len() < config.max_batch.max(1) {
                        let Ok(e) = tail.try_recv() else { break };
                        events.push(e);
                    }
                    process_batch(
                        &api, &traces, &config, &mut last_seq,
                        &processed, &tail_pos, events,
                    )
                    .await;
                }
            }
        }
    }
}

/// Handle one tail event: records run the pipeline; a typed lag notice
/// (source retention outran the tail) jumps the resume point forward so
/// the post-lag records flow without being mistaken for replays.
/// Run a batch of tailed events through the configured pipeline: lag
/// notices jump the resume point, replayed records are deduplicated
/// against it, and the fresh remainder delivers as **one** destination
/// operation. Stream mode still runs the pipeline per record (any
/// per-record aggregation keeps its semantics) but ships all produced
/// rows in a single batched append; Snapshot mode collapses the batch
/// into one re-query — every earlier refresh is subsumed by the last.
async fn process_batch(
    api: &Arc<dyn ExchangeApi>,
    traces: &TraceCollector,
    config: &SyncConfig,
    last_seq: &mut u64,
    processed: &AtomicU64,
    tail_pos: &AtomicU64,
    events: Vec<knactor_logstore::TailEvent>,
) {
    let mut fresh: Vec<knactor_logstore::LogRecord> = Vec::new();
    for event in events {
        match event {
            knactor_logstore::TailEvent::Record(record) => {
                if record.seq <= *last_seq {
                    // Replayed by a resumed tail; already processed.
                    continue;
                }
                *last_seq = record.seq;
                tail_pos.store(record.seq, Ordering::Relaxed);
                fresh.push(record);
            }
            knactor_logstore::TailEvent::Lagged { resume_from, .. } => {
                if resume_from > *last_seq + 1 {
                    *last_seq = resume_from - 1;
                    tail_pos.store(*last_seq, Ordering::Relaxed);
                }
            }
        }
    }
    if fresh.is_empty() {
        return;
    }
    let n = fresh.len();
    let component = format!("sync:{}", config.name);
    let start = Instant::now();
    let result = match config.mode {
        SyncMode::Stream => match config.query.compile() {
            Ok(q) => {
                let mut rows = Vec::new();
                for record in &fresh {
                    // Per-record pipeline errors skip that record only,
                    // exactly as unbatched processing did.
                    if let Ok(mut out) = q.run(std::iter::once(record.fields.clone())) {
                        rows.append(&mut out);
                    }
                }
                deliver(&**api, config, rows).await
            }
            Err(e) => Err(e),
        },
        SyncMode::Snapshot => {
            match api
                .log_query(config.source.clone(), config.query.clone())
                .await
            {
                Ok(rows) => deliver(&**api, config, rows).await,
                Err(e) => Err(e),
            }
        }
    };
    let elapsed = start.elapsed();
    // Attribute the batch cost evenly so per-record stage sums stay
    // comparable across batch sizes.
    let share = elapsed / n as u32;
    for record in &fresh {
        let trace_id = format!("{}#{}", config.source, record.seq);
        traces.record(&trace_id, &component, "process-record", share);
        crate::metrics::observe_stage(&component, "process-record", share);
        crate::metrics::inc_activation(&component);
    }
    if n > 1 {
        crate::metrics::global()
            .counter(
                "knactor_sync_batched_records_total",
                &[("integrator", &component)],
            )
            .add(n as u64);
    }
    // Errors are per-batch; keep tailing.
    let _ = result;
    processed.fetch_add(n as u64, Ordering::Relaxed);
}

async fn deliver(api: &dyn ExchangeApi, config: &SyncConfig, rows: Vec<Value>) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    match &config.dest {
        SyncDest::Log(dest) => {
            api.log_append_batch(dest.clone(), rows).await?;
            Ok(())
        }
        SyncDest::ObjectField { store, key, field } => {
            // One row → write the row (or its single field's value when
            // the pipeline produced a single-column aggregate).
            let value = if rows.len() == 1 {
                let row = rows.into_iter().next().expect("len checked");
                match &row {
                    Value::Object(map) if map.len() == 1 => {
                        map.values().next().expect("len checked").clone()
                    }
                    _ => row,
                }
            } else {
                Value::Array(rows)
            };
            let mut patch = Value::Object(serde_json::Map::new());
            knactor_types::value::set_path(&mut patch, field, value)?;
            // Through the batched wire op so snapshot refreshes share the
            // exchange's group-commit path with Cast's writes.
            let item = knactor_store::PutItem {
                key: key.clone(),
                value: patch,
                upsert: true,
            };
            api.batch_put(store.clone(), vec![item])
                .await?
                .into_iter()
                .next()
                .ok_or_else(|| Error::Internal("empty batch reply".to_string()))?
                .into_revision()?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::{OpSpec, ProfileSpec};
    use knactor_rbac::Subject;
    use serde_json::json;
    use std::time::Duration;

    async fn wait_until(
        mut cond: impl FnMut() -> std::pin::Pin<Box<dyn std::future::Future<Output = bool> + 'static>>,
    ) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if cond().await {
                return;
            }
            assert!(Instant::now() < deadline, "condition not met in time");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    }

    #[tokio::test]
    async fn stream_renames_triggered_to_motion() {
        // Fig. 4: Motion's log → (rename) → House's log.
        let (_, _, client) = in_process(Subject::integrator("sync"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("motion/telemetry"))
            .await
            .unwrap();
        api.log_create_store(StoreId::new("house/telemetry"))
            .await
            .unwrap();

        let config = SyncConfig {
            name: "motion-to-house".to_string(),
            source: StoreId::new("motion/telemetry"),
            dest: SyncDest::Log(StoreId::new("house/telemetry")),
            query: QuerySpec {
                ops: vec![
                    OpSpec::Filter {
                        expr: "this.triggered == true".into(),
                    },
                    OpSpec::Rename {
                        from: "triggered".into(),
                        to: "motion".into(),
                    },
                ],
            },
            mode: SyncMode::Stream,
            max_batch: 1,
        };
        let controller = Sync::new(Arc::clone(&api)).spawn(config).await.unwrap();

        api.log_append(StoreId::new("motion/telemetry"), json!({"triggered": true}))
            .await
            .unwrap();
        api.log_append(
            StoreId::new("motion/telemetry"),
            json!({"triggered": false}),
        )
        .await
        .unwrap();

        wait_until(|| {
            let api = Arc::clone(&api);
            Box::pin(async move {
                api.log_read(StoreId::new("house/telemetry"), 0)
                    .await
                    .map(|r| r.len() == 1)
                    .unwrap_or(false)
            })
        })
        .await;
        let records = api
            .log_read(StoreId::new("house/telemetry"), 0)
            .await
            .unwrap();
        assert_eq!(records[0].fields, json!({"motion": true}));
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn snapshot_maintains_energy_total_in_object_store() {
        let (_, _, client) = in_process(Subject::integrator("sync"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("lamp/telemetry"))
            .await
            .unwrap();
        api.create_store(StoreId::new("house/state"), ProfileSpec::Instant)
            .await
            .unwrap();

        let config = SyncConfig {
            name: "energy".to_string(),
            source: StoreId::new("lamp/telemetry"),
            dest: SyncDest::ObjectField {
                store: StoreId::new("house/state"),
                key: ObjectKey::new("house"),
                field: FieldPath::parse("energy").unwrap(),
            },
            query: QuerySpec {
                ops: vec![OpSpec::Aggregate {
                    group_by: None,
                    agg: "sum".into(),
                    field: Some("kwh".into()),
                    as_field: "total".into(),
                }],
            },
            mode: SyncMode::Snapshot,
            max_batch: 1,
        };
        let controller = Sync::new(Arc::clone(&api)).spawn(config).await.unwrap();

        for kwh in [0.2, 0.3, 0.5] {
            api.log_append(StoreId::new("lamp/telemetry"), json!({"kwh": kwh}))
                .await
                .unwrap();
        }
        wait_until(|| {
            let api = Arc::clone(&api);
            Box::pin(async move {
                api.get(StoreId::new("house/state"), ObjectKey::new("house"))
                    .await
                    .map(|o| {
                        o.value["energy"]
                            .as_f64()
                            .map(|v| (v - 1.0).abs() < 1e-9)
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
            })
        })
        .await;
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn run_once_batch() {
        let (_, _, client) = in_process(Subject::integrator("sync"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("a/log")).await.unwrap();
        api.log_create_store(StoreId::new("b/log")).await.unwrap();
        for i in 0..5 {
            api.log_append(StoreId::new("a/log"), json!({"i": i}))
                .await
                .unwrap();
        }
        let config = SyncConfig {
            name: "batch".to_string(),
            source: StoreId::new("a/log"),
            dest: SyncDest::Log(StoreId::new("b/log")),
            query: QuerySpec {
                ops: vec![OpSpec::Filter {
                    expr: "this.i % 2 == 0".into(),
                }],
            },
            mode: SyncMode::Stream,
            max_batch: 1,
        };
        let n = Sync::new(Arc::clone(&api)).run_once(&config).await.unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            api.log_read(StoreId::new("b/log"), 0).await.unwrap().len(),
            3
        );
    }

    #[tokio::test]
    async fn self_loop_rejected() {
        let (_, _, client) = in_process(Subject::integrator("sync"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("a/log")).await.unwrap();
        let config = SyncConfig {
            name: "loop".to_string(),
            source: StoreId::new("a/log"),
            dest: SyncDest::Log(StoreId::new("a/log")),
            query: QuerySpec::default(),
            mode: SyncMode::Stream,
            max_batch: 1,
        };
        assert!(matches!(
            Sync::new(api).spawn(config).await,
            Err(Error::Dxg(_))
        ));
    }

    #[tokio::test]
    async fn reconfigure_swaps_pipeline() {
        let (_, _, client) = in_process(Subject::integrator("sync"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store(StoreId::new("src/log")).await.unwrap();
        api.log_create_store(StoreId::new("dst/log")).await.unwrap();

        let pass_all = SyncConfig {
            name: "r".to_string(),
            source: StoreId::new("src/log"),
            dest: SyncDest::Log(StoreId::new("dst/log")),
            query: QuerySpec::default(),
            mode: SyncMode::Stream,
            max_batch: 1,
        };
        let controller = Sync::new(Arc::clone(&api))
            .spawn(pass_all.clone())
            .await
            .unwrap();
        api.log_append(StoreId::new("src/log"), json!({"n": 1}))
            .await
            .unwrap();
        wait_until(|| {
            let api = Arc::clone(&api);
            Box::pin(async move {
                api.log_read(StoreId::new("dst/log"), 0)
                    .await
                    .map(|r| r.len() == 1)
                    .unwrap_or(false)
            })
        })
        .await;

        // New pipeline drops everything below 10. Reconfigure resumes the
        // tail from the last processed sequence, so records handled under
        // the old pipeline are not re-delivered to the destination.
        let filtered = SyncConfig {
            query: QuerySpec {
                ops: vec![OpSpec::Filter {
                    expr: "this.n >= 10".into(),
                }],
            },
            ..pass_all
        };
        controller.reconfigure(filtered).await.unwrap();
        api.log_append(StoreId::new("src/log"), json!({"n": 5}))
            .await
            .unwrap();
        api.log_append(StoreId::new("src/log"), json!({"n": 50}))
            .await
            .unwrap();
        wait_until(|| {
            let api = Arc::clone(&api);
            Box::pin(async move {
                api.log_read(StoreId::new("dst/log"), 0)
                    .await
                    .map(|r| r.iter().any(|rec| rec.fields == json!({"n": 50})))
                    .unwrap_or(false)
            })
        })
        .await;
        let records = api.log_read(StoreId::new("dst/log"), 0).await.unwrap();
        assert!(
            !records.iter().any(|r| r.fields == json!({"n": 5})),
            "filtered record leaked: {records:?}"
        );
        controller.shutdown().await;
    }
}
