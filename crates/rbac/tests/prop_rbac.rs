//! Property tests for access-control invariants.

use knactor_rbac::{
    AccessContext, AccessController, Condition, FieldRule, Role, RoleBinding, Rule, Subject, Verb,
};
use knactor_types::{FieldPath, StoreId};
use proptest::prelude::*;

fn any_verb() -> impl Strategy<Value = Verb> {
    prop_oneof![
        Just(Verb::Get),
        Just(Verb::List),
        Just(Verb::Watch),
        Just(Verb::Create),
        Just(Verb::Update),
        Just(Verb::Delete),
        Just(Verb::Execute),
    ]
}

proptest! {
    /// Deny-by-default: with no binding for the subject, everything is
    /// denied under enforcement — whatever the verb, store, or time.
    #[test]
    fn deny_by_default(verb in any_verb(), store in "[a-z]{1,8}/[a-z]{1,8}", minute in 0u16..1440) {
        let mut ac = AccessController::enforcing();
        // Roles exist but are bound to someone else.
        ac.add_role(Role::full_access("other", "*"));
        ac.bind(RoleBinding::new(Subject::operator("someone-else"), "other"));
        let d = ac.check(
            &Subject::integrator("me"),
            verb,
            &StoreId::new(store),
            &AccessContext { minute_of_day: minute },
        );
        prop_assert!(!d.allowed());
    }

    /// A full-access binding allows exactly the stores its pattern covers.
    #[test]
    fn pattern_scoping(store in "[a-z]{1,8}", suffix in "[a-z]{1,8}", verb in any_verb()) {
        let mut ac = AccessController::enforcing();
        ac.add_role(Role::full_access("r", format!("{}/*", store)));
        ac.bind(RoleBinding::new(Subject::reconciler("s"), "r"));
        let sub = Subject::reconciler("s");
        let ctx = AccessContext::default();
        let covered = StoreId::new(format!("{}/{}", store, suffix));
        let uncovered = StoreId::new(format!("zz{}x/{}", store, suffix));
        let allowed_covered = ac.check(&sub, verb, &covered, &ctx).allowed();
        let allowed_uncovered = ac.check(&sub, verb, &uncovered, &ctx).allowed();
        prop_assert!(allowed_covered);
        prop_assert!(!allowed_uncovered);
    }

    /// Window conditions: WithinMinutes and OutsideMinutes are exact
    /// complements at every minute of the day.
    #[test]
    fn window_complement(start in 0u16..1440, end in 0u16..1440, now in 0u16..1440) {
        let ctx = AccessContext { minute_of_day: now };
        let within = Condition::WithinMinutes { start, end }.holds(&ctx);
        let outside = Condition::OutsideMinutes { start, end }.holds(&ctx);
        prop_assert_ne!(within, outside);
    }

    /// Field rules never widen: a path denied at resource level stays
    /// denied at field level, for all field rules.
    #[test]
    fn field_rules_never_widen(
        allow in proptest::collection::vec("[a-z]{1,5}", 0..3),
        deny in proptest::collection::vec("[a-z]{1,5}", 0..3),
        path in "[a-z]{1,5}(\\.[a-z]{1,5}){0,2}",
    ) {
        let mut ac = AccessController::enforcing();
        ac.add_role(Role::new("r").rule(
            Rule::on("s/x")
                .verbs([Verb::Get])
                .fields(FieldRule::allow_paths(allow).deny_paths(deny)),
        ));
        ac.bind(RoleBinding::new(Subject::integrator("i"), "r"));
        let sub = Subject::integrator("i");
        let ctx = AccessContext::default();
        let fp = FieldPath::parse(&path).unwrap();
        // Update was never granted: field check must deny regardless of
        // field rules.
        prop_assert!(!ac.check_field(&sub, Verb::Update, &StoreId::new("s/x"), &fp, &ctx).allowed());
        // And on an unmentioned store, even Get is denied.
        prop_assert!(!ac.check_field(&sub, Verb::Get, &StoreId::new("other/x"), &fp, &ctx).allowed());
    }

    /// Redaction is a projection: every field surviving redaction was
    /// individually readable, and redacting twice equals redacting once.
    #[test]
    fn redaction_projection(
        deny in proptest::collection::vec("[a-z]{1,4}", 0..3),
        keys in proptest::collection::btree_set("[a-z]{1,4}", 1..6),
    ) {
        let mut ac = AccessController::enforcing();
        ac.add_role(Role::new("r").rule(
            Rule::on("s/x")
                .verbs([Verb::Get])
                .fields(FieldRule::default().deny_paths(deny)),
        ));
        ac.bind(RoleBinding::new(Subject::integrator("i"), "r"));
        let sub = Subject::integrator("i");
        let ctx = AccessContext::default();
        let store = StoreId::new("s/x");

        let mut obj = serde_json::Map::new();
        for k in &keys {
            obj.insert(k.clone(), serde_json::json!(1));
        }
        let value = serde_json::Value::Object(obj);

        let once = ac.redact(&sub, &store, &value, &ctx).unwrap();
        for k in once.as_object().unwrap().keys() {
            let fp = FieldPath::parse(k).unwrap();
            prop_assert!(
                ac.check_field(&sub, Verb::Get, &store, &fp, &ctx).allowed(),
                "redaction leaked denied field {k}"
            );
        }
        let twice = ac.redact(&sub, &store, &once, &ctx).unwrap();
        prop_assert_eq!(once, twice);
    }
}
