//! §2 "Problem 2" statistics: how scattered is the composition logic?
//!
//! The paper counted 15 API-handling methods scattered across 11 services
//! in the web app it studied (and 36 across 14 in a social-network app).
//! This harness produces the equivalent numbers for *this* repository's
//! API-centric retail app, and contrasts them with the Knactor version,
//! where the composition logic is one DXG file.
//!
//! Counting method: scan the API-centric sources for
//!
//! * stub client methods (`pub async fn` inside `stubs/`) — the
//!   invocation surface each consumer vendors in,
//! * RPC invocation sites (`.call(` / typed stub calls) in service code,
//! * broker topic interactions (`publish(` / `subscribe(`) in the
//!   Pub/Sub smart home,
//!
//! versus, for Knactor, the assignments of the DXG spec (one file).

use std::path::PathBuf;

/// One scanned location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCount {
    pub file: String,
    pub sites: usize,
}

/// Aggregate scatter statistics for one composition style.
#[derive(Debug, Clone)]
pub struct ScatterStats {
    pub label: String,
    pub files: Vec<SiteCount>,
    pub total_sites: usize,
}

fn apps_root() -> PathBuf {
    // knactor-apps is a sibling crate.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .join("apps")
}

fn count_occurrences(text: &str, needles: &[&str]) -> usize {
    text.lines()
        .filter(|l| {
            let t = l.trim();
            !t.starts_with("//") && !t.starts_with('#') && needles.iter().any(|n| t.contains(n))
        })
        .count()
}

/// Count composition sites in the API-centric retail + smart-home code.
pub fn api_centric() -> std::io::Result<ScatterStats> {
    let mut files = Vec::new();
    // Stub modules: every public client method is composition surface the
    // consumer owns.
    for stub in [
        "shipping_v1.rs",
        "shipping_v2.rs",
        "payment_v1.rs",
        "currency_v1.rs",
    ] {
        let path = apps_root().join("src/retail/stubs").join(stub);
        let text = std::fs::read_to_string(&path)?;
        let sites = count_occurrences(&text, &["pub async fn"]);
        files.push(SiteCount {
            file: format!("retail/stubs/{stub}"),
            sites,
        });
    }
    // Checkout's composition code: typed stub invocations.
    let rpc_app = std::fs::read_to_string(apps_root().join("src/retail/rpc_app.rs"))?;
    files.push(SiteCount {
        file: "retail/rpc_app.rs".to_string(),
        sites: count_occurrences(
            &rpc_app,
            &[
                ".charge(",
                ".get_quote(",
                ".ship_order(",
                ".convert(",
                "server.register(",
            ],
        ),
    });
    // Smart home over the broker.
    let pubsub = std::fs::read_to_string(apps_root().join("src/smarthome/pubsub_app.rs"))?;
    files.push(SiteCount {
        file: "smarthome/pubsub_app.rs".to_string(),
        sites: count_occurrences(&pubsub, &[".publish(", ".subscribe("]),
    });
    let total = files.iter().map(|f| f.sites).sum();
    Ok(ScatterStats {
        label: "API-centric".to_string(),
        files,
        total_sites: total,
    })
}

/// Count composition sites in the Knactor version: DXG assignments.
pub fn knactor() -> std::io::Result<ScatterStats> {
    let mut files = Vec::new();
    for (file, label) in [
        ("assets/retail_dxg.yaml", "retail DXG"),
        ("assets/smarthome_dxg.yaml", "smart-home DXG"),
    ] {
        let text = std::fs::read_to_string(apps_root().join(file))?;
        let dxg = knactor_dxg::Dxg::parse(&text)
            .map_err(|e| std::io::Error::other(format!("{label}: {e}")))?;
        files.push(SiteCount {
            file: file.to_string(),
            sites: dxg.assignments.len(),
        });
    }
    let total = files.iter().map(|f| f.sites).sum();
    Ok(ScatterStats {
        label: "Knactor".to_string(),
        files,
        total_sites: total,
    })
}

/// Render both sides.
pub fn render(api: &ScatterStats, kn: &ScatterStats) -> String {
    let mut out = String::new();
    for stats in [api, kn] {
        out.push_str(&format!(
            "{}: {} composition sites across {} files\n",
            stats.label,
            stats.total_sites,
            stats.files.len()
        ));
        for f in &stats.files {
            out.push_str(&format!("    {:>3}  {}\n", f.sites, f.file));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_side_is_scattered_kn_side_is_consolidated() {
        let api = api_centric().unwrap();
        let kn = knactor().unwrap();
        assert!(api.files.len() > kn.files.len(), "{api:?} vs {kn:?}");
        assert!(
            api.total_sites > 10,
            "expected double-digit API sites: {api:?}"
        );
        // Knactor: all retail composition in ONE file.
        assert_eq!(kn.files[0].sites, 8, "Fig. 6 has 8 assignments");
        let rendered = render(&api, &kn);
        assert!(rendered.contains("API-centric"));
        assert!(rendered.contains("Knactor"));
    }
}
