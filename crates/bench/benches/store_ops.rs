//! Ablation: per-operation cost of the Object exchange's engines
//! (§3.3 — "the choice of DE substantially impacts latency").
//!
//! Benchmarks the *core* (no injected profile delays, no fsync) and the
//! durable WAL variants separately, so the numbers separate algorithmic
//! cost from durability cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use knactor_store::{EngineProfile, ObjectStore};
use knactor_types::{ObjectKey, StoreId};
use serde_json::json;

fn bench_core_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_core");

    group.bench_function("create", |b| {
        b.iter_batched(
            || (ObjectStore::in_memory("b/s"), 0u64),
            |(store, mut n)| {
                n += 1;
                store
                    .create(ObjectKey::new(format!("k{n}")), json!({"v": n}))
                    .unwrap();
                (store, n)
            },
            BatchSize::SmallInput,
        )
    });

    let store = ObjectStore::in_memory("b/get");
    store
        .create(
            ObjectKey::new("k"),
            json!({"v": 1, "nested": {"a": [1, 2, 3]}}),
        )
        .unwrap();
    group.bench_function("get", |b| {
        b.iter(|| store.get(&ObjectKey::new("k")).unwrap());
    });

    let store = ObjectStore::in_memory("b/update");
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update", |b| {
        b.iter(|| {
            n += 1;
            store
                .update(&ObjectKey::new("k"), json!({"v": n}), None)
                .unwrap()
        });
    });

    let store = ObjectStore::in_memory("b/patch");
    store
        .create(ObjectKey::new("k"), json!({"v": 0, "stable": true}))
        .unwrap();
    let mut n = 0u64;
    group.bench_function("patch_changing", |b| {
        b.iter(|| {
            n += 1;
            store
                .patch(&ObjectKey::new("k"), &json!({"v": n}), false)
                .unwrap()
        });
    });

    // No-op patches are the convergence fast path for integrators.
    let store = ObjectStore::in_memory("b/noop");
    store.create(ObjectKey::new("k"), json!({"v": 1})).unwrap();
    group.bench_function("patch_noop_suppressed", |b| {
        b.iter(|| {
            store
                .patch(&ObjectKey::new("k"), &json!({"v": 1}), false)
                .unwrap()
        });
    });

    group.finish();
}

fn bench_durable_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(20);

    // WAL without fsync: the serialization + I/O cost.
    let dir = std::env::temp_dir().join(format!("knactor-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut profile = EngineProfile::apiserver(&dir, "bench/nofsync");
    profile.fsync = false;
    let store = ObjectStore::open(StoreId::new("bench/nofsync"), profile).unwrap();
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update_wal_no_fsync", |b| {
        b.iter(|| {
            n += 1;
            store
                .update(&ObjectKey::new("k"), json!({"v": n}), None)
                .unwrap()
        });
    });

    // WAL with fsync: the real durability price (the apiserver's story).
    let mut profile = EngineProfile::apiserver(&dir, "bench/fsync");
    profile.fsync = true;
    let store = ObjectStore::open(StoreId::new("bench/fsync"), profile).unwrap();
    store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
    let mut n = 0u64;
    group.bench_function("update_wal_fsync", |b| {
        b.iter(|| {
            n += 1;
            store
                .update(&ObjectKey::new("k"), json!({"v": n}), None)
                .unwrap()
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Aggregate read throughput under concurrent readers with one writer
/// churning a disjoint key — the contention profile of many integrators
/// watching/reading one exchange while a reconciler posts state.
///
/// Reported time is *per read* across all readers (wall-clock of the
/// parallel section divided by total reads), so lower is better and a
/// contention-free engine scales it down as readers are added.
fn bench_concurrent_readers(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut group = c.benchmark_group("store_concurrent_read");
    for readers in [1usize, 4, 16] {
        let store = Arc::new(ObjectStore::in_memory("b/conc"));
        for i in 0..64 {
            store
                .create(
                    ObjectKey::new(format!("k{i}")),
                    json!({"v": i, "nested": {"a": [1, 2, 3]}}),
                )
                .unwrap();
        }
        group.bench_function(&format!("get_x{readers}_vs_1_writer"), |b| {
            b.iter_custom(|iters| {
                // A fixed, large batch per sample amortizes thread spawn;
                // the result is scaled back to `iters` per-pool reads.
                const READS_PER_THREAD: u64 = 100_000;
                let stop = Arc::new(AtomicBool::new(false));
                let writer = {
                    let store = Arc::clone(&store);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            n += 1;
                            let _ = store.update(&ObjectKey::new("k0"), json!({"v": n}), None);
                        }
                    })
                };
                let start = Instant::now();
                let handles: Vec<_> = (0..readers)
                    .map(|r| {
                        let store = Arc::clone(&store);
                        std::thread::spawn(move || {
                            // Readers hit disjoint keys (not the written one):
                            // the single-mutex engine still serializes them.
                            let key = ObjectKey::new(format!("k{}", 1 + (r % 63)));
                            for _ in 0..READS_PER_THREAD {
                                criterion::black_box(store.get(&key).unwrap());
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                writer.join().unwrap();
                // Per-read cost across the whole reader pool (aggregate
                // throughput view), scaled to the requested iters.
                let per_read = elapsed.as_nanos() / (READS_PER_THREAD as u128 * readers as u128);
                Duration::from_nanos((per_read.max(1) as u64).saturating_mul(iters))
            });
        });
        drop(store);
    }
    group.finish();
}

/// Commit cost as watch subscribers are added: each committed event is
/// fanned out to every subscriber.
fn bench_watch_fanout(c: &mut Criterion) {
    use std::time::{Duration, Instant};

    let mut group = c.benchmark_group("store_watch_fanout");
    for subs in [1usize, 8, 64] {
        group.bench_function(&format!("update_x{subs}_subscribers"), |b| {
            b.iter_custom(|iters| {
                let store = ObjectStore::in_memory("b/fan");
                store.create(ObjectKey::new("k"), json!({"v": 0})).unwrap();
                let receivers: Vec<_> = (0..subs)
                    .map(|_| store.watch_from(store.revision()).unwrap())
                    .collect();
                let start = Instant::now();
                for n in 0..iters {
                    store
                        .update(&ObjectKey::new("k"), json!({"v": n}), None)
                        .unwrap();
                }
                let elapsed = start.elapsed();
                // Drain outside the timed section; receivers alive the
                // whole time so every commit paid the full fan-out.
                drop(receivers);
                let _ = elapsed;
                if elapsed.is_zero() {
                    Duration::from_nanos(1)
                } else {
                    elapsed
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_core_ops,
    bench_durable_ops,
    bench_concurrent_readers,
    bench_watch_fanout
);
criterion_main!(benches);
