//! The TCP exchange client.
//!
//! One connection, pipelined: requests carry correlation ids, a background
//! demultiplexer routes replies to per-request oneshot channels and pushed
//! events to per-subscription streams. Optional injected latency models a
//! cluster network RTT deterministically (loopback TCP alone measures in
//! microseconds; pod-to-pod traffic does not).
//!
//! Two client layers live here:
//!
//! * [`TcpClient`] — one connection, fail-fast. A dead socket or a
//!   timed-out request surfaces immediately as `Transport`/`Timeout`.
//! * [`ResilientClient`] — wraps reconnection, capped exponential backoff
//!   with jitter ([`RetryPolicy`]), idempotent retry recovery keyed by OCC
//!   revisions, and watch/tail **resume**: a subscription survives the
//!   connection it was created on, deduplicating replayed events and
//!   detecting revision gaps (see [`ResilientClient::watch`]).

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::fault::FaultRng;
use crate::frame::{FrameReader, FrameWriter};
use crate::proto::{
    decode, encode, encode_into, EventBody, Hello, ProfileSpec, QuerySpec, Request,
    RequestEnvelope, Response, ServerMsg,
};
use knactor_logstore::{LogRecord, TailEvent};
use knactor_rbac::{Subject, SubjectKind};
use knactor_store::udf::UdfAssignment;
use knactor_store::{
    BatchOp, EventKind, ItemResult, PutItem, StoredObject, TxOp, UdfBinding, WatchEvent,
};
use knactor_types::{Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::{mpsc, oneshot};

/// Byte ceiling for one corked writer drain: once this much is staged
/// unflushed, the writer flushes before draining more of its queue.
const CORK_MAX_BYTES: usize = 256 * 1024;

/// Routing state shared with the demultiplexer task.
#[derive(Default)]
struct Router {
    /// Set once the demultiplexer exits (connection gone); all later
    /// requests fail fast instead of waiting on a reply that cannot come.
    closed: bool,
    pending: HashMap<u64, oneshot::Sender<Response>>,
    /// Request id → channel to install once the Watch reply names a sub id.
    staged_watches: HashMap<u64, StagedSub>,
    object_subs: HashMap<u64, mpsc::UnboundedSender<WatchEvent>>,
    record_subs: HashMap<u64, mpsc::UnboundedSender<TailEvent>>,
}

enum StagedSub {
    Object(mpsc::UnboundedSender<WatchEvent>),
    Record(mpsc::UnboundedSender<TailEvent>),
}

/// Async exchange client over TCP.
pub struct TcpClient {
    out_tx: mpsc::UnboundedSender<RequestEnvelope>,
    router: Arc<Mutex<Router>>,
    next_id: AtomicU64,
    latency: Option<Duration>,
    /// Per-request reply deadline; `None` waits forever (the default, so
    /// existing single-connection users keep fail-on-disconnect behaviour
    /// without spurious timeouts).
    timeout: Option<Duration>,
    subject: Subject,
}

impl TcpClient {
    /// Connect and identify as `subject`.
    pub async fn connect(
        addr: impl tokio::net::ToSocketAddrs,
        subject: Subject,
    ) -> Result<TcpClient> {
        let socket = TcpStream::connect(addr).await?;
        socket
            .set_nodelay(true)
            .map_err(|e| Error::Transport(e.to_string()))?;
        let peer = socket
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "peer".to_string());
        let (read_half, write_half) = socket.into_split();
        let mut writer = FrameWriter::new(write_half);
        let hello = Hello {
            subject_kind: match subject.kind {
                SubjectKind::Reconciler => "reconciler".to_string(),
                SubjectKind::Integrator => "integrator".to_string(),
                SubjectKind::Operator => "operator".to_string(),
            },
            subject_name: subject.name.clone(),
        };
        writer.write_frame(&encode(&hello)?).await?;

        let router = Arc::new(Mutex::new(Router::default()));

        // Writer task: serializes request envelopes onto the socket.
        // Corked: after the first envelope, drain whatever else is already
        // queued (pipelined callers, batch fan-out) into the frame buffer
        // and flush once — N requests, one write.
        let (out_tx, mut out_rx) = mpsc::unbounded_channel::<RequestEnvelope>();
        tokio::spawn(async move {
            let frames_per_flush = knactor_types::metrics::global().histogram(
                "knactor_net_batch_size",
                &[("role", "client"), ("unit", "frames")],
            );
            let mut scratch = String::new();
            'conn: while let Some(mut envelope) = out_rx.recv().await {
                let mut frames = 0u64;
                loop {
                    if encode_into(&envelope, &mut scratch).is_err() {
                        break 'conn;
                    }
                    if writer.write_frame_buffered(scratch.as_bytes()).is_err() {
                        break 'conn;
                    }
                    frames += 1;
                    // Byte-bounded cork (mirrors the server writer): a
                    // caller pipelining as fast as this loop drains would
                    // otherwise keep the drain spinning forever, growing
                    // the staged buffer without bound and never letting
                    // the flush park on a congested socket.
                    if writer.buffered_len() >= CORK_MAX_BYTES {
                        break;
                    }
                    match out_rx.try_recv() {
                        Ok(next) => envelope = next,
                        Err(_) => break,
                    }
                }
                frames_per_flush.observe_ns(frames);
                if writer.flush().await.is_err() {
                    break;
                }
            }
        });

        // Demultiplexer task.
        let demux_router = Arc::clone(&router);
        tokio::spawn(async move {
            let mut reader = FrameReader::new(read_half);
            loop {
                let frame = match reader.read_frame().await {
                    Ok(Some(f)) => f,
                    _ => break,
                };
                let msg: ServerMsg = match decode(&frame) {
                    Ok(m) => m,
                    Err(_) => break,
                };
                let mut router = demux_router.lock();
                match msg {
                    ServerMsg::Reply { id, response } => {
                        // A watch/tail reply installs its event channel
                        // *before* the reply is released, so no event can
                        // race past an unregistered subscription.
                        if let Response::Watch { sub_id } = &response {
                            if let Some(staged) = router.staged_watches.remove(&id) {
                                match staged {
                                    StagedSub::Object(tx) => {
                                        router.object_subs.insert(*sub_id, tx);
                                    }
                                    StagedSub::Record(tx) => {
                                        router.record_subs.insert(*sub_id, tx);
                                    }
                                }
                            }
                        } else {
                            router.staged_watches.remove(&id);
                        }
                        if let Some(tx) = router.pending.remove(&id) {
                            let _ = tx.send(response);
                        }
                    }
                    ServerMsg::Event { sub_id, body } => {
                        deliver_event(&mut router, sub_id, body);
                    }
                    ServerMsg::EventBatch { sub_id, bodies } => {
                        // A batched frame is exactly N events in delivery
                        // order; unpack it through the same path.
                        for body in bodies {
                            deliver_event(&mut router, sub_id, body);
                        }
                    }
                }
            }
            // Connection gone: answer every pending request with an
            // explicit transport error (naming the peer and the fact that
            // the reply is outstanding — the caller may have executed),
            // close all subscriptions, and refuse future requests.
            let mut router = demux_router.lock();
            router.closed = true;
            let lost = Error::Transport(format!(
                "connection to {peer} lost with the reply outstanding"
            ));
            for (_, tx) in router.pending.drain() {
                let _ = tx.send(Response::from_error(&lost));
            }
            router.object_subs.clear();
            router.record_subs.clear();
        });

        Ok(TcpClient {
            out_tx,
            router,
            next_id: AtomicU64::new(1),
            latency: None,
            timeout: None,
            subject,
        })
    }

    /// Inject a fixed round-trip latency applied to every request (models
    /// cluster RTT; benchmarks use it to make transport cost explicit).
    pub fn with_latency(mut self, rtt: Duration) -> TcpClient {
        self.latency = Some(rtt);
        self
    }

    /// Bound how long a request waits for its reply. A lost request or
    /// reply frame then surfaces as [`Error::Timeout`] instead of hanging
    /// the caller forever.
    pub fn with_request_timeout(mut self, limit: Duration) -> TcpClient {
        self.timeout = Some(limit);
        self
    }

    /// True once the connection is gone (demultiplexer exited); every
    /// request from then on fails fast.
    pub fn is_closed(&self) -> bool {
        self.router.lock().closed
    }

    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    async fn request(&self, body: Request) -> Result<Response> {
        self.request_staged(body, None).await
    }

    async fn request_staged(&self, body: Request, staged: Option<StagedSub>) -> Result<Response> {
        if let Some(rtt) = self.latency {
            knactor_store::profile::precise_sleep(rtt).await;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = oneshot::channel();
        {
            let mut router = self.router.lock();
            if router.closed {
                return Err(Error::Transport("connection closed".to_string()));
            }
            router.pending.insert(id, tx);
            if let Some(staged) = staged {
                router.staged_watches.insert(id, staged);
            }
        }
        self.out_tx
            .send(RequestEnvelope { id, body })
            .map_err(|_| Error::Transport("connection closed".to_string()))?;
        let response = match self.timeout {
            None => rx
                .await
                .map_err(|_| Error::Transport("connection closed awaiting reply".to_string()))?,
            Some(limit) => match tokio::time::timeout(limit, rx).await {
                Ok(Ok(response)) => response,
                Ok(Err(_)) => {
                    return Err(Error::Transport(
                        "connection closed awaiting reply".to_string(),
                    ))
                }
                Err(_) => {
                    // Deregister so a reply arriving after the deadline is
                    // dropped instead of resolving a request nobody waits
                    // on (and so a late Watch reply can't leak a sub).
                    let mut router = self.router.lock();
                    router.pending.remove(&id);
                    router.staged_watches.remove(&id);
                    return Err(Error::Timeout(format!(
                        "no reply within {limit:?} (request {id})"
                    )));
                }
            },
        };
        response.into_result()
    }

    /// Round-trip a ping (health check / latency probe).
    pub async fn ping(&self) -> Result<()> {
        match self.request(Request::Ping).await? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    // ---- replication control plane ------------------------------------------
    // Not part of `ExchangeApi`: these are node-to-node (and router-to-
    // node) operations, not composition surface.

    /// Subscribe to a store's replication stream: every committed event
    /// with revision > `from`, in order, as a raw watch stream.
    pub async fn repl_subscribe(&self, store: StoreId, from: Revision) -> Result<WatchRx> {
        let (tx, rx) = mpsc::unbounded_channel();
        match self
            .request_staged(
                Request::ReplSubscribe { store, from },
                Some(StagedSub::Object(tx)),
            )
            .await?
        {
            Response::Watch { .. } => Ok(rx),
            other => Err(unexpected(other)),
        }
    }

    /// Report this follower's durably-staged high-water mark to the leader.
    pub async fn repl_ack(
        &self,
        store: StoreId,
        follower: String,
        revision: Revision,
    ) -> Result<()> {
        match self
            .request(Request::ReplAck {
                store,
                follower,
                revision,
            })
            .await?
        {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Probe the node's replication role, epoch, and per-store progress.
    pub async fn repl_status(&self) -> Result<ReplStatusInfo> {
        match self.request(Request::ReplStatus).await? {
            Response::ReplStatus {
                leader,
                epoch,
                applied,
            } => Ok(ReplStatusInfo {
                leader,
                epoch,
                applied,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Promote the node to leader at `epoch` (must exceed its current
    /// epoch — the stale-leader fence).
    pub async fn repl_promote(&self, epoch: u64) -> Result<()> {
        match self.request(Request::ReplPromote { epoch }).await? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Block until the node's copy of `store` has applied at least
    /// `revision` (read-your-writes barrier before a replica read).
    pub async fn repl_wait(&self, store: StoreId, revision: Revision) -> Result<Revision> {
        match self.request(Request::ReplWait { store, revision }).await? {
            Response::Revision { revision } => Ok(revision),
            other => Err(unexpected(other)),
        }
    }
}

/// One node's answer to [`TcpClient::repl_status`].
#[derive(Debug, Clone)]
pub struct ReplStatusInfo {
    pub leader: bool,
    pub epoch: u64,
    /// Per-store applied revisions (replication progress).
    pub applied: Vec<(StoreId, Revision)>,
}

impl ReplStatusInfo {
    /// Total applied revisions across stores — the "how caught up is
    /// this node" scalar that failover elections compare.
    pub fn total_applied(&self) -> u64 {
        self.applied.iter().map(|(_, r)| r.0).sum()
    }

    pub fn applied_for(&self, store: &StoreId) -> Revision {
        self.applied
            .iter()
            .find(|(s, _)| s == store)
            .map(|(_, r)| *r)
            .unwrap_or(Revision::ZERO)
    }
}

fn unexpected(r: Response) -> Error {
    Error::Transport(format!("unexpected response {r:?}"))
}

/// Route one pushed event body to its subscription channel, dropping the
/// subscription on a gone consumer. Shared by single-event and batched
/// frames so both deliver identically.
fn deliver_event(router: &mut Router, sub_id: u64, body: EventBody) {
    match body {
        EventBody::Object { event } => {
            if let Some(tx) = router.object_subs.get(&sub_id) {
                if tx.send(event).is_err() {
                    router.object_subs.remove(&sub_id);
                }
            }
        }
        EventBody::Record { record } => {
            if let Some(tx) = router.record_subs.get(&sub_id) {
                if tx.send(TailEvent::Record(record)).is_err() {
                    router.record_subs.remove(&sub_id);
                }
            }
        }
        EventBody::Lagged {
            missed,
            resume_from,
        } => {
            if let Some(tx) = router.record_subs.get(&sub_id) {
                if tx
                    .send(TailEvent::Lagged {
                        missed,
                        resume_from,
                    })
                    .is_err()
                {
                    router.record_subs.remove(&sub_id);
                }
            }
        }
        EventBody::WatchLagged { resume_from } => {
            // The store cut this watch for exceeding its lag cap. The raw
            // stream simply ends (an unconsumed backlog is exactly what got
            // the subscription cut, so there is nothing useful to flush);
            // `resume_from` names the gapless restart point. The resilient
            // driver resubscribes from its own `last_seen` cursor, which is
            // never past `resume_from` — every event it has not delivered
            // gets replayed from history.
            knactor_types::metrics::global()
                .counter("knactor_client_watch_lagged_total", &[("role", "client")])
                .inc();
            let _ = resume_from;
            router.object_subs.remove(&sub_id);
        }
        EventBody::Closed => {
            router.object_subs.remove(&sub_id);
            router.record_subs.remove(&sub_id);
        }
    }
}

impl ExchangeApi for TcpClient {
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::CreateStore { store, profile })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self.request(Request::Create { store, key, value }).await? {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        Box::pin(async move {
            match self.request(Request::Get { store, key }).await? {
                Response::Object { object } => Ok(object),
                other => Err(unexpected(other)),
            }
        })
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            match self.request(Request::List { store }).await? {
                Response::Objects { objects, revision } => Ok((objects, revision)),
                other => Err(unexpected(other)),
            }
        })
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self
                .request(Request::Update {
                    store,
                    key,
                    value,
                    expected,
                })
                .await?
            {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self
                .request(Request::Patch {
                    store,
                    key,
                    patch,
                    upsert,
                })
                .await?
            {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self.request(Request::Delete { store, key }).await? {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            match self.request(Request::BatchGet { store, keys }).await? {
                Response::Batch { items } => Ok(items),
                other => Err(unexpected(other)),
            }
        })
    }

    fn batch_put(
        &self,
        store: StoreId,
        items: Vec<PutItem>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            match self.request(Request::BatchPut { store, items }).await? {
                Response::Batch { items } => Ok(items),
                other => Err(unexpected(other)),
            }
        })
    }

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            match self.request(Request::BatchCommit { store, ops }).await? {
                Response::Batch { items } => Ok(items),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::RegisterConsumer {
                    store,
                    key,
                    consumer,
                })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        Box::pin(async move {
            match self
                .request(Request::MarkProcessed {
                    store,
                    key,
                    consumer,
                })
                .await?
            {
                Response::Collected { keys } => Ok(keys),
                other => Err(unexpected(other)),
            }
        })
    }

    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            match self
                .request_staged(Request::Watch { store, from }, Some(StagedSub::Object(tx)))
                .await?
            {
                Response::Watch { .. } => Ok(rx),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::RegisterSchema { schema }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::BindSchema { store, schema }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        Box::pin(async move {
            match self.request(Request::GetSchema { schema }).await? {
                Response::Schema { schema } => Ok(schema),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::RegisterUdf {
                    name,
                    inputs,
                    assignments,
                })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            match self.request(Request::ExecuteUdf { name, bindings }).await? {
                Response::Revisions { revisions } => Ok(revisions),
                other => Err(unexpected(other)),
            }
        })
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            match self.request(Request::Transact { ops }).await? {
                Response::Revisions { revisions } => Ok(revisions),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::LogCreateStore { store }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            match self.request(Request::LogAppend { store, fields }).await? {
                Response::Seq { seq } => Ok(seq),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            match self
                .request(Request::LogAppendBatch { store, batch })
                .await?
            {
                Response::Seq { seq } => Ok(seq),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        Box::pin(async move {
            match self.request(Request::LogRead { store, from }).await? {
                Response::Records { records } => Ok(records),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        Box::pin(async move {
            match self.request(Request::LogQuery { store, query }).await? {
                Response::Rows { rows } => Ok(rows),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            match self
                .request_staged(
                    Request::LogTail { store, from },
                    Some(StagedSub::Record(tx)),
                )
                .await?
            {
                Response::Watch { .. } => Ok(TailRx::from_channel(rx)),
                other => Err(unexpected(other)),
            }
        })
    }

    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        Box::pin(async move {
            match self.request(Request::Metrics).await? {
                Response::Metrics { snapshot } => Ok(snapshot),
                other => Err(unexpected(other)),
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Resilient layer: reconnect, retry, resume.
// ---------------------------------------------------------------------------

/// Retry/backoff knobs for [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Per-attempt reply deadline (installed on every connection via
    /// [`TcpClient::with_request_timeout`]).
    pub request_timeout: Duration,
    /// Total attempts per logical operation (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for backoff jitter (deterministic given the call sequence).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            request_timeout: Duration::from_secs(2),
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0x6B6E_6163,
        }
    }
}

impl RetryPolicy {
    /// Tighter deadlines and backoffs for tests driving many failures.
    pub fn fast(seed: u64) -> RetryPolicy {
        RetryPolicy {
            request_timeout: Duration::from_millis(250),
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed,
        }
    }

    /// Backoff before retry number `attempt` (0-based): capped exponential
    /// with a jitter multiplier in `[0.5, 1.0)` so a herd of retriers
    /// decorrelates.
    pub fn backoff(&self, attempt: u32, rng: &mut FaultRng) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_backoff);
        capped.mul_f64(0.5 + rng.unit() / 2.0)
    }
}

/// The slot holding the current connection; replaced on reconnect.
struct ConnSlot {
    client: Option<Arc<TcpClient>>,
}

/// Everything [`ResilientClient`] shares with its watch/tail driver tasks.
struct Resilient {
    addr: SocketAddr,
    subject: Subject,
    policy: RetryPolicy,
    conn: Mutex<ConnSlot>,
    rng: Mutex<FaultRng>,
}

/// Identity-coercion helper: gives the compiler the higher-ranked `Fn`
/// signature retry closures must satisfy (a bare closure literal often
/// fails to generalize over the connection lifetime on its own).
fn op_fn<T, F>(f: F) -> F
where
    F: for<'c> Fn(&'c TcpClient, u32) -> BoxFuture<'c, Result<T>>,
{
    f
}

impl Resilient {
    /// Current live connection, (re)establishing one if needed. Losing a
    /// reconnect race is harmless: whoever installs a live client last
    /// wins, and in-flight operations keep their own `Arc` alive.
    async fn current(&self) -> Result<Arc<TcpClient>> {
        if let Some(client) = &self.conn.lock().client {
            if !client.is_closed() {
                return Ok(Arc::clone(client));
            }
        }
        let fresh = TcpClient::connect(self.addr, self.subject.clone())
            .await?
            .with_request_timeout(self.policy.request_timeout);
        let fresh = Arc::new(fresh);
        let mut slot = self.conn.lock();
        if let Some(existing) = &slot.client {
            if !existing.is_closed() && !Arc::ptr_eq(existing, &fresh) {
                return Ok(Arc::clone(existing));
            }
        }
        slot.client = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    fn next_backoff(&self, attempt: u32) -> Duration {
        self.policy.backoff(attempt, &mut self.rng.lock())
    }

    /// Run `op` with reconnect + capped-backoff retry on transport-level
    /// failures (`Transport`, `Timeout`) and on admission-control shedding
    /// (`Overloaded` — shed before dispatch, so a retry is always safe; the
    /// next backoff is floored at the server's `retry_after_ms` hint).
    /// Semantic errors (`Conflict`, `AlreadyExists`, `NotFound`, ...)
    /// propagate immediately; per-op recovery for those lives in the
    /// individual `ExchangeApi` methods, because only they know the
    /// idempotency key. `op` receives the 0-based attempt number:
    /// `attempt > 0` means an earlier attempt may have executed without us
    /// seeing its reply.
    async fn retry<T, F>(&self, op: F) -> Result<T>
    where
        F: for<'c> Fn(&'c TcpClient, u32) -> BoxFuture<'c, Result<T>>,
    {
        let mut last: Option<Error> = None;
        let mut floor = Duration::ZERO;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                let backoff = self
                    .next_backoff(attempt - 1)
                    .max(std::mem::take(&mut floor));
                let registry = knactor_types::metrics::global();
                registry.counter("knactor_client_retries_total", &[]).inc();
                registry
                    .histogram("knactor_client_backoff_seconds", &[])
                    .observe(backoff);
                tokio::time::sleep(backoff).await;
            }
            let client = match self.current().await {
                Ok(client) => client,
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            };
            match op(&client, attempt).await {
                Ok(value) => return Ok(value),
                Err(e @ (Error::Transport(_) | Error::Timeout(_))) => last = Some(e),
                Err(Error::Overloaded { retry_after_ms }) => {
                    floor = Duration::from_millis(retry_after_ms);
                    knactor_types::metrics::global()
                        .counter("knactor_client_shed_total", &[("role", "client")])
                        .inc();
                    last = Some(Error::Overloaded { retry_after_ms });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::Transport("retries exhausted".to_string())))
    }
}

/// Client-side resume state for one watch subscription.
struct WatchState {
    /// Highest revision delivered downstream; resubscriptions ask the
    /// server for everything after it.
    last_seen: Revision,
    /// Keys currently believed alive, so a post-horizon re-list can
    /// synthesize `Deleted` events for objects that vanished while the
    /// watch was down.
    known: BTreeSet<ObjectKey>,
}

/// A self-healing exchange client: one logical connection that survives
/// resets, with per-operation retry and resumable subscriptions.
///
/// # Watch-resume protocol
///
/// The server guarantees consecutive revisions — every commit bumps the
/// store revision by exactly one — which makes client-side integrity
/// checking possible:
///
/// * **duplicate** (revision ≤ last seen): dropped. Covers both replay
///   after resubscription and duplicated frames in transit.
/// * **gap** (revision > last seen + 1): an event frame was lost on the
///   live connection. The gapped event is *not* delivered; the client
///   resubscribes from the last seen revision and the server replays the
///   missing range from history.
/// * **stream end**: connection died; resubscribe from the last seen
///   revision with backoff.
/// * **`WatchTooOld`**: the resume point fell out of the server's bounded
///   history. Fall back to a full re-list: changed objects are delivered
///   as synthetic `Updated` events (in revision order), vanished keys as
///   synthetic `Deleted` events at the listing revision, and the watch
///   restarts from the listing revision.
///
/// Gap detection assumes the subscription sees *every* commit (no
/// server-side event filtering for this subject); that holds for all
/// current callers.
pub struct ResilientClient {
    inner: Arc<Resilient>,
}

impl ResilientClient {
    /// Connect eagerly (so configuration errors surface here, not on the
    /// first operation).
    pub async fn connect(
        addr: SocketAddr,
        subject: Subject,
        policy: RetryPolicy,
    ) -> Result<ResilientClient> {
        let inner = Arc::new(Resilient {
            addr,
            subject,
            policy,
            conn: Mutex::new(ConnSlot { client: None }),
            rng: Mutex::new(FaultRng::new(policy.seed)),
        });
        inner.current().await?;
        Ok(ResilientClient { inner })
    }

    pub fn subject(&self) -> &Subject {
        &self.inner.subject
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.inner.policy
    }

    /// Address this client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// [`TcpClient::repl_status`] with reconnect + transport retry.
    pub async fn repl_status(&self) -> Result<ReplStatusInfo> {
        self.inner
            .retry(op_fn(move |c, _| {
                Box::pin(async move { c.repl_status().await })
            }))
            .await
    }

    /// [`TcpClient::repl_wait`] with reconnect + transport retry. Safe to
    /// retry blindly: the barrier is a read, not a mutation.
    pub async fn repl_wait(&self, store: StoreId, revision: Revision) -> Result<Revision> {
        self.inner
            .retry(op_fn(move |c, _| {
                let store = store.clone();
                Box::pin(async move { c.repl_wait(store, revision).await })
            }))
            .await
    }

    /// [`TcpClient::repl_promote`] with reconnect + transport retry.
    /// Idempotent under the epoch fence: a duplicate promote at the same
    /// epoch surfaces `Conflict`, which callers treat as already done.
    pub async fn repl_promote(&self, epoch: u64) -> Result<()> {
        self.inner
            .retry(op_fn(move |c, _| {
                Box::pin(async move { c.repl_promote(epoch).await })
            }))
            .await
    }
}

impl Resilient {
    /// Establish (or re-establish) a server-side subscription for `state`,
    /// falling back to re-list when the resume point is beyond the
    /// server's history horizon. Synthetic re-list events go straight to
    /// `tx`.
    async fn establish_watch(
        &self,
        store: &StoreId,
        state: &mut WatchState,
        tx: &mpsc::UnboundedSender<WatchEvent>,
    ) -> Result<WatchRx> {
        loop {
            let from = state.last_seen;
            match self
                .retry(op_fn(move |c, _| Box::pin(c.watch(store.clone(), from))))
                .await
            {
                Ok(sub) => return Ok(sub),
                Err(Error::WatchTooOld { .. }) => {
                    let (objects, revision) = self
                        .retry(op_fn(move |c, _| Box::pin(c.list(store.clone()))))
                        .await?;
                    emit_relist(state, objects, revision, tx)?;
                    // Loop: subscribe from the listing revision (which may
                    // itself be too old by now on a busy store — then we
                    // simply re-list again).
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Pump events from server subscriptions into `tx` until the consumer
    /// goes away, resubscribing across connection loss, deduplicating
    /// replays, and closing the gap-detection loop described on
    /// [`ResilientClient`].
    async fn drive_watch(
        self: Arc<Self>,
        store: StoreId,
        mut state: WatchState,
        mut sub: WatchRx,
        tx: mpsc::UnboundedSender<WatchEvent>,
    ) {
        loop {
            while let Some(event) = sub.recv().await {
                if event.revision <= state.last_seen {
                    continue; // duplicate (replay or duplicated frame)
                }
                if event.revision.0 > state.last_seen.0 + 1 {
                    break; // gap: resubscribe, do not deliver out of order
                }
                state.last_seen = event.revision;
                match event.kind {
                    EventKind::Created | EventKind::Updated => {
                        state.known.insert(event.key.clone());
                    }
                    EventKind::Deleted => {
                        state.known.remove(&event.key);
                    }
                }
                if tx.send(event).is_err() {
                    return; // consumer dropped the stream
                }
            }
            if tx.is_closed() {
                return;
            }
            // Gap or dead connection either way: resume from last_seen.
            match self.establish_watch(&store, &mut state, &tx).await {
                Ok(fresh) => sub = fresh,
                Err(_) => return, // non-retryable (e.g. Forbidden): end the stream
            }
        }
    }

    /// Pump log records, resuming from the last delivered sequence number
    /// (`log_tail(from)` is exclusive). Log sequences are dense (start at
    /// 1, +1 per record), so mid-stream dedup/gap detection mirrors the
    /// watch driver — with one wrinkle: a log whose retention window has
    /// moved past the resume point silently replays from its oldest
    /// retained record, so a forward jump at the *start* of a (re)played
    /// subscription is the retention horizon, not a lost frame, and is
    /// accepted.
    async fn drive_tail(
        self: Arc<Self>,
        store: StoreId,
        mut last_seen: u64,
        mut sub: TailRx,
        tx: mpsc::UnboundedSender<TailEvent>,
    ) {
        // True until the current subscription has yielded a record.
        let mut fresh = true;
        loop {
            while let Some(event) = sub.recv().await {
                let record = match event {
                    TailEvent::Record(record) => record,
                    TailEvent::Lagged {
                        missed,
                        resume_from,
                    } => {
                        // The store truncated records this tail never
                        // pulled. Forward the typed resume point and jump
                        // the cursor so the post-lag records are not
                        // mistaken for a lost-frame gap.
                        if resume_from > last_seen + 1 {
                            if tx
                                .send(TailEvent::Lagged {
                                    missed,
                                    resume_from,
                                })
                                .is_err()
                            {
                                return;
                            }
                            last_seen = resume_from - 1;
                        }
                        fresh = false;
                        continue;
                    }
                };
                if record.seq <= last_seen {
                    fresh = false;
                    continue; // duplicate (replay or duplicated frame)
                }
                if record.seq > last_seen + 1 && !fresh {
                    break; // mid-stream gap: a record frame was lost
                }
                fresh = false;
                last_seen = record.seq;
                if tx.send(TailEvent::Record(record)).is_err() {
                    return;
                }
            }
            if tx.is_closed() {
                return;
            }
            let from = last_seen;
            let store_ref = &store;
            match self
                .retry(op_fn(move |c, _| {
                    Box::pin(c.log_tail(store_ref.clone(), from))
                }))
                .await
            {
                Ok(renewed) => {
                    sub = renewed;
                    fresh = true;
                }
                Err(_) => return,
            }
        }
    }
}

/// Turn a fresh listing into the synthetic events a resumed-too-late
/// watcher needs: `Updated` for everything that changed past `last_seen`
/// (in revision order), then `Deleted` (at the listing revision) for keys
/// that vanished while the watch was down.
fn emit_relist(
    state: &mut WatchState,
    objects: Vec<StoredObject>,
    revision: Revision,
    tx: &mpsc::UnboundedSender<WatchEvent>,
) -> Result<()> {
    let listed: BTreeSet<ObjectKey> = objects.iter().map(|o| o.key.clone()).collect();
    let mut changed: Vec<&StoredObject> = objects
        .iter()
        .filter(|o| o.revision > state.last_seen)
        .collect();
    changed.sort_by_key(|o| o.revision);
    for obj in changed {
        let event = WatchEvent {
            revision: obj.revision,
            kind: EventKind::Updated,
            key: obj.key.clone(),
            value: Arc::clone(&obj.value),
        };
        tx.send(event)
            .map_err(|_| Error::Transport("watch consumer gone".to_string()))?;
    }
    for key in state.known.difference(&listed) {
        let event = WatchEvent {
            revision,
            kind: EventKind::Deleted,
            key: key.clone(),
            value: Arc::new(Value::Null),
        };
        tx.send(event)
            .map_err(|_| Error::Transport("watch consumer gone".to_string()))?;
    }
    state.known = listed;
    state.last_seen = state.last_seen.max(revision);
    Ok(())
}

impl ExchangeApi for ResilientClient {
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    let (store, profile) = (store.clone(), profile.clone());
                    Box::pin(async move {
                        match c.create_store(store, profile).await {
                            // Idempotent under at-least-once delivery: a
                            // lost reply (or a duplicated request frame
                            // whose genuine reply was dropped) still
                            // created the store; that is success. Even the
                            // first attempt can collide with its own
                            // duplicated execution, so no attempt guard.
                            Err(Error::AlreadyExists(_)) => Ok(()),
                            r => r,
                        }
                    })
                }))
                .await
        })
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    let (store, key, value) = (store.clone(), key.clone(), value.clone());
                    Box::pin(async move {
                        match c.create(store.clone(), key.clone(), value.clone()).await {
                            // Disambiguate: did *our* unacknowledged
                            // execution create it? Read back and compare
                            // the value — the OCC metadata then yields the
                            // commit revision the lost reply carried. The
                            // attempt count cannot gate this: a duplicated
                            // request frame makes even the first attempt
                            // collide with its own execution when the
                            // genuine reply is dropped.
                            Err(e @ Error::AlreadyExists(_)) => {
                                let obj = c.get(store, key).await?;
                                if *obj.value == value {
                                    Ok(obj.created_revision)
                                } else {
                                    Err(e)
                                }
                            }
                            r => r,
                        }
                    })
                }))
                .await
        })
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.get(store.clone(), key.clone()))
                }))
                .await
        })
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| Box::pin(c.list(store.clone()))))
                .await
        })
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    let (store, key, value) = (store.clone(), key.clone(), value.clone());
                    Box::pin(async move {
                        match c
                            .update(store.clone(), key.clone(), value.clone(), expected)
                            .await
                        {
                            // OCC-keyed disambiguation: if the object now
                            // holds exactly our value, the conflict is our
                            // own unacknowledged commit (lost reply, or a
                            // duplicated request colliding with itself).
                            Err(e @ Error::Conflict { .. }) if expected.is_some() => {
                                let obj = c.get(store, key).await?;
                                if *obj.value == value {
                                    Ok(obj.revision)
                                } else {
                                    Err(e)
                                }
                            }
                            r => r,
                        }
                    })
                }))
                .await
        })
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        // Patch is naturally retry-safe: re-applying an already-applied
        // patch merges to an identical value, which the store suppresses
        // as a no-op commit and answers with the current revision.
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.patch(store.clone(), key.clone(), patch.clone(), upsert))
                }))
                .await
        })
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, attempt| {
                    let (store, key) = (store.clone(), key.clone());
                    Box::pin(async move {
                        match c.delete(store, key).await {
                            // An earlier attempt (reply lost) already
                            // deleted it; the commit revision is gone with
                            // that reply, so answer with the ZERO sentinel
                            // rather than failing a delete that succeeded.
                            // Unlike create/update there is no value left
                            // to compare, so a first-attempt NotFound —
                            // ambiguous only when a duplicated request
                            // collides with itself — stays an error.
                            Err(Error::NotFound(_)) if attempt > 0 => Ok(Revision::ZERO),
                            r => r,
                        }
                    })
                }))
                .await
        })
    }

    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.batch_get(store.clone(), keys.clone()))
                }))
                .await
        })
    }

    // batch_put inherits the trait default (convert to ops, call
    // batch_commit), so it lands on the recovering override below.

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, attempt| {
                    let (store, ops) = (store.clone(), ops.clone());
                    Box::pin(async move {
                        let mut items = c.batch_commit(store.clone(), ops.clone()).await?;
                        // A replayed batch collides with its own earlier
                        // execution *item by item* (the server applies each
                        // op independently), so recovery mirrors the scalar
                        // rules per item: create → AlreadyExists → read back
                        // and value-compare; preconditioned update →
                        // Conflict → same; delete → NotFound on a retry →
                        // already gone, answer the ZERO sentinel.
                        for (op, item) in ops.iter().zip(items.iter_mut()) {
                            let Some(err) = item.as_error() else { continue };
                            match (op, err) {
                                (BatchOp::Create { key, value }, Error::AlreadyExists(_)) => {
                                    // The read-back itself crosses the same
                                    // unreliable wire; a transport failure
                                    // here must re-run the whole attempt,
                                    // not leave the item ambiguous.
                                    match c.get(store.clone(), key.clone()).await {
                                        Ok(obj) if *obj.value == *value => {
                                            *item = ItemResult::Revision {
                                                revision: obj.created_revision,
                                            };
                                        }
                                        Ok(_) => {}
                                        Err(e @ (Error::Transport(_) | Error::Timeout(_))) => {
                                            return Err(e)
                                        }
                                        Err(_) => {}
                                    }
                                }
                                (
                                    BatchOp::Update {
                                        key,
                                        value,
                                        expected: Some(_),
                                    },
                                    Error::Conflict { .. },
                                ) => match c.get(store.clone(), key.clone()).await {
                                    Ok(obj) if *obj.value == *value => {
                                        *item = ItemResult::Revision {
                                            revision: obj.revision,
                                        };
                                    }
                                    Ok(_) => {}
                                    Err(e @ (Error::Transport(_) | Error::Timeout(_))) => {
                                        return Err(e)
                                    }
                                    Err(_) => {}
                                },
                                (BatchOp::Delete { .. }, Error::NotFound(_)) if attempt > 0 => {
                                    *item = ItemResult::Revision {
                                        revision: Revision::ZERO,
                                    };
                                }
                                _ => {}
                            }
                        }
                        Ok(items)
                    })
                }))
                .await
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.register_consumer(store.clone(), key.clone(), consumer.clone()))
                }))
                .await
        })
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.mark_processed(store.clone(), key.clone(), consumer.clone()))
                }))
                .await
        })
    }

    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            let mut state = WatchState {
                last_seen: from,
                known: BTreeSet::new(),
            };
            // Establish inline so hard errors (Forbidden, unknown store)
            // surface to the caller instead of silently closing the
            // stream later.
            let sub = self.inner.establish_watch(&store, &mut state, &tx).await?;
            let driver = Arc::clone(&self.inner);
            tokio::spawn(driver.drive_watch(store, state, sub, tx));
            Ok(rx)
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.register_schema(schema.clone()))
                }))
                .await
        })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.bind_schema(store.clone(), schema.clone()))
                }))
                .await
        })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| Box::pin(c.get_schema(schema.clone()))))
                .await
        })
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.register_udf(name.clone(), inputs.clone(), assignments.clone()))
                }))
                .await
        })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        // At-least-once: a lost reply retries the execution. UDFs are
        // assignment-style (set fields from inputs), so re-execution
        // converges to the same values.
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.execute_udf(name.clone(), bindings.clone()))
                }))
                .await
        })
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        // At-least-once: preconditioned ops are protected by their OCC
        // revisions (a replay fails with Conflict, surfaced to the
        // caller); unconditional patches re-merge to a no-op.
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| Box::pin(c.transact(ops.clone()))))
                .await
        })
    }

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, attempt| {
                    let store = store.clone();
                    Box::pin(async move {
                        match c.log_create_store(store).await {
                            Err(Error::AlreadyExists(_)) if attempt > 0 => Ok(()),
                            r => r,
                        }
                    })
                }))
                .await
        })
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        // At-least-once: a retried append after a lost reply duplicates
        // the record. Log consumers must treat records as events, not
        // exactly-once commands (see DESIGN.md §"Fault model").
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.log_append(store.clone(), fields.clone()))
                }))
                .await
        })
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.log_append_batch(store.clone(), batch.clone()))
                }))
                .await
        })
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| Box::pin(c.log_read(store.clone(), from))))
                .await
        })
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| {
                    Box::pin(c.log_query(store.clone(), query.clone()))
                }))
                .await
        })
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            let first = {
                let store = store.clone();
                self.inner
                    .retry(op_fn(move |c, _| Box::pin(c.log_tail(store.clone(), from))))
                    .await?
            };
            let driver = Arc::clone(&self.inner);
            tokio::spawn(driver.drive_tail(store, from, first, tx));
            Ok(TailRx::from_channel(rx))
        })
    }

    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        Box::pin(async move {
            self.inner
                .retry(op_fn(move |c, _| Box::pin(c.metrics())))
                .await
        })
    }
}
