//! The reconciler programming model.
//!
//! A reconciler "responds to state updates from the data store and
//! initiates corresponding actions" (§3.2) — and touches **only its own
//! knactor's stores**. The [`ReconcilerCtx`] it receives is scoped
//! accordingly: it can read, write, and ingest through its own store ids,
//! and nothing else. There is no way to reach another service from inside
//! a reconciler; that is the point.

use knactor_net::api::BoxFuture;
use knactor_net::ExchangeApi;
use knactor_store::WatchEvent;
use knactor_types::{KnactorId, ObjectKey, Result, Revision, StoreId, Value};
use std::sync::Arc;

/// The world as one reconciler sees it: its own stores, nothing else.
#[derive(Clone)]
pub struct ReconcilerCtx {
    pub knactor: KnactorId,
    /// The store whose events this reconciler receives.
    pub store: StoreId,
    /// The knactor's log stores (telemetry it may emit).
    pub log_stores: Vec<StoreId>,
    api: Arc<dyn ExchangeApi>,
}

impl ReconcilerCtx {
    pub fn new(
        knactor: KnactorId,
        store: StoreId,
        log_stores: Vec<StoreId>,
        api: Arc<dyn ExchangeApi>,
    ) -> ReconcilerCtx {
        ReconcilerCtx {
            knactor,
            store,
            log_stores,
            api,
        }
    }

    /// Read an object from the knactor's own store.
    pub async fn get(&self, key: &ObjectKey) -> Result<knactor_store::StoredObject> {
        self.api.get(self.store.clone(), key.clone()).await
    }

    /// Patch the knactor's own store (the usual reconcile write-back,
    /// e.g. posting a `trackingID`).
    pub async fn patch(&self, key: &ObjectKey, patch: Value) -> Result<Revision> {
        self.api
            .patch(self.store.clone(), key.clone(), patch, false)
            .await
    }

    /// Create an object in the knactor's own store.
    pub async fn create(&self, key: impl Into<ObjectKey>, value: Value) -> Result<Revision> {
        self.api.create(self.store.clone(), key.into(), value).await
    }

    /// Mark the object processed for retention accounting.
    pub async fn mark_processed(&self, key: &ObjectKey) -> Result<Vec<ObjectKey>> {
        self.api
            .mark_processed(
                self.store.clone(),
                key.clone(),
                format!("reconciler:{}", self.knactor),
            )
            .await
    }

    /// Emit telemetry into one of the knactor's log stores.
    pub async fn emit(&self, log: &StoreId, fields: Value) -> Result<u64> {
        if !self.log_stores.contains(log) {
            return Err(knactor_types::Error::Forbidden(format!(
                "{} is not one of {}'s log stores",
                log, self.knactor
            )));
        }
        self.api.log_append(log.clone(), fields).await
    }
}

/// A reconciler: reacts to its store's events.
pub trait Reconciler: Send + Sync {
    /// Handle one committed change to the knactor's own store.
    fn reconcile<'a>(
        &'a self,
        ctx: &'a ReconcilerCtx,
        event: WatchEvent,
    ) -> BoxFuture<'a, Result<()>>;
}

/// Wrap an async closure as a reconciler.
///
/// ```ignore
/// let r = FnReconciler::new(|ctx, event| async move {
///     ctx.patch(&event.key, json!({"seen": true})).await?;
///     Ok(())
/// });
/// ```
pub struct FnReconciler<F> {
    f: F,
}

impl<F, Fut> FnReconciler<F>
where
    F: Fn(ReconcilerCtx, WatchEvent) -> Fut + Send + Sync,
    Fut: std::future::Future<Output = Result<()>> + Send + 'static,
{
    pub fn new(f: F) -> FnReconciler<F> {
        FnReconciler { f }
    }
}

impl<F, Fut> Reconciler for FnReconciler<F>
where
    F: Fn(ReconcilerCtx, WatchEvent) -> Fut + Send + Sync,
    Fut: std::future::Future<Output = Result<()>> + Send + 'static,
{
    fn reconcile<'a>(
        &'a self,
        ctx: &'a ReconcilerCtx,
        event: WatchEvent,
    ) -> BoxFuture<'a, Result<()>> {
        let fut = (self.f)(ctx.clone(), event);
        Box::pin(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::ProfileSpec;
    use knactor_rbac::Subject;
    use serde_json::json;

    #[tokio::test]
    async fn ctx_scopes_to_own_stores() {
        let (_, _, client) = in_process(Subject::reconciler("lamp"));
        client
            .create_store(StoreId::new("lamp/config"), ProfileSpec::Instant)
            .await
            .unwrap();
        client
            .log_create_store(StoreId::new("lamp/telemetry"))
            .await
            .unwrap();
        client
            .log_create_store(StoreId::new("other/telemetry"))
            .await
            .unwrap();

        let ctx = ReconcilerCtx::new(
            KnactorId::new("lamp"),
            StoreId::new("lamp/config"),
            vec![StoreId::new("lamp/telemetry")],
            Arc::new(client),
        );
        ctx.create("cfg", json!({"brightness": 2})).await.unwrap();
        ctx.patch(&ObjectKey::new("cfg"), json!({"brightness": 5}))
            .await
            .unwrap();
        assert_eq!(
            ctx.get(&ObjectKey::new("cfg")).await.unwrap().value,
            json!({"brightness": 5})
        );
        ctx.emit(&StoreId::new("lamp/telemetry"), json!({"kwh": 0.1}))
            .await
            .unwrap();
        // Emitting into someone else's log store is refused locally.
        assert!(ctx
            .emit(&StoreId::new("other/telemetry"), json!({}))
            .await
            .is_err());
    }

    #[tokio::test]
    async fn fn_reconciler_runs() {
        let (_, _, client) = in_process(Subject::reconciler("s"));
        client
            .create_store(StoreId::new("s/state"), ProfileSpec::Instant)
            .await
            .unwrap();
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let ctx = ReconcilerCtx::new(
            KnactorId::new("s"),
            StoreId::new("s/state"),
            vec![],
            Arc::clone(&api),
        );
        api.create(
            StoreId::new("s/state"),
            ObjectKey::new("o"),
            json!({"n": 1}),
        )
        .await
        .unwrap();

        let r = FnReconciler::new(|ctx: ReconcilerCtx, event: WatchEvent| async move {
            ctx.patch(&event.key, json!({"seen": true})).await?;
            Ok(())
        });
        let event = WatchEvent {
            revision: Revision(1),
            kind: knactor_store::EventKind::Created,
            key: ObjectKey::new("o"),
            value: Arc::new(json!({"n": 1})),
        };
        r.reconcile(&ctx, event).await.unwrap();
        let obj = ctx.get(&ObjectKey::new("o")).await.unwrap();
        assert_eq!(obj.value, json!({"n": 1, "seen": true}));
    }
}
