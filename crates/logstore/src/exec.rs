//! Segment-parallel query execution over store snapshots.
//!
//! [`run_store`] is the engine behind [`crate::query::Query::run_store`]:
//! it snapshots the store's segments (sealed `Arc`s + a clone of the
//! small active tail) and executes the pipeline segment-at-a-time:
//!
//! * the longest prefix of *record-wise* operators (filter / rename /
//!   project / derive) runs per segment — such operators are pure per
//!   record and order-preserving, so concatenating per-segment outputs in
//!   segment order is exactly the row-path result;
//! * an aggregate directly after that prefix folds into per-segment
//!   *partials* that are merged in segment order — numeric streams are
//!   concatenated, not re-associated, so float results are bit-identical
//!   to the sequential fold;
//! * everything after the aggregate (or after the prefix when there is no
//!   aggregate) — sort, limit, further stages — runs sequentially on the
//!   merged output, which is small by then.
//!
//! Columnar segments additionally get two fast paths that skip row
//! materialization entirely: single-field filters are evaluated once per
//! *distinct dictionary value* instead of once per record, and aggregates
//! read group keys and fold inputs straight off the columns.

use crate::query::{
    apply, eval_on, number, op_name, render_group_key, AggFn, Op, Query, QueryStats,
};
use crate::segment::{SealedSegment, SegmentData};
use crate::store::LogStore;
use knactor_expr::ast::BinOp;
use knactor_expr::{eval::truthy, Expr, FnRegistry};
use knactor_types::metrics;
use knactor_types::path::Segment as PathSeg;
use knactor_types::{FieldPath, Result, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Below this many records the per-thread setup outweighs the win and we
/// run the segment loop on the calling thread.
const PARALLEL_MIN_RECORDS: usize = 4096;

/// One unit of per-segment work.
enum SegUnit {
    Sealed(Arc<SealedSegment>),
    Active(Vec<Value>),
}

impl SegUnit {
    fn len(&self) -> usize {
        match self {
            SegUnit::Sealed(s) => s.len(),
            SegUnit::Active(rows) => rows.len(),
        }
    }
}

/// The aggregate spec of an [`Op::Aggregate`], borrowed.
struct AggSpec<'a> {
    group_by: Option<&'a String>,
    agg: &'a AggFn,
    field: Option<&'a FieldPath>,
    as_field: &'a String,
}

/// How the pipeline splits around the segment-parallel part.
struct Plan<'a> {
    /// Record-wise prefix (filter/rename/project/derive), run per segment.
    prefix: &'a [Op],
    /// Aggregate directly after the prefix, folded via partials.
    agg: Option<AggSpec<'a>>,
    /// Everything after — runs sequentially on the merged result.
    rest: &'a [Op],
    /// Prefix filters usable on columns: `(expr, the single field read)`.
    /// `Some` only when *every* prefix op qualifies.
    fast_filters: Option<Vec<(&'a Expr, String)>>,
}

fn plan(ops: &[Op]) -> Plan<'_> {
    let mut split = 0;
    while split < ops.len() {
        match &ops[split] {
            Op::Filter(_) | Op::Rename { .. } | Op::Project(_) | Op::Derive { .. } => split += 1,
            _ => break,
        }
    }
    let (agg, rest) = match ops.get(split) {
        Some(Op::Aggregate {
            group_by,
            agg,
            field,
            as_field,
        }) => (
            Some(AggSpec {
                group_by: group_by.as_ref(),
                agg,
                field: field.as_ref(),
                as_field,
            }),
            &ops[split + 1..],
        ),
        _ => (None, &ops[split..]),
    };
    let prefix = &ops[..split];
    let fast_filters = prefix
        .iter()
        .map(|op| match op {
            Op::Filter(expr) => conjuncts(expr)
                .into_iter()
                .map(|e| single_field(e).map(|f| (e, f)))
                .collect::<Option<Vec<_>>>(),
            _ => None,
        })
        .collect::<Option<Vec<Vec<_>>>>()
        .map(|per_op| per_op.into_iter().flatten().collect::<Vec<_>>())
        .filter(|_| {
            // The aggregate must also be column-addressable: group key is a
            // top-level field, fold input starts with a field segment.
            match &agg {
                None => true,
                Some(a) => a
                    .field
                    .is_none_or(|p| matches!(p.segments.first(), None | Some(PathSeg::Field(_)))),
            }
        });
    Plan {
        prefix,
        agg,
        rest,
        fast_filters,
    }
}

/// Flatten a top-level `and` chain into its conjuncts. Filtering on
/// `A and B` equals filtering on A then on B: `and` short-circuits, so a
/// record dropped (or error-dropped) by A never evaluates B on either
/// path, and a record passing A lives or dies by B on both. This lets a
/// multi-field conjunction use the per-field columnar fast path.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary(BinOp::And, l, r) => {
            let mut out = conjuncts(l);
            out.extend(conjuncts(r));
            out
        }
        _ => vec![expr],
    }
}

/// If the expression reads exactly one top-level field of `this` (and
/// nothing else), return that field: evaluating it against a one-field
/// mini-record is then equivalent to evaluating against the full record
/// (missing fields read as `null` either way).
fn single_field(expr: &Expr) -> Option<String> {
    let mut field: Option<String> = None;
    let mut bound: Vec<&str> = Vec::new();
    fn walk<'e>(expr: &'e Expr, bound: &mut Vec<&'e str>, field: &mut Option<String>) -> bool {
        match expr {
            Expr::Literal(_) => true,
            Expr::Ident(_) => false, // bare `this` or another free root
            Expr::Member(base, f) => {
                if let Expr::Ident(name) = &**base {
                    if name == "this" && !bound.contains(&name.as_str()) {
                        return match field {
                            None => {
                                *field = Some(f.clone());
                                true
                            }
                            Some(existing) => existing == f,
                        };
                    }
                }
                walk(base, bound, field)
            }
            Expr::Index(base, idx) => walk(base, bound, field) && walk(idx, bound, field),
            Expr::Call(_, args) => args.iter().all(|a| walk(a, bound, field)),
            Expr::Binary(_, l, r) => walk(l, bound, field) && walk(r, bound, field),
            Expr::Unary(_, e) => walk(e, bound, field),
            Expr::If {
                then,
                cond,
                otherwise,
            } => {
                walk(then, bound, field)
                    && walk(cond, bound, field)
                    && walk(otherwise, bound, field)
            }
            Expr::Comprehension {
                body,
                var,
                source,
                filter,
            } => {
                if !walk(source, bound, field) {
                    return false;
                }
                bound.push(var.as_str());
                let ok = walk(body, bound, field)
                    && filter
                        .as_ref()
                        .map(|f| walk(f, bound, field))
                        .unwrap_or(true);
                bound.pop();
                ok
            }
            Expr::List(items) => items.iter().all(|i| walk(i, bound, field)),
        }
    }
    // A comprehension variable shadowing `this` would break the
    // mini-record equivalence; `walk` treats a shadowed `this` member as
    // an opaque bound access, which is also fine — but a *bare* bound
    // ident is rejected above for simplicity (filters never bind vars in
    // practice).
    if walk(expr, &mut bound, &mut field) {
        field
    } else {
        None
    }
}

/// Per-segment, per-group fold state. Numeric inputs are kept as the
/// *ordered stream* the row path would have seen, so the merge can
/// replay the exact same left-to-right fold.
#[derive(Default)]
struct GroupPartial {
    count: usize,
    nums: Vec<f64>,
    /// First member's group-field value (`None` = member lacked it).
    first_keyval: Option<Value>,
    /// Last member's fold-field value (`None` = lacked it; `Last` only).
    last_val: Option<Value>,
}

/// Per-segment aggregation output: group key → partial, plus per-segment
/// drop counts from the filter prefix.
struct SegOut {
    rows: Vec<Value>,
    groups: Option<BTreeMap<String, GroupPartial>>,
    stats: QueryStats,
}

/// Run `query` against a store snapshot; results are bit-identical to
/// `query.run_with(store.read_all(), fns)`.
pub fn run_store(
    query: &Query,
    store: &LogStore,
    fns: &FnRegistry,
) -> Result<(Vec<Value>, QueryStats)> {
    let (sealed, active) = store.snapshot();
    let mut units: Vec<SegUnit> = sealed.into_iter().map(SegUnit::Sealed).collect();
    if !active.is_empty() {
        units.push(SegUnit::Active(
            active.into_iter().map(|r| r.fields).collect(),
        ));
    }
    let plan = plan(&query.ops);

    let total: usize = units.iter().map(|u| u.len()).sum();
    let per_segment = |unit: &SegUnit| -> Result<SegOut> { run_segment(unit, &plan, fns) };
    let outs: Vec<Result<SegOut>> = if total >= PARALLEL_MIN_RECORDS && units.len() > 1 {
        map_parallel(&units, &per_segment)
    } else {
        units.iter().map(per_segment).collect()
    };

    let mut stats = QueryStats::default();
    let mut rows: Vec<Value> = Vec::new();
    let mut merged: Option<BTreeMap<String, GroupPartial>> = plan.agg.as_ref().map(|a| {
        let mut m = BTreeMap::new();
        if a.group_by.is_none() {
            // SQL semantics: an ungrouped aggregate always yields one
            // row, even over an empty input.
            m.insert(String::new(), GroupPartial::default());
        }
        m
    });
    for out in outs {
        let out = out?;
        stats.dropped_errors += out.stats.dropped_errors;
        if let (Some(merged), Some(groups)) = (merged.as_mut(), out.groups) {
            for (key, gp) in groups {
                let slot = merged.entry(key).or_default();
                if slot.count == 0 && gp.count > 0 {
                    slot.first_keyval = gp.first_keyval;
                }
                if gp.count > 0 {
                    slot.last_val = gp.last_val;
                }
                slot.count += gp.count;
                slot.nums.extend(gp.nums);
            }
        } else {
            rows.extend(out.rows);
        }
    }
    if let (Some(merged), Some(a)) = (merged, plan.agg.as_ref()) {
        rows = fold_merged(merged, a);
    }
    for op in plan.rest {
        let start = Instant::now();
        rows = apply(op, rows, fns, &mut stats)?;
        observe_op(op_name(op), start);
    }
    Ok((rows, stats))
}

fn observe_op(op: &str, start: Instant) {
    metrics::global()
        .histogram("knactor_log_query_op_ns", &[("op", op)])
        .observe(start.elapsed());
}

/// Run the per-segment part of the plan on one unit.
fn run_segment(unit: &SegUnit, plan: &Plan<'_>, fns: &FnRegistry) -> Result<SegOut> {
    if let (Some(filters), SegUnit::Sealed(seg)) = (&plan.fast_filters, unit) {
        if let SegmentData::Columnar(col) = seg.data() {
            return Ok(run_columnar(col, filters, plan.agg.as_ref(), fns));
        }
    }
    // Generic path: materialize rows, run the record-wise prefix, then
    // fold into partials when an aggregate follows.
    let mut rows = match unit {
        SegUnit::Sealed(seg) => seg.rows(),
        SegUnit::Active(rows) => rows.clone(),
    };
    let mut stats = QueryStats::default();
    for op in plan.prefix {
        let start = Instant::now();
        rows = apply(op, rows, fns, &mut stats)?;
        observe_op(op_name(op), start);
    }
    match plan.agg.as_ref() {
        None => Ok(SegOut {
            rows,
            groups: None,
            stats,
        }),
        Some(a) => {
            let start = Instant::now();
            let groups = partial_from_rows(&rows, a);
            observe_op("aggregate", start);
            Ok(SegOut {
                rows: Vec::new(),
                groups: Some(groups),
                stats,
            })
        }
    }
}

/// Fold already-filtered rows into per-group partials (generic path).
fn partial_from_rows(rows: &[Value], a: &AggSpec<'_>) -> BTreeMap<String, GroupPartial> {
    let mut groups: BTreeMap<String, GroupPartial> = BTreeMap::new();
    let numeric = matches!(a.agg, AggFn::Sum | AggFn::Avg | AggFn::Min | AggFn::Max);
    for r in rows {
        let key = match a.group_by {
            Some(g) => r
                .get(g)
                .map(render_group_key)
                .unwrap_or_else(|| "null".to_string()),
            None => String::new(),
        };
        let gp = groups.entry(key).or_default();
        if gp.count == 0 {
            gp.first_keyval = a.group_by.and_then(|g| r.get(g)).cloned();
        }
        gp.count += 1;
        if numeric {
            if let Some(n) = a
                .field
                .and_then(|f| knactor_types::value::get_path(r, f))
                .and_then(Value::as_f64)
            {
                gp.nums.push(n);
            }
        }
        if matches!(a.agg, AggFn::Last) {
            gp.last_val = a
                .field
                .and_then(|f| knactor_types::value::get_path(r, f))
                .cloned();
        }
    }
    groups
}

/// Replay the row path's fold over the merged, order-preserving partials.
fn fold_merged(merged: BTreeMap<String, GroupPartial>, a: &AggSpec<'_>) -> Vec<Value> {
    let mut out = Vec::with_capacity(merged.len());
    for (key, gp) in merged {
        let folded = match a.agg {
            AggFn::Count => Value::from(gp.count as u64),
            AggFn::Sum => number(gp.nums.iter().sum()),
            AggFn::Avg => {
                if gp.nums.is_empty() {
                    Value::Null
                } else {
                    number(gp.nums.iter().sum::<f64>() / gp.nums.len() as f64)
                }
            }
            AggFn::Min => gp
                .nums
                .iter()
                .fold(None::<f64>, |acc, &n| Some(acc.map_or(n, |a| a.min(n))))
                .map(number)
                .unwrap_or(Value::Null),
            AggFn::Max => gp
                .nums
                .iter()
                .fold(None::<f64>, |acc, &n| Some(acc.map_or(n, |a| a.max(n))))
                .map(number)
                .unwrap_or(Value::Null),
            AggFn::Last => gp.last_val.clone().unwrap_or(Value::Null),
        };
        let mut obj = serde_json::Map::new();
        if let Some(g) = a.group_by {
            let key_val = gp.first_keyval.clone().unwrap_or(Value::String(key));
            obj.insert(g.clone(), key_val);
        }
        obj.insert(a.as_field.clone(), folded);
        out.push(Value::Object(obj));
    }
    out
}

/// Predicate outcome for one distinct column value.
#[derive(Clone, Copy, PartialEq)]
enum Verdict {
    Keep,
    Drop,
    Error,
}

fn verdict(expr: &Expr, field: &str, value: Option<&Value>, fns: &FnRegistry) -> Verdict {
    // One-field mini-record: equivalent to the full record for
    // expressions that only read this field (see `single_field`).
    let mut mini = serde_json::Map::new();
    if let Some(v) = value {
        mini.insert(field.to_string(), v.clone());
    }
    match eval_on(expr, &Value::Object(mini), fns) {
        Ok(v) if truthy(&v) => Verdict::Keep,
        Ok(_) => Verdict::Drop,
        Err(_) => Verdict::Error,
    }
}

/// Columnar fast path: filters evaluated per distinct dictionary value,
/// aggregation read straight off the columns — no row materialization.
fn run_columnar(
    col: &crate::columnar::ColumnarSegment,
    filters: &[(&Expr, String)],
    agg: Option<&AggSpec<'_>>,
    fns: &FnRegistry,
) -> SegOut {
    let len = col.len();
    let mut stats = QueryStats::default();
    // `None` = all rows selected; `Some(idx)` = sorted surviving rows.
    let mut selection: Option<Vec<u32>> = None;
    let start = Instant::now();
    for (expr, field) in filters {
        let column = col.column(field);
        match column {
            None => {
                // Field absent in every record: one verdict for all rows.
                match verdict(expr, field, None, fns) {
                    Verdict::Keep => {}
                    Verdict::Drop => selection = Some(Vec::new()),
                    Verdict::Error => {
                        stats.dropped_errors += selection.as_ref().map(|s| s.len()).unwrap_or(len);
                        selection = Some(Vec::new());
                    }
                }
            }
            Some(column) => {
                let codes = column.codes();
                // Evaluate once per distinct value (dictionary win); plain
                // columns degrade to once per row.
                let mut by_code: BTreeMap<u32, Verdict> = BTreeMap::new();
                for code in column.distinct_codes() {
                    by_code.insert(code, verdict(expr, field, column.code_value(code), fns));
                }
                let absent = if column.has_absent() {
                    verdict(expr, field, None, fns)
                } else {
                    Verdict::Drop // unused
                };
                let verdict_at = |row: usize| -> Verdict {
                    let code = codes[row];
                    if code == u32::MAX {
                        absent
                    } else {
                        by_code[&code]
                    }
                };
                let survivors: Vec<u32> = match &selection {
                    None => (0..len as u32).collect::<Vec<_>>(),
                    Some(sel) => sel.clone(),
                };
                let mut next = Vec::with_capacity(survivors.len());
                for i in survivors {
                    match verdict_at(i as usize) {
                        Verdict::Keep => next.push(i),
                        Verdict::Drop => {}
                        Verdict::Error => stats.dropped_errors += 1,
                    }
                }
                selection = Some(next);
            }
        }
    }
    if !filters.is_empty() {
        observe_op("columnar_filter", start);
    }

    let Some(a) = agg else {
        // No aggregate: materialize just the survivors.
        let rows = match &selection {
            None => col.materialize_all(),
            Some(idx) => col.materialize_selected(idx),
        };
        return SegOut {
            rows,
            groups: None,
            stats,
        };
    };

    let start = Instant::now();
    let groups = aggregate_columnar(col, selection.as_deref(), a);
    observe_op("columnar_aggregate", start);
    SegOut {
        rows: Vec::new(),
        groups: Some(groups),
        stats,
    }
}

/// Fold selected rows into partials straight off the columns.
fn aggregate_columnar(
    col: &crate::columnar::ColumnarSegment,
    selection: Option<&[u32]>,
    a: &AggSpec<'_>,
) -> BTreeMap<String, GroupPartial> {
    let len = col.len();
    let numeric = matches!(a.agg, AggFn::Sum | AggFn::Avg | AggFn::Min | AggFn::Max);

    // Group-key column: codes plus the rendered key / key value per code.
    let group_col = a.group_by.and_then(|g| col.column(g.as_str()));
    let group_codes = group_col.map(|c| c.codes());
    let mut key_by_code: BTreeMap<u32, String> = BTreeMap::new();
    if let Some(c) = group_col {
        for code in c.distinct_codes() {
            let v = c.code_value(code).expect("distinct code has a value");
            key_by_code.insert(code, render_group_key(v));
        }
    }

    // Fold-field column: the numeric input per code (the path may
    // descend below the column's top-level value).
    let field_head = a.field.and_then(|p| match p.segments.first() {
        Some(PathSeg::Field(f)) => Some((
            f.as_str(),
            FieldPath {
                segments: p.segments[1..].to_vec(),
            },
        )),
        None => None, // root path: whole record, never numeric → no input
        Some(PathSeg::Index(_)) => unreachable!("plan() rejects index-rooted folds"),
    });
    let field_col = field_head.as_ref().and_then(|(f, _)| col.column(f));
    let field_codes = field_col.map(|c| c.codes());
    let mut num_by_code: BTreeMap<u32, Option<f64>> = BTreeMap::new();
    if let (Some(c), Some((_, tail))) = (field_col, field_head.as_ref()) {
        for code in c.distinct_codes() {
            let v = c
                .code_value(code)
                .and_then(|v| knactor_types::value::get_path(v, tail));
            num_by_code.insert(code, v.and_then(Value::as_f64));
        }
    }
    let field_value_at = |row: usize| -> Option<Value> {
        let (c, tail) = match (field_col, field_head.as_ref()) {
            (Some(c), Some((_, tail))) => (c, tail),
            _ => return None,
        };
        let code = field_codes.as_ref().map(|codes| codes[row])?;
        c.code_value(code)
            .and_then(|v| knactor_types::value::get_path(v, tail))
            .cloned()
    };

    let mut groups: BTreeMap<String, GroupPartial> = BTreeMap::new();
    let mut visit = |row: usize| {
        let (key, keyval_code) = match (&group_codes, a.group_by) {
            (Some(codes), _) => {
                let code = codes[row];
                match key_by_code.get(&code) {
                    Some(k) => (k.clone(), Some(code)),
                    None => ("null".to_string(), None), // absent field
                }
            }
            (None, Some(_)) => ("null".to_string(), None), // column missing entirely
            (None, None) => (String::new(), None),
        };
        let gp = groups.entry(key).or_default();
        if gp.count == 0 {
            gp.first_keyval = keyval_code
                .and_then(|code| group_col.and_then(|c| c.code_value(code)))
                .cloned();
        }
        gp.count += 1;
        if numeric {
            let n = field_codes
                .as_ref()
                .and_then(|codes| num_by_code.get(&codes[row]).copied().flatten());
            if let Some(n) = n {
                gp.nums.push(n);
            }
        }
        if matches!(a.agg, AggFn::Last) {
            gp.last_val = field_value_at(row);
        }
    };
    match selection {
        None => (0..len).for_each(&mut visit),
        Some(sel) => sel.iter().for_each(|&i| visit(i as usize)),
    }
    groups
}

/// Run `f` over every unit on a small thread pool, preserving order.
fn map_parallel<T: Send>(units: &[SegUnit], f: &(dyn Fn(&SegUnit) -> T + Sync)) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(units.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<T>>> = (0..units.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= units.len() {
                    break;
                }
                *out[i].lock() = Some(f(&units[i]));
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.into_inner().expect("every unit was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        knactor_expr::parse_expr(src).unwrap()
    }

    #[test]
    fn single_field_detection() {
        assert_eq!(
            single_field(&parse("this.kind == \"energy\"")),
            Some("kind".into())
        );
        assert_eq!(
            single_field(&parse("this.kwh > 0.2 and this.kwh < 0.6")),
            Some("kwh".into())
        );
        // Nested member access below one top-level field still qualifies.
        assert_eq!(
            single_field(&parse("this.meta.room == \"hall\"")),
            Some("meta".into())
        );
        // Two fields, bare `this`, or non-`this` roots disqualify.
        assert_eq!(single_field(&parse("this.a == this.b")), None);
        assert_eq!(single_field(&parse("this == 3")), None);
        assert_eq!(
            single_field(&parse("len(this.items) > 1")),
            Some("items".into())
        );
    }

    #[test]
    fn plan_splits_around_aggregate() {
        let q = crate::query::Query::new()
            .filter("this.kind == \"energy\"")
            .unwrap()
            .aggregate(Some("room"), AggFn::Sum, Some("kwh"), "total")
            .unwrap()
            .sort("total", true)
            .unwrap();
        let p = plan(&q.ops);
        assert_eq!(p.prefix.len(), 1);
        assert!(p.agg.is_some());
        assert_eq!(p.rest.len(), 1);
        assert!(p.fast_filters.is_some());
    }

    #[test]
    fn plan_rejects_fast_path_on_rename() {
        let q = crate::query::Query::new()
            .rename("a", "b")
            .filter("this.b")
            .unwrap();
        let p = plan(&q.ops);
        assert_eq!(p.prefix.len(), 2);
        assert!(p.fast_filters.is_none());
    }
}
