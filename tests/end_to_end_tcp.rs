//! Whole-system integration over real TCP: the retail app deployed
//! against a remote exchange server, with every component talking
//! through the wire protocol.

use knactor::apps::retail::knactor_app::{self, RetailOptions};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

#[tokio::test]
async fn retail_flow_over_tcp_exchange() {
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::integrator("retail"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    let app = knactor_app::deploy(
        Arc::clone(&api),
        RetailOptions {
            shipment_processing: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .await
    .unwrap();

    let done = app
        .place_order("tcp-order", sample_order(1200.0), Duration::from_secs(15))
        .await
        .unwrap();
    assert_eq!(done["order"]["paymentID"], json!("pay-tcp-order"));
    assert_eq!(done["order"]["trackingID"], json!("track-tcp-order"));

    let shipment = api
        .get("shipping/state".into(), "tcp-order".into())
        .await
        .unwrap();
    assert_eq!(shipment.value["method"], json!("air"));

    app.shutdown().await;
    server.shutdown().await;
}

#[tokio::test]
async fn smart_home_over_tcp_exchange() {
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::integrator("home"))
        .await
        .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    let app = knactor::apps::smarthome::knactor_app::deploy(Arc::clone(&api))
        .await
        .unwrap();
    app.sense_motion(true).await.unwrap();
    app.wait_for_brightness(8.0, Duration::from_secs(10))
        .await
        .unwrap();
    app.sense_motion(false).await.unwrap();
    app.wait_for_brightness(0.0, Duration::from_secs(10))
        .await
        .unwrap();

    // Telemetry crossed the wire too: barrier on the log's own record
    // stream instead of polling reads on a timer.
    let recs =
        knactor::testkit::await_log_records(&api, "house/telemetry", 2, Duration::from_secs(10))
            .await
            .unwrap();
    assert_eq!(recs[0].fields, json!({"motion": true}));

    app.shutdown().await;
    server.shutdown().await;
}

#[tokio::test]
async fn mixed_transports_one_exchange() {
    // One client over TCP, one in-process loopback handle — both must
    // observe the same exchange state.
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    server
        .object
        .create_store(StoreId::new("shared/state"), EngineProfile::instant())
        .unwrap();

    let tcp = TcpClient::connect(server.local_addr(), Subject::operator("remote"))
        .await
        .unwrap();
    tcp.create("shared/state".into(), "k".into(), json!({"from": "tcp"}))
        .await
        .unwrap();

    let raw = server.object.store(&StoreId::new("shared/state")).unwrap();
    assert_eq!(
        raw.get(&ObjectKey::new("k")).unwrap().value,
        json!({"from": "tcp"})
    );

    raw.patch(&ObjectKey::new("k"), &json!({"seen": true}), false)
        .unwrap();
    let got = tcp.get("shared/state".into(), "k".into()).await.unwrap();
    assert_eq!(got.value, json!({"from": "tcp", "seen": true}));

    server.shutdown().await;
}
