//! The sharded multi-node exchange: N independent shard nodes behind one
//! [`ExchangeApi`].
//!
//! A [`ShardRouter`] owns a versioned [`ShardMap`] plus one client per
//! shard node and implements the whole [`ExchangeApi`] by routing:
//!
//! * **Key-routed ops** (create/get/update/patch/delete, consumer
//!   registration) go to the shard that owns `(store, key)` under the
//!   map's consistent hash.
//! * **Batches** are split by owning shard, scatter-gathered
//!   concurrently, and merged back **in input order**. A shard that fails
//!   wholesale (down, timed out, shed) surfaces as typed per-item errors
//!   for *its* items only — never a whole-batch abort — so callers keep
//!   the per-item recovery semantics they already have.
//! * **Watches** merge the per-shard revision streams into one
//!   subscription carrying dense *virtual* revisions (see below).
//! * **Store-routed ops**: a Log-DE store lives whole on one shard (its
//!   dense append sequence cannot be split), so every `log_*` call routes
//!   by store id.
//! * **Broadcast ops**: store/schema/UDF registration goes to every
//!   shard, since keys of any store may land anywhere.
//! * **Single-shard-only ops**: `transact` and `execute_udf` are atomic
//!   *within* one shard; a request whose keys span shards is rejected
//!   with a typed error rather than executed non-atomically.
//!
//! ## Virtual revisions
//!
//! Each shard's store revision is dense (+1 per commit), but a merged
//! subscription needs one ordered counter. The router numbers merged
//! events 1, 2, 3, … in delivery order and reports `list()` revisions as
//! the **sum** of the shard revisions — the two agree because every
//! commit bumps exactly one shard by exactly one. Resume cursors are the
//! per-shard revision vector behind a virtual revision; the router
//! remembers the decompositions it has handed out (via `list` or
//! delivered events) and a `watch(from)` for a revision it no longer
//! remembers returns [`Error::WatchTooOld`], pushing the caller through
//! the standard list-then-watch fallback that `ResilientClient` and Cast
//! already implement.
//!
//! Because per-shard clients are themselves `ExchangeApi` values, the
//! router composes with the rest of the stack: over TCP each shard client
//! is typically a [`crate::ResilientClient`], which gives per-shard
//! retry, per-op idempotent disambiguation, and per-shard watch resume —
//! so one flaky shard is retried without re-sending the other shards'
//! sub-batches.

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::client::{ResilientClient, RetryPolicy, TcpClient};
use crate::proto::{ProfileSpec, QuerySpec};
use crate::server::ExchangeServer;
use knactor_logstore::{LogExchange, LogRecord};
use knactor_rbac::Subject;
use knactor_store::udf::UdfAssignment;
use knactor_store::{
    BatchOp, DataExchange, ItemResult, ShardMap, StoredObject, TxOp, UdfBinding, WatchEvent,
};
use knactor_types::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
use knactor_types::{Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Virtual-revision decompositions remembered per store. Bounded so a
/// long-lived router doesn't grow without limit; a resume point older
/// than the window surfaces as `WatchTooOld` (the same contract a
/// single store's bounded watch history has).
const CURSOR_CACHE_CAP: usize = 8192;

type CursorCache = Mutex<HashMap<StoreId, BTreeMap<u64, Vec<u64>>>>;

fn remember_cursor(cache: &CursorCache, store: &StoreId, virtual_rev: u64, shard_revs: Vec<u64>) {
    let mut guard = cache.lock();
    let per_store = guard.entry(store.clone()).or_default();
    per_store.insert(virtual_rev, shard_revs);
    while per_store.len() > CURSOR_CACHE_CAP {
        per_store.pop_first();
    }
}

/// One logical exchange spread over N shard nodes.
pub struct ShardRouter {
    map: Arc<ShardMap>,
    shards: Vec<Arc<dyn ExchangeApi>>,
    cursors: Arc<CursorCache>,
}

impl ShardRouter {
    /// Route through the given per-shard clients. The client at index
    /// `i` must reach the node named `map.nodes()[i]`. Panics on a
    /// count mismatch; [`ShardRouter::try_new`] returns it typed.
    pub fn new(map: ShardMap, shards: Vec<Arc<dyn ExchangeApi>>) -> ShardRouter {
        ShardRouter::try_new(map, shards).expect("shard map / client count mismatch")
    }

    /// [`ShardRouter::new`] with the topology-mismatch failure surfaced
    /// as a typed error instead of a panic — the form control planes
    /// want when the map comes from configuration rather than code.
    ///
    /// Note the map is **pinned at construction**: a `rebalanced()`
    /// successor map is a new topology and needs a new router (plus a
    /// data migration this layer does not perform — see DESIGN.md §9).
    /// Mid-flight topology changes therefore surface as this typed
    /// error at the next construction, never as a silent misroute.
    pub fn try_new(map: ShardMap, shards: Vec<Arc<dyn ExchangeApi>>) -> Result<ShardRouter> {
        if map.shard_count() != shards.len() {
            return Err(Error::Internal(format!(
                "shard map names {} nodes but {} clients were supplied",
                map.shard_count(),
                shards.len()
            )));
        }
        Ok(ShardRouter {
            map: Arc::new(map),
            shards,
            cursors: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// A fully in-process sharded exchange: N loopback shard nodes, each
    /// with its own `DataExchange`/`LogExchange` (and WAL directory).
    pub fn in_process(
        shards: usize,
        subject: Subject,
    ) -> (Vec<Arc<DataExchange>>, Vec<Arc<LogExchange>>, ShardRouter) {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let base = std::env::temp_dir().join(format!(
            "knactor-shards-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let mut objects = Vec::with_capacity(shards);
        let mut logs = Vec::with_capacity(shards);
        let mut clients: Vec<Arc<dyn ExchangeApi>> = Vec::with_capacity(shards);
        for i in 0..shards {
            let object = Arc::new(DataExchange::new());
            let log = Arc::new(LogExchange::new());
            let client = crate::loopback::LoopbackClient::new(
                Arc::clone(&object),
                Arc::clone(&log),
                subject.clone(),
            )
            .with_data_dir(base.join(format!("shard-{i}")));
            objects.push(object);
            logs.push(log);
            clients.push(Arc::new(client));
        }
        (
            objects,
            logs,
            ShardRouter::new(ShardMap::uniform(shards), clients),
        )
    }

    /// Route over plain [`TcpClient`]s, one per shard address.
    pub async fn connect_tcp(
        map: ShardMap,
        addrs: &[SocketAddr],
        subject: Subject,
    ) -> Result<ShardRouter> {
        let mut shards: Vec<Arc<dyn ExchangeApi>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            shards.push(Arc::new(TcpClient::connect(*addr, subject.clone()).await?));
        }
        Ok(ShardRouter::new(map, shards))
    }

    /// Route over per-shard [`ResilientClient`]s: each shard gets its own
    /// retry/backoff state and watch-resume machinery, so a fault on one
    /// shard retries only that shard's traffic.
    pub async fn connect_resilient(
        map: ShardMap,
        addrs: &[SocketAddr],
        subject: Subject,
        policy: RetryPolicy,
    ) -> Result<ShardRouter> {
        let mut shards: Vec<Arc<dyn ExchangeApi>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            shards.push(Arc::new(
                ResilientClient::connect(*addr, subject.clone(), policy).await?,
            ));
        }
        Ok(ShardRouter::new(map, shards))
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard client owning `(store, key)` — exposed for tests that
    /// need to aim a fault at the right node.
    pub fn shard_of_key(&self, store: &StoreId, key: &ObjectKey) -> usize {
        self.map.owner_of_key(store.as_str(), key.as_str())
    }

    pub fn shard_of_store(&self, store: &StoreId) -> usize {
        self.map.owner_of_store(store.as_str())
    }

    fn key_shard(&self, store: &StoreId, key: &ObjectKey) -> &Arc<dyn ExchangeApi> {
        &self.shards[self.shard_of_key(store, key)]
    }

    fn store_shard(&self, store: &StoreId) -> &Arc<dyn ExchangeApi> {
        &self.shards[self.shard_of_store(store)]
    }

    /// Scatter a batch split across shards and merge per-item results
    /// back in input order. `chunks[i]` holds (input index, payload)
    /// pairs for shard `i`; `call` runs one shard's sub-batch.
    async fn scatter_items<P, F>(
        &self,
        total: usize,
        chunks: Vec<Vec<(usize, P)>>,
        call: F,
    ) -> Vec<ItemResult>
    where
        P: Send + 'static,
        F: Fn(Arc<dyn ExchangeApi>, Vec<P>) -> BoxFuture<'static, Result<Vec<ItemResult>>>,
    {
        // Fast path: the whole batch lands on one shard (the common case
        // for partition-aligned producers and small key ranges). Call it
        // inline — no task spawn, no index remap, one wire round trip.
        if chunks.iter().filter(|c| !c.is_empty()).count() == 1 {
            let (shard, chunk) = chunks
                .into_iter()
                .enumerate()
                .find(|(_, c)| !c.is_empty())
                .expect("one non-empty chunk");
            let payloads: Vec<P> = chunk.into_iter().map(|(_, p)| p).collect();
            return match call(Arc::clone(&self.shards[shard]), payloads).await {
                Ok(items) if items.len() == total => items,
                Ok(_) => (0..total)
                    .map(|_| {
                        ItemResult::from_error(&Error::Internal(
                            "shard returned a short batch".into(),
                        ))
                    })
                    .collect(),
                Err(e) => (0..total).map(|_| ItemResult::from_error(&e)).collect(),
            };
        }

        let mut handles = Vec::new();
        for (shard, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            let (idxs, payloads): (Vec<usize>, Vec<P>) = chunk.into_iter().unzip();
            let fut = call(Arc::clone(&self.shards[shard]), payloads);
            handles.push((idxs, tokio::spawn(fut)));
        }
        let mut out: Vec<Option<ItemResult>> = (0..total).map(|_| None).collect();
        for (idxs, handle) in handles {
            let result = handle
                .await
                .unwrap_or_else(|_| Err(Error::Internal("shard sub-batch task died".into())));
            match result {
                Ok(items) => {
                    let mut items = items.into_iter();
                    for &i in &idxs {
                        out[i] = Some(items.next().unwrap_or_else(|| {
                            ItemResult::from_error(&Error::Internal(
                                "shard returned a short batch".into(),
                            ))
                        }));
                    }
                }
                // The whole sub-batch failed (shard down, timed out,
                // shed): typed per-item errors for this shard's items
                // only; the other shards' results stand.
                Err(e) => {
                    for &i in &idxs {
                        out[i] = Some(ItemResult::from_error(&e));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every input index assigned to exactly one shard"))
            .collect()
    }
}

impl ExchangeApi for ShardRouter {
    // ---- broadcast ops: every shard may come to own this store's keys ----

    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            for shard in &self.shards {
                shard.create_store(store.clone(), profile.clone()).await?;
            }
            Ok(())
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            for shard in &self.shards {
                shard.register_schema(schema.clone()).await?;
            }
            Ok(())
        })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            for shard in &self.shards {
                shard.bind_schema(store.clone(), schema.clone()).await?;
            }
            Ok(())
        })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        // Registration broadcast to all shards, so any shard can answer.
        self.shards[0].get_schema(schema)
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            for shard in &self.shards {
                shard
                    .register_udf(name.clone(), inputs.clone(), assignments.clone())
                    .await?;
            }
            Ok(())
        })
    }

    // ---- key-routed ops ----

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        self.key_shard(&store, &key).create(store, key, value)
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        self.key_shard(&store, &key).get(store, key)
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        self.key_shard(&store, &key)
            .update(store, key, value, expected)
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        self.key_shard(&store, &key)
            .patch(store, key, patch, upsert)
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        self.key_shard(&store, &key).delete(store, key)
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        self.key_shard(&store, &key)
            .register_consumer(store, key, consumer)
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        self.key_shard(&store, &key)
            .mark_processed(store, key, consumer)
    }

    // ---- scatter-gather ----

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            let mut handles = Vec::with_capacity(self.shards.len());
            for shard in &self.shards {
                let api = Arc::clone(shard);
                let store = store.clone();
                handles.push(tokio::spawn(async move { api.list(store).await }));
            }
            let mut objects = Vec::new();
            let mut shard_revs = vec![0u64; self.shards.len()];
            for (i, handle) in handles.into_iter().enumerate() {
                let (objs, rev) = handle
                    .await
                    .unwrap_or_else(|_| Err(Error::Internal("shard list task died".into())))?;
                shard_revs[i] = rev.0;
                objects.extend(objs);
            }
            objects.sort_by(|a, b| a.key.cmp(&b.key));
            let virtual_rev: u64 = shard_revs.iter().sum();
            // A listing is a resume point: remember its decomposition so
            // the list-then-watch fallback can pick up from here.
            remember_cursor(&self.cursors, &store, virtual_rev, shard_revs);
            Ok((objects, Revision(virtual_rev)))
        })
    }

    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let total = keys.len();
            let mut chunks: Vec<Vec<(usize, ObjectKey)>> =
                (0..self.shards.len()).map(|_| Vec::new()).collect();
            for (i, key) in keys.into_iter().enumerate() {
                chunks[self.shard_of_key(&store, &key)].push((i, key));
            }
            Ok(self
                .scatter_items(total, chunks, move |api, keys| {
                    let store = store.clone();
                    Box::pin(async move { api.batch_get(store, keys).await })
                })
                .await)
        })
    }

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let total = ops.len();
            let mut chunks: Vec<Vec<(usize, BatchOp)>> =
                (0..self.shards.len()).map(|_| Vec::new()).collect();
            for (i, op) in ops.into_iter().enumerate() {
                chunks[self.shard_of_key(&store, op.key())].push((i, op));
            }
            Ok(self
                .scatter_items(total, chunks, move |api, ops| {
                    let store = store.clone();
                    Box::pin(async move { api.batch_commit(store, ops).await })
                })
                .await)
        })
    }

    // ---- merged watch ----

    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let n = self.shards.len();
            let start: Vec<u64> = if from.0 == 0 {
                vec![0; n]
            } else {
                let found = self
                    .cursors
                    .lock()
                    .get(&store)
                    .and_then(|per| per.get(&from.0))
                    .cloned();
                match found {
                    Some(revs) => revs,
                    None => {
                        // We no longer remember how `from` decomposes
                        // into per-shard cursors; send the caller through
                        // the standard re-list fallback (its `list` will
                        // seed a fresh decomposition).
                        let oldest = self
                            .cursors
                            .lock()
                            .get(&store)
                            .and_then(|per| per.keys().next().copied())
                            .unwrap_or(0);
                        return Err(Error::WatchTooOld {
                            from: from.0,
                            oldest,
                        });
                    }
                }
            };

            // Subscribe every shard before forwarding anything, so no
            // shard's events race the subscription of another.
            let (merge_tx, mut merge_rx) = mpsc::unbounded_channel::<(usize, WatchEvent)>();
            for (i, &cursor) in start.iter().enumerate() {
                let mut sub = self.shards[i]
                    .watch(store.clone(), Revision(cursor))
                    .await?;
                let tx = merge_tx.clone();
                tokio::spawn(async move {
                    while let Some(event) = sub.recv().await {
                        if tx.send((i, event)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(merge_tx);

            let (out_tx, out_rx) = mpsc::unbounded_channel();
            let cursors = Arc::clone(&self.cursors);
            let mut shard_revs = start;
            let mut virtual_rev = from.0;
            tokio::spawn(async move {
                while let Some((shard, mut event)) = merge_rx.recv().await {
                    shard_revs[shard] = event.revision.0;
                    virtual_rev += 1;
                    event.revision = Revision(virtual_rev);
                    remember_cursor(&cursors, &store, virtual_rev, shard_revs.clone());
                    if out_tx.send(event).is_err() {
                        break;
                    }
                }
            });
            Ok(out_rx)
        })
    }

    // ---- single-shard-only ops ----

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            let Some(first) = ops.first() else {
                return Ok(Vec::new());
            };
            let shard = self.shard_of_key(&first.store, &first.key);
            for op in &ops {
                let s = self.shard_of_key(&op.store, &op.key);
                if s != shard {
                    return Err(Error::Internal(format!(
                        "cross-shard transact: {}/{} lives on shard {shard} but {}/{} on shard \
                         {s}; transactions are atomic only within one shard",
                        first.store, first.key, op.store, op.key
                    )));
                }
            }
            self.shards[shard].transact(ops).await
        })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            let Some(first) = bindings.first() else {
                return self.shards[0].execute_udf(name, bindings).await;
            };
            let shard = self.shard_of_key(&first.store, &first.key);
            for b in &bindings {
                let s = self.shard_of_key(&b.store, &b.key);
                if s != shard {
                    return Err(Error::Internal(format!(
                        "cross-shard udf {name}: {}/{} lives on shard {shard} but {}/{} on \
                         shard {s}; pushdown executes atomically only within one shard",
                        first.store, first.key, b.store, b.key
                    )));
                }
            }
            self.shards[shard].execute_udf(name, bindings).await
        })
    }

    // ---- store-routed ops (Log-DE stores live whole on one shard) ----

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        self.store_shard(&store).log_create_store(store)
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        self.store_shard(&store).log_append(store, fields)
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        self.store_shard(&store).log_append_batch(store, batch)
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        self.store_shard(&store).log_read(store, from)
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        self.store_shard(&store).log_query(store, query)
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        self.store_shard(&store).log_tail(store, from)
    }

    // ---- observability ----

    fn metrics(&self) -> BoxFuture<'_, Result<MetricsSnapshot>> {
        Box::pin(async move {
            let mut parts = Vec::with_capacity(self.shards.len());
            for shard in &self.shards {
                parts.push(shard.metrics().await?);
            }
            Ok(merge_snapshots(parts))
        })
    }
}

/// Merge per-shard registry snapshots into one cluster view: counters and
/// gauges sum by (name, labels); histograms with identical bounds add
/// bucket-wise. (When shards are colocated in one test process they share
/// one registry, so the merge multiplies by the shard count — in the
/// deployment this models, each shard node is its own process.)
pub fn merge_snapshots(parts: Vec<MetricsSnapshot>) -> MetricsSnapshot {
    let mut counters: BTreeMap<(String, Vec<(String, String)>), u64> = BTreeMap::new();
    let mut gauges: BTreeMap<(String, Vec<(String, String)>), i64> = BTreeMap::new();
    let mut histograms: BTreeMap<(String, Vec<(String, String)>), HistogramSnapshot> =
        BTreeMap::new();
    for part in parts {
        for c in part.counters {
            *counters.entry((c.name, c.labels)).or_insert(0) += c.value;
        }
        for g in part.gauges {
            *gauges.entry((g.name, g.labels)).or_insert(0) += g.value;
        }
        for h in part.histograms {
            match histograms.entry((h.name.clone(), h.labels.clone())) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(h);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let acc = slot.get_mut();
                    if acc.bounds_ns == h.bounds_ns && acc.buckets.len() == h.buckets.len() {
                        for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                            *a += b;
                        }
                        acc.count += h.count;
                        acc.sum_ns += h.sum_ns;
                        acc.min_ns = acc.min_ns.min(h.min_ns);
                        acc.max_ns = acc.max_ns.max(h.max_ns);
                    }
                }
            }
        }
    }
    MetricsSnapshot {
        counters: counters
            .into_iter()
            .map(|((name, labels), value)| CounterSnapshot {
                name,
                labels,
                value,
            })
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|((name, labels), value)| GaugeSnapshot {
                name,
                labels,
                value,
            })
            .collect(),
        histograms: histograms.into_values().collect(),
    }
}

/// A multi-node exchange for tests, benches, and `knactorctl serve`: N
/// [`ExchangeServer`]s (each its own `DataExchange` + `LogExchange` +
/// WAL directory — a shard *node*) plus the [`ShardMap`] naming them.
pub struct ShardedExchange {
    servers: Vec<ExchangeServer>,
    map: ShardMap,
}

impl ShardedExchange {
    /// Launch `shards` nodes on ephemeral localhost ports.
    pub async fn launch(shards: usize) -> Result<ShardedExchange> {
        let mut servers = Vec::with_capacity(shards);
        for _ in 0..shards {
            servers.push(ExchangeServer::bind_ephemeral().await?);
        }
        Ok(ShardedExchange {
            servers,
            map: ShardMap::uniform(shards),
        })
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.local_addr()).collect()
    }

    pub fn servers(&self) -> &[ExchangeServer] {
        &self.servers
    }

    /// A plain-TCP router onto this exchange.
    pub async fn client(&self, subject: Subject) -> Result<ShardRouter> {
        ShardRouter::connect_tcp(self.map.clone(), &self.addrs(), subject).await
    }

    /// A router over per-shard resilient clients.
    pub async fn resilient_client(
        &self,
        subject: Subject,
        policy: RetryPolicy,
    ) -> Result<ShardRouter> {
        ShardRouter::connect_resilient(self.map.clone(), &self.addrs(), subject, policy).await
    }

    pub async fn shutdown(self) {
        for server in self.servers {
            server.shutdown().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn key(i: u64) -> ObjectKey {
        ObjectKey::new(format!("k-{i}"))
    }

    #[tokio::test]
    async fn key_ops_round_trip_through_the_router() {
        let (_, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("r/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        for i in 0..32 {
            router
                .create(store.clone(), key(i), json!({"n": i}))
                .await
                .unwrap();
        }
        for i in 0..32 {
            let obj = router.get(store.clone(), key(i)).await.unwrap();
            assert_eq!(obj.value["n"], json!(i));
        }
        let (objects, revision) = router.list(store.clone()).await.unwrap();
        assert_eq!(objects.len(), 32);
        assert_eq!(
            revision,
            Revision(32),
            "virtual revision sums shard revisions"
        );
        // The listing is key-sorted like a single store's.
        let mut keys: Vec<_> = objects.iter().map(|o| o.key.clone()).collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort();
            k
        };
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), 32);
    }

    #[tokio::test]
    async fn writes_actually_spread_across_shards() {
        let (objects, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("spread/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        for i in 0..64 {
            router
                .create(store.clone(), key(i), json!({"n": i}))
                .await
                .unwrap();
        }
        let populated = objects
            .iter()
            .filter(|o| o.store(&store).map(|s| s.len() > 0).unwrap_or(false))
            .count();
        assert!(
            populated >= 3,
            "64 keys landed on only {populated} of 4 shards"
        );
    }

    #[tokio::test]
    async fn merged_watch_is_dense_and_resumable() {
        let (_, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("w/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        let mut sub = router.watch(store.clone(), Revision::ZERO).await.unwrap();
        for i in 0..20 {
            router
                .create(store.clone(), key(i), json!({"n": i}))
                .await
                .unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..20 {
            seen.push(sub.recv().await.unwrap());
        }
        let revisions: Vec<u64> = seen.iter().map(|e| e.revision.0).collect();
        assert_eq!(revisions, (1..=20).collect::<Vec<_>>());

        // Resume mid-stream from a delivered virtual revision: the rest
        // of the stream replays exactly once.
        let mut resumed = router.watch(store.clone(), Revision(12)).await.unwrap();
        let mut replayed = Vec::new();
        for _ in 0..8 {
            replayed.push(resumed.recv().await.unwrap());
        }
        assert_eq!(
            replayed.iter().map(|e| e.revision.0).collect::<Vec<_>>(),
            (13..=20).collect::<Vec<_>>()
        );
        let mut original: Vec<_> = seen[12..].iter().map(|e| e.key.clone()).collect();
        let mut resumed_keys: Vec<_> = replayed.iter().map(|e| e.key.clone()).collect();
        original.sort();
        resumed_keys.sort();
        assert_eq!(original, resumed_keys);
    }

    #[tokio::test]
    async fn watch_from_forgotten_revision_is_watch_too_old() {
        let (_, _, router) = ShardRouter::in_process(2, Subject::integrator("t"));
        let store = StoreId::new("old/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        // Revision 7 was never handed out by this router.
        let err = router.watch(store.clone(), Revision(7)).await.unwrap_err();
        assert!(matches!(err, Error::WatchTooOld { from: 7, .. }), "{err}");
        // After a list, the listing revision is a valid resume point.
        router
            .create(store.clone(), key(1), json!({"n": 1}))
            .await
            .unwrap();
        let (_, revision) = router.list(store.clone()).await.unwrap();
        router.watch(store.clone(), revision).await.unwrap();
    }

    #[tokio::test]
    async fn batches_split_and_merge_in_input_order() {
        let (_, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("b/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        let ops: Vec<BatchOp> = (0..40)
            .map(|i| BatchOp::Create {
                key: key(i),
                value: json!({"n": i}),
            })
            .collect();
        let items = router.batch_commit(store.clone(), ops).await.unwrap();
        assert_eq!(items.len(), 40);
        assert!(items.iter().all(|i| !i.is_err()));
        // Mixed batch: an existing create fails per-item, the rest land.
        let ops = vec![
            BatchOp::Create {
                key: key(0),
                value: json!({"dup": true}),
            },
            BatchOp::Patch {
                key: key(1),
                patch: json!({"patched": true}),
                upsert: false,
            },
            BatchOp::Delete { key: key(2) },
        ];
        let items = router.batch_commit(store.clone(), ops).await.unwrap();
        assert_eq!(
            items[0].as_error().map(|e| e.code()),
            Some("already_exists"),
            "{items:?}"
        );
        assert!(!items[1].is_err());
        assert!(!items[2].is_err());
        // Reads come back in request order, misses as typed items.
        let results = router
            .batch_get(store.clone(), vec![key(1), key(2), key(3)])
            .await
            .unwrap();
        assert_eq!(
            results[0].clone().into_object().unwrap().value["patched"],
            json!(true)
        );
        assert_eq!(results[1].as_error().map(|e| e.code()), Some("not_found"));
        assert_eq!(
            results[2].clone().into_object().unwrap().value["n"],
            json!(3)
        );
    }

    #[tokio::test]
    async fn cross_shard_transact_is_rejected_with_a_typed_error() {
        let (_, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("tx/state");
        router
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        // Find two keys on different shards.
        let mut a = None;
        let mut b = None;
        for i in 0..64 {
            let k = key(i);
            let shard = router.shard_of_key(&store, &k);
            if a.is_none() {
                a = Some((k, shard));
            } else if shard != a.as_ref().unwrap().1 {
                b = Some((k, shard));
                break;
            }
        }
        let (ka, _) = a.unwrap();
        let (kb, _) = b.unwrap();
        let cross = vec![
            TxOp {
                store: store.clone(),
                key: ka.clone(),
                patch: json!({"x": 1}),
                upsert: true,
                expected: None,
            },
            TxOp {
                store: store.clone(),
                key: kb,
                patch: json!({"x": 2}),
                upsert: true,
                expected: None,
            },
        ];
        let err = router.transact(cross).await.unwrap_err();
        assert!(
            format!("{err}").contains("cross-shard"),
            "wrong error: {err}"
        );
        // Single-shard transactions still work.
        let single = vec![TxOp {
            store: store.clone(),
            key: ka.clone(),
            patch: json!({"x": 3}),
            upsert: true,
            expected: None,
        }];
        router.transact(single).await.unwrap();
        assert_eq!(
            router.get(store.clone(), ka).await.unwrap().value["x"],
            json!(3)
        );
    }

    #[tokio::test]
    async fn log_stores_stay_dense_on_one_shard() {
        let (_, _, router) = ShardRouter::in_process(4, Subject::integrator("t"));
        let store = StoreId::new("t/telemetry");
        router.log_create_store(store.clone()).await.unwrap();
        for i in 0..10 {
            let seq = router
                .log_append(store.clone(), json!({"n": i}))
                .await
                .unwrap();
            assert_eq!(seq, i + 1, "append sequence must stay dense");
        }
        let records = router.log_read(store.clone(), 0).await.unwrap();
        assert_eq!(records.len(), 10);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_buckets() {
        let a = MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "ops".into(),
                labels: vec![("k".into(), "v".into())],
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "depth".into(),
                labels: vec![],
                value: 2,
            }],
            histograms: vec![HistogramSnapshot {
                name: "lat".into(),
                labels: vec![],
                bounds_ns: vec![10, 100],
                buckets: vec![1, 2, 0],
                count: 3,
                sum_ns: 60,
                min_ns: 5,
                max_ns: 90,
            }],
        };
        let mut b = a.clone();
        b.counters[0].value = 4;
        b.histograms[0].min_ns = 2;
        let merged = merge_snapshots(vec![a, b]);
        assert_eq!(merged.counters[0].value, 7);
        assert_eq!(merged.gauges[0].value, 4);
        assert_eq!(merged.histograms[0].count, 6);
        assert_eq!(merged.histograms[0].buckets, vec![2, 4, 0]);
        assert_eq!(merged.histograms[0].min_ns, 2);
    }
}
