//! Row/columnar/compaction parity for every Query combinator.
//!
//! `Query::run_store` (parallel, columnar fast paths) must return results
//! bit-identical to the row-oriented reference path — `Query::run_with`
//! over `read_all()` payloads — on a row-configured store, a columnar
//! store, and a store whose segments are being compacted *while the
//! queries run*. Stats (dropped-record counters) must match too: the
//! layout is never allowed to change what a query observes.

use knactor_expr::FnRegistry;
use knactor_logstore::{AggFn, CompactionPolicy, LogConfig, LogStore, Query};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// SplitMix64 (same idiom as prop_expr.rs) — deterministic telemetry.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Telemetry-shaped but deliberately heterogeneous: `n` is occasionally a
/// string (so filters/derives hit eval errors and bump drop counters),
/// fields go missing, and `kwh` mixes ints and floats.
fn telemetry(n_records: usize) -> Vec<Value> {
    let mut rng = SplitMix(0x7061_7269_7479_2121);
    (0..n_records)
        .map(|i| {
            let mut map = serde_json::Map::new();
            map.insert(
                "room",
                json!(["kitchen", "hall", "garage"][rng.below(3) as usize]),
            );
            if rng.below(10) > 0 {
                map.insert("kind", json!(["energy", "motion"][rng.below(2) as usize]));
            }
            match rng.below(12) {
                0 => {
                    map.insert("n", json!("not-a-number"));
                }
                1 => {}
                _ => {
                    map.insert("n", json!(rng.below(100) as i64 - 50));
                }
            }
            if rng.below(2) == 0 {
                map.insert("kwh", json!(rng.below(80) as f64 / 16.0));
            } else {
                map.insert("kwh", json!(rng.below(5)));
            }
            map.insert("i", json!(i));
            Value::Object(map)
        })
        .collect()
}

/// Every combinator alone plus representative pipelines.
fn query_suite() -> Vec<(&'static str, Query)> {
    let agg = |g: Option<&str>, f: AggFn, field: Option<&str>, out: &str| {
        Query::new().aggregate(g, f, field, out).unwrap()
    };
    vec![
        ("empty", Query::new()),
        ("filter", Query::new().filter("this.n > 0").unwrap()),
        (
            "filter_string_eq",
            Query::new().filter("this.room == \"kitchen\"").unwrap(),
        ),
        // `and` chains split into per-field fast-path stages; parity
        // must hold including error drops on the heterogeneous `n`.
        (
            "filter_conjunction",
            Query::new()
                .filter("this.kind == \"energy\" and this.kwh > 2")
                .unwrap(),
        ),
        (
            "filter_conjunction_error",
            Query::new().filter("this.n > 0 and this.kwh > 1").unwrap(),
        ),
        (
            "filter_or_two_fields",
            Query::new().filter("this.n > 40 or this.kwh > 3").unwrap(),
        ),
        ("rename", Query::new().rename("kind", "event")),
        ("project", Query::new().project(["room", "kwh"])),
        (
            "derive",
            Query::new().derive("wh", "this.kwh * 1000").unwrap(),
        ),
        ("sort_asc", Query::new().sort("n", false).unwrap()),
        ("sort_desc", Query::new().sort("kwh", true).unwrap()),
        ("limit", Query::new().limit(17)),
        ("agg_count", agg(None, AggFn::Count, None, "total")),
        ("agg_sum", agg(None, AggFn::Sum, Some("kwh"), "kwh_sum")),
        ("agg_avg", agg(None, AggFn::Avg, Some("n"), "n_avg")),
        ("agg_min", agg(None, AggFn::Min, Some("n"), "n_min")),
        ("agg_max", agg(None, AggFn::Max, Some("kwh"), "kwh_max")),
        ("agg_last", agg(None, AggFn::Last, Some("i"), "last_i")),
        (
            "group_count",
            agg(Some("room"), AggFn::Count, None, "total"),
        ),
        (
            "group_sum",
            agg(Some("room"), AggFn::Sum, Some("kwh"), "kwh_sum"),
        ),
        (
            "group_avg",
            agg(Some("kind"), AggFn::Avg, Some("n"), "n_avg"),
        ),
        (
            "group_last",
            agg(Some("room"), AggFn::Last, Some("i"), "last_i"),
        ),
        (
            "filter_then_group",
            Query::new()
                .filter("this.kind == \"energy\"")
                .unwrap()
                .aggregate(Some("room"), AggFn::Sum, Some("kwh"), "kwh_sum")
                .unwrap(),
        ),
        (
            "rename_project_filter",
            Query::new()
                .rename("kind", "event")
                .project(["event", "n", "room"])
                .filter("this.n >= -10")
                .unwrap(),
        ),
        (
            "derive_sort_limit",
            Query::new()
                .derive("wh", "this.kwh * 1000")
                .unwrap()
                .sort("wh", true)
                .unwrap()
                .limit(9),
        ),
        (
            "group_then_sort",
            Query::new()
                .aggregate(Some("room"), AggFn::Avg, Some("kwh"), "kwh_avg")
                .unwrap()
                .sort("kwh_avg", true)
                .unwrap(),
        ),
    ]
}

fn assert_parity(store: &LogStore, label: &str) {
    let fns = FnRegistry::standard();
    let reference: Vec<Value> = store.read_all().into_iter().map(|r| r.fields).collect();
    for (name, q) in query_suite() {
        let want = q.run_with(reference.iter().cloned(), &fns).unwrap();
        let got = q.run_store_with(store, &fns).unwrap();
        assert_eq!(
            got.0, want.0,
            "{label}/{name}: run_store rows must match row-path reference"
        );
        assert_eq!(
            got.1, want.1,
            "{label}/{name}: drop counters must match row-path reference"
        );
    }
}

fn fill(store: &LogStore, records: &[Value]) {
    for r in records {
        store.append(r.clone());
    }
}

#[test]
fn row_store_matches_reference() {
    let store = LogStore::with_config(
        "parity/row",
        LogConfig {
            segment_capacity: 64,
            columnar: false,
            compaction: None,
            ..Default::default()
        },
    );
    fill(&store, &telemetry(700));
    assert_parity(&store, "row");
}

#[test]
fn columnar_store_matches_reference() {
    let store = LogStore::with_config(
        "parity/col",
        LogConfig {
            segment_capacity: 64,
            columnar: true,
            compaction: None,
            ..Default::default()
        },
    );
    fill(&store, &telemetry(700));
    assert_parity(&store, "columnar");
}

#[test]
fn columnar_and_row_rows_are_bit_identical() {
    // Same data, two layouts, one query suite: outputs must agree with
    // each other, not merely each with its own snapshot.
    let records = telemetry(500);
    let row = LogStore::with_config(
        "parity/row2",
        LogConfig {
            segment_capacity: 32,
            columnar: false,
            compaction: None,
            ..Default::default()
        },
    );
    let col = LogStore::with_config(
        "parity/col2",
        LogConfig {
            segment_capacity: 32,
            columnar: true,
            compaction: None,
            ..Default::default()
        },
    );
    fill(&row, &records);
    fill(&col, &records);
    let fns = FnRegistry::standard();
    for (name, q) in query_suite() {
        let a = q.run_store_with(&row, &fns).unwrap();
        let b = q.run_store_with(&col, &fns).unwrap();
        assert_eq!(a.0, b.0, "{name}: row vs columnar rows diverged");
        assert_eq!(a.1, b.1, "{name}: row vs columnar stats diverged");
    }
}

#[test]
fn queries_racing_compaction_match_reference() {
    // Tiny segments so compaction always has candidate runs, and a rival
    // thread splicing merges in while the suite runs. Every query must
    // still match the row-path reference computed from its own snapshot.
    let store = LogStore::with_config(
        "parity/compact",
        LogConfig {
            segment_capacity: 16,
            columnar: true,
            compaction: Some(CompactionPolicy {
                min_segments: 2,
                target_records: 64,
            }),
            ..Default::default()
        },
    );
    fill(&store, &telemetry(900));

    let stop = Arc::new(AtomicBool::new(false));
    let rival = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.compact_now();
                std::thread::yield_now();
            }
        })
    };

    // Interleave appends with full suite passes so sealing, background
    // compaction, and the rival thread all overlap query execution.
    let extra = telemetry(300);
    for chunk in extra.chunks(100) {
        for r in chunk {
            store.append(r.clone());
        }
        assert_parity(&store, "mid-compaction");
    }

    stop.store(true, Ordering::Relaxed);
    rival.join().unwrap();

    // After quiescence the merged layout still matches.
    store.compact_now();
    assert_parity(&store, "post-compaction");
    let (sealed, _) = store.segment_counts();
    assert!(sealed < 1200 / 16, "compaction must actually have merged");
}
