//! Deterministic synchronization helpers for integration tests.
//!
//! Polling a store with `sleep` in a loop makes tests timing-sensitive:
//! too short a sleep burns CPU, too long misses deadlines on loaded CI
//! machines, and every poll is a race against the writer. These barriers
//! synchronize on the store's **revision stream** instead — a watch from
//! `Revision::ZERO` replays committed history and then follows live
//! commits, so the condition is observed the moment its commit exists,
//! with no sampling gap. The only timing left is the outer deadline, and
//! that exists purely to fail fast when the condition never comes.

use knactor_logstore::LogRecord;
use knactor_net::ExchangeApi;
use knactor_types::{Error, ObjectKey, Result, Revision, StoreId, Value};
use std::sync::Arc;
use std::time::Duration;

/// Wait until any object in `store` satisfies `pred`, returning the
/// matching key and value. Observes every committed state (replayed
/// history first, then live events), so a condition that held at *any*
/// commit is found even if later commits changed the value again.
pub async fn await_store_state(
    api: &Arc<dyn ExchangeApi>,
    store: impl Into<StoreId>,
    limit: Duration,
    pred: impl Fn(&ObjectKey, &Value) -> bool,
) -> Result<(ObjectKey, Arc<Value>)> {
    let store = store.into();
    let mut rx = api.watch(store.clone(), Revision::ZERO).await?;
    let found = tokio::time::timeout(limit, async move {
        while let Some(event) = rx.recv().await {
            if pred(&event.key, &event.value) {
                return Some((event.key, event.value));
            }
        }
        None
    })
    .await
    .map_err(|_| Error::Timeout(format!("condition not reached in {store} within {limit:?}")))?;
    found.ok_or_else(|| Error::Transport(format!("watch on {store} closed before condition")))
}

/// Wait until `key` in `store` satisfies `pred` (see
/// [`await_store_state`]).
pub async fn await_object_state(
    api: &Arc<dyn ExchangeApi>,
    store: impl Into<StoreId>,
    key: impl Into<ObjectKey>,
    limit: Duration,
    pred: impl Fn(&Value) -> bool,
) -> Result<Arc<Value>> {
    let key = key.into();
    let (_, value) = await_store_state(api, store, limit, |k, v| *k == key && pred(v)).await?;
    Ok(value)
}

/// Wait until `store`'s log holds at least `count` records, returning the
/// first `count` in sequence order. Tails from the beginning, so records
/// appended before the call are counted too.
pub async fn await_log_records(
    api: &Arc<dyn ExchangeApi>,
    store: impl Into<StoreId>,
    count: usize,
    limit: Duration,
) -> Result<Vec<LogRecord>> {
    let store = store.into();
    let mut rx = api.log_tail(store.clone(), 0).await?;
    let records = tokio::time::timeout(limit, async move {
        let mut records = Vec::with_capacity(count);
        while records.len() < count {
            match rx.recv_record().await {
                Some(record) => records.push(record),
                None => break,
            }
        }
        records
    })
    .await
    .map_err(|_| {
        Error::Timeout(format!(
            "log {store} did not reach {count} records within {limit:?}"
        ))
    })?;
    if records.len() < count {
        return Err(Error::Transport(format!(
            "tail on {store} closed after {} of {count} records",
            records.len()
        )));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::ProfileSpec;
    use knactor_rbac::Subject;
    use serde_json::json;

    #[tokio::test]
    async fn object_barrier_sees_past_and_future_commits() {
        let (_o, _l, client) = in_process(Subject::operator("testkit"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.create_store("t/state".into(), ProfileSpec::Instant)
            .await
            .unwrap();
        // Condition already committed before the barrier starts.
        api.create("t/state".into(), "k".into(), json!({"n": 1}))
            .await
            .unwrap();
        let v = await_object_state(&api, "t/state", "k", Duration::from_secs(5), |v| {
            v["n"] == json!(1)
        })
        .await
        .unwrap();
        assert_eq!(v["n"], json!(1));

        // Condition committed after the barrier starts.
        let api2 = Arc::clone(&api);
        let waiter = tokio::spawn(async move {
            await_object_state(&api2, "t/state", "k", Duration::from_secs(5), |v| {
                v["n"] == json!(2)
            })
            .await
        });
        api.patch("t/state".into(), "k".into(), json!({"n": 2}), false)
            .await
            .unwrap();
        assert!(waiter.await.unwrap().is_ok());
    }

    #[tokio::test]
    async fn object_barrier_times_out() {
        let (_o, _l, client) = in_process(Subject::operator("testkit"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.create_store("t/state".into(), ProfileSpec::Instant)
            .await
            .unwrap();
        let err = await_object_state(&api, "t/state", "nope", Duration::from_millis(50), |_| true)
            .await
            .unwrap_err();
        assert!(matches!(err, Error::Timeout(_)), "{err:?}");
    }

    #[tokio::test]
    async fn log_barrier_counts_past_and_future_records() {
        let (_o, _l, client) = in_process(Subject::operator("testkit"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        api.log_create_store("t/log".into()).await.unwrap();
        api.log_append("t/log".into(), json!({"i": 0}))
            .await
            .unwrap();
        let api2 = Arc::clone(&api);
        let waiter = tokio::spawn(async move {
            await_log_records(&api2, "t/log", 2, Duration::from_secs(5)).await
        });
        api.log_append("t/log".into(), json!({"i": 1}))
            .await
            .unwrap();
        let records = waiter.await.unwrap().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].fields, json!({"i": 0}));
        assert_eq!(records[1].fields, json!({"i": 1}));
    }
}
