//! The async client surface over a store.
//!
//! A [`StoreHandle`] is what reconcilers and integrators actually hold: it
//! couples a store with *who is asking* (a [`Subject`]) and applies, per
//! operation,
//!
//! 1. the exchange's access control (object- and field-level),
//! 2. the engine profile's latency behaviour (read/write delays; WAL
//!    commits run on the blocking pool so the async runtime never stalls
//!    on an fsync), and
//! 3. the engine's watch-delivery mode — push streams forward events as
//!    they commit, poll streams release them on a fixed tick, reproducing
//!    the Kubernetes list-watch cadence of the paper's K-apiserver setup.

use crate::batch::{BatchOp, ItemResult};
use crate::event::WatchEvent;
use crate::object::StoredObject;
use crate::profile::WatchDelivery;
use crate::store::ObjectStore;
use knactor_rbac::{AccessContext, AccessController, Subject, Verb};
use knactor_types::{Error, ObjectKey, Result, Revision, Value};
use parking_lot::RwLock;
use std::sync::Arc;
use tokio::sync::mpsc;

/// Async, access-controlled, latency-faithful client to one store.
#[derive(Clone)]
pub struct StoreHandle {
    store: Arc<ObjectStore>,
    subject: Subject,
    access: Arc<RwLock<AccessController>>,
    ctx: Arc<RwLock<AccessContext>>,
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("store", self.store.id())
            .field("subject", &self.subject)
            .finish()
    }
}

/// A watch subscription. Events arrive in revision order, exactly once.
///
/// When the stream ends, [`WatchStream::lag_resume_from`] distinguishes
/// "the store cut this subscriber for lagging" (a typed, gapless resume
/// point) from an ordinary close.
pub struct WatchStream {
    inner: WatchInner,
    probe: crate::store::LagProbe,
}

enum WatchInner {
    /// Push delivery reads the store's stream directly: every consumer
    /// `recv` feeds the store-level lag gate, so a consumer that stops
    /// reading is the one that gets cut — with no intermediate pump
    /// eagerly buffering on its behalf.
    Direct {
        src: crate::store::StoreWatch,
        handle: StoreHandle,
    },
    /// Poll delivery keeps a pump task that buffers between ticks
    /// (list-watch cadence); the pump reads promptly, so the lag gate
    /// effectively bounds the poll buffer plus channel backlog.
    Pumped(mpsc::UnboundedReceiver<WatchEvent>),
}

impl WatchStream {
    /// Next event, or `None` when the subscription ended (store shut
    /// down, or this subscriber was cut for lagging — see
    /// [`WatchStream::lag_resume_from`]).
    pub async fn recv(&mut self) -> Option<WatchEvent> {
        match &mut self.inner {
            WatchInner::Direct { src, handle } => loop {
                let mut event = src.recv().await?;
                match handle.redact(&event.value) {
                    Ok(v) => event.value = v,
                    // A value this subject may not see at all is skipped.
                    Err(_) => continue,
                }
                return Some(event);
            },
            WatchInner::Pumped(rx) => rx.recv().await,
        }
    }

    /// Non-blocking poll used by tests and draining loops.
    pub fn try_recv(&mut self) -> Option<WatchEvent> {
        match &mut self.inner {
            WatchInner::Direct { src, handle } => loop {
                let mut event = src.try_recv().ok()?;
                match handle.redact(&event.value) {
                    Ok(v) => event.value = v,
                    Err(_) => continue,
                }
                return Some(event);
            },
            WatchInner::Pumped(rx) => rx.try_recv().ok(),
        }
    }

    /// `Some(resume_from)` once the store cut this subscriber for
    /// exceeding its lag cap; resume with `watch_from(resume_from)`
    /// (falling back to list+rewatch on `WatchTooOld`).
    pub fn lag_resume_from(&self) -> Option<Revision> {
        self.probe.resume_from()
    }

    /// Unwrap into a raw channel (transport adapters).
    ///
    /// For direct (push) streams this spawns a forwarder task, which
    /// reads eagerly on the adapter's behalf: the in-process loopback
    /// path deliberately opts out of per-subscriber lag cutoffs (its
    /// consumers share the process; wire subscribers get the bounded
    /// treatment in `knactor-net`).
    pub fn into_receiver(self) -> mpsc::UnboundedReceiver<WatchEvent> {
        match self.inner {
            WatchInner::Direct { mut src, handle } => {
                let (tx, rx) = mpsc::unbounded_channel();
                tokio::spawn(async move {
                    while let Some(mut event) = src.recv().await {
                        match handle.redact(&event.value) {
                            Ok(v) => event.value = v,
                            Err(_) => continue,
                        }
                        if tx.send(event).is_err() {
                            break;
                        }
                    }
                });
                rx
            }
            WatchInner::Pumped(rx) => rx,
        }
    }
}

impl StoreHandle {
    pub(crate) fn new(
        store: Arc<ObjectStore>,
        subject: Subject,
        access: Arc<RwLock<AccessController>>,
        ctx: Arc<RwLock<AccessContext>>,
    ) -> StoreHandle {
        StoreHandle {
            store,
            subject,
            access,
            ctx,
        }
    }

    /// Direct handle with open access (tests and single-process tools).
    pub fn open_access(store: Arc<ObjectStore>, subject: Subject) -> StoreHandle {
        StoreHandle {
            store,
            subject,
            access: Arc::new(RwLock::new(AccessController::new())),
            ctx: Arc::new(RwLock::new(AccessContext::default())),
        }
    }

    pub fn store_id(&self) -> knactor_types::StoreId {
        self.store.id().clone()
    }

    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The store's current revision (no delay; metadata read).
    pub fn revision(&self) -> Revision {
        self.store.revision()
    }

    fn check(&self, verb: Verb) -> Result<()> {
        let ctx = *self.ctx.read();
        let decision = self
            .access
            .read()
            .check(&self.subject, verb, self.store.id(), &ctx);
        if decision.allowed() {
            Ok(())
        } else {
            Err(Error::Forbidden(decision.reason().to_string()))
        }
    }

    async fn read_delay(&self) {
        crate::profile::precise_sleep(self.store.profile().read_delay).await;
    }

    async fn write_delay(&self) {
        crate::profile::precise_sleep(self.store.profile().write_delay).await;
    }

    /// Run a store mutation, using the blocking pool when the engine is
    /// durable (an fsync on the async runtime would stall every task).
    async fn run_write<T, F>(&self, f: F) -> Result<T>
    where
        T: Send + 'static,
        F: FnOnce(&ObjectStore) -> Result<T> + Send + 'static,
    {
        self.write_delay().await;
        if self.store.profile().is_durable() {
            let store = Arc::clone(&self.store);
            tokio::task::spawn_blocking(move || f(&store))
                .await
                .map_err(|e| Error::Internal(format!("blocking task: {e}")))?
        } else {
            f(&self.store)
        }
    }

    /// Create an object.
    pub async fn create(&self, key: impl Into<ObjectKey>, value: Value) -> Result<Revision> {
        self.check(Verb::Create)?;
        let key = key.into();
        self.run_write(move |s| s.create(key, value)).await
    }

    /// Read an object; the value is redacted to the fields this handle's
    /// subject may see.
    pub async fn get(&self, key: &ObjectKey) -> Result<StoredObject> {
        self.check(Verb::Get)?;
        self.read_delay().await;
        let mut obj = self.store.get(key)?;
        obj.value = self.redact(&obj.value)?;
        Ok(obj)
    }

    /// List objects (redacted) plus the revision of the snapshot.
    pub async fn list(&self) -> Result<(Vec<StoredObject>, Revision)> {
        self.check(Verb::List)?;
        self.read_delay().await;
        let (mut objs, rev) = self.store.list();
        for obj in &mut objs {
            obj.value = self.redact(&obj.value)?;
        }
        Ok((objs, rev))
    }

    /// Replace an object's value, optionally with optimistic concurrency.
    pub async fn update(
        &self,
        key: &ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> Result<Revision> {
        self.check(Verb::Update)?;
        let key = key.clone();
        self.run_write(move |s| s.update(&key, value, expected))
            .await
    }

    /// Deep-merge a patch (creating the object when `upsert` is set).
    pub async fn patch(&self, key: &ObjectKey, patch: Value, upsert: bool) -> Result<Revision> {
        self.check(Verb::Update)?;
        if upsert {
            self.check(Verb::Create)?;
        }
        let key = key.clone();
        self.run_write(move |s| s.patch(&key, &patch, upsert)).await
    }

    /// Delete an object.
    pub async fn delete(&self, key: &ObjectKey) -> Result<Revision> {
        self.check(Verb::Delete)?;
        let key = key.clone();
        self.run_write(move |s| s.delete(&key)).await
    }

    /// Read many objects in one call, one [`ItemResult`] per key. A
    /// missing key is a per-item `not_found`, never a call failure.
    pub async fn batch_get(&self, keys: &[ObjectKey]) -> Result<Vec<ItemResult>> {
        self.check(Verb::Get)?;
        self.read_delay().await;
        Ok(keys
            .iter()
            .map(|key| {
                ItemResult::from_object(self.store.get(key).and_then(|mut obj| {
                    obj.value = self.redact(&obj.value)?;
                    Ok(obj)
                }))
            })
            .collect())
    }

    /// Apply a batch of mutations with per-item outcomes and one shared
    /// durability barrier (see [`ObjectStore::apply_batch`]). Access is
    /// checked per item verb *before* anything commits, so a forbidden op
    /// rejects the whole batch rather than partially applying it.
    pub async fn batch_commit(&self, ops: Vec<BatchOp>) -> Result<Vec<ItemResult>> {
        for op in &ops {
            match op {
                BatchOp::Create { .. } => self.check(Verb::Create)?,
                BatchOp::Update { .. } => self.check(Verb::Update)?,
                BatchOp::Patch { upsert, .. } => {
                    self.check(Verb::Update)?;
                    if *upsert {
                        self.check(Verb::Create)?;
                    }
                }
                BatchOp::Delete { .. } => self.check(Verb::Delete)?,
            }
        }
        self.run_write(move |s| s.apply_batch(ops)).await
    }

    /// Register interest for state retention.
    pub async fn register_consumer(&self, key: &ObjectKey, consumer: &str) -> Result<()> {
        self.check(Verb::Get)?;
        self.store.register_consumer(key, consumer)
    }

    /// Mark the current value processed; returns GC'd keys.
    pub async fn mark_processed(&self, key: &ObjectKey, consumer: &str) -> Result<Vec<ObjectKey>> {
        self.check(Verb::Get)?;
        self.store.mark_processed(key, consumer)
    }

    /// Watch for events with revision greater than `from`.
    ///
    /// Events are redacted per the subject's field rules. Delivery timing
    /// follows the engine profile (push vs poll).
    pub fn watch_from(&self, from: Revision) -> Result<WatchStream> {
        self.check(Verb::Watch)?;
        let src = self.store.watch_from(from)?;
        let probe = src.probe();
        let inner = match self.store.profile().watch {
            WatchDelivery::Push => WatchInner::Direct {
                src,
                handle: self.clone(),
            },
            WatchDelivery::Poll { .. } => WatchInner::Pumped(self.pump(src)),
        };
        Ok(WatchStream { inner, probe })
    }

    /// Watch from the beginning of retained history.
    pub fn watch(&self) -> Result<WatchStream> {
        self.watch_from(Revision::ZERO)
    }

    /// Spawn the delivery pump implementing poll-mode watch delivery.
    fn pump(&self, mut src: crate::store::StoreWatch) -> mpsc::UnboundedReceiver<WatchEvent> {
        let (tx, rx) = mpsc::unbounded_channel();
        let delivery = self.store.profile().watch;
        let handle = self.clone();
        tokio::spawn(async move {
            match delivery {
                WatchDelivery::Push => {
                    while let Some(mut event) = src.recv().await {
                        match handle.redact(&event.value) {
                            Ok(v) => event.value = v,
                            Err(_) => continue,
                        }
                        if tx.send(event).is_err() {
                            break;
                        }
                    }
                }
                WatchDelivery::Poll { interval } => {
                    let mut ticker = tokio::time::interval(interval);
                    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
                    // First tick completes immediately; consume it so the
                    // first batch waits a full poll interval like a real
                    // list-watch poller.
                    ticker.tick().await;
                    let mut buffer: Vec<WatchEvent> = Vec::new();
                    loop {
                        tokio::select! {
                            maybe = src.recv() => {
                                match maybe {
                                    Some(e) => buffer.push(e),
                                    None => {
                                        // Source closed: flush and stop.
                                        for mut event in buffer.drain(..) {
                                            if let Ok(v) = handle.redact(&event.value) {
                                                event.value = v;
                                                let _ = tx.send(event);
                                            }
                                        }
                                        break;
                                    }
                                }
                            }
                            _ = ticker.tick() => {
                                for mut event in buffer.drain(..) {
                                    match handle.redact(&event.value) {
                                        Ok(v) => event.value = v,
                                        Err(_) => continue,
                                    }
                                    if tx.send(event).is_err() {
                                        return;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        rx
    }

    /// Project a value down to what this subject may read.
    /// Redact a shared value for this handle's subject. Without an
    /// enforced policy — the hot path — the original `Arc` is handed
    /// back untouched, so reads and watch delivery never copy the tree.
    fn redact(&self, value: &Arc<Value>) -> Result<Arc<Value>> {
        let ctx = *self.ctx.read();
        let access = self.access.read();
        if !access.is_enforcing() {
            return Ok(Arc::clone(value));
        }
        access
            .redact(&self.subject, self.store.id(), value, &ctx)
            .map(Arc::new)
            .ok_or_else(|| {
                Error::Forbidden(format!("{} may not read {}", self.subject, self.store.id()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use knactor_rbac::{FieldRule, Role, RoleBinding, Rule};
    use knactor_types::StoreId;
    use serde_json::json;
    use std::time::Duration;

    fn open_handle() -> StoreHandle {
        let store = Arc::new(ObjectStore::in_memory("t/s"));
        StoreHandle::open_access(store, Subject::operator("test"))
    }

    fn key(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    #[tokio::test]
    async fn crud_through_handle() {
        let h = open_handle();
        let rev = h.create("a", json!({"x": 1})).await.unwrap();
        assert_eq!(rev, Revision(1));
        assert_eq!(h.get(&key("a")).await.unwrap().value, json!({"x": 1}));
        h.update(&key("a"), json!({"x": 2}), Some(rev))
            .await
            .unwrap();
        h.patch(&key("a"), json!({"y": 3}), false).await.unwrap();
        assert_eq!(
            h.get(&key("a")).await.unwrap().value,
            json!({"x": 2, "y": 3})
        );
        let (objs, _) = h.list().await.unwrap();
        assert_eq!(objs.len(), 1);
        h.delete(&key("a")).await.unwrap();
        assert!(h.get(&key("a")).await.is_err());
    }

    #[tokio::test]
    async fn push_watch_delivers_promptly() {
        let h = open_handle();
        let mut w = h.watch().unwrap();
        h.create("a", json!(1)).await.unwrap();
        let e = tokio::time::timeout(Duration::from_millis(100), w.recv())
            .await
            .unwrap()
            .unwrap();
        assert_eq!(e.key, key("a"));
    }

    #[tokio::test(start_paused = true)]
    async fn poll_watch_delivers_on_tick() {
        let profile = EngineProfile {
            watch: WatchDelivery::Poll {
                interval: Duration::from_millis(50),
            },
            ..EngineProfile::instant()
        };
        let store = Arc::new(ObjectStore::open(StoreId::new("t/poll"), profile).unwrap());
        let h = StoreHandle::open_access(store, Subject::operator("test"));
        let mut w = h.watch().unwrap();
        h.create("a", json!(1)).await.unwrap();
        // Immediately after commit, nothing is visible yet.
        tokio::time::sleep(Duration::from_millis(5)).await;
        assert!(w.try_recv().is_none(), "poll watch must not deliver early");
        // After the poll interval, the event arrives.
        tokio::time::sleep(Duration::from_millis(60)).await;
        assert!(w.try_recv().is_some());
    }

    #[tokio::test]
    async fn rbac_denies_and_field_redacts() {
        let store = Arc::new(ObjectStore::in_memory("checkout/state"));
        let access = Arc::new(RwLock::new(AccessController::new()));
        {
            let mut ac = access.write();
            ac.add_role(Role::full_access("owner", "checkout/state"));
            ac.bind(RoleBinding::new(Subject::reconciler("checkout"), "owner"));
            ac.add_role(
                Role::new("reader").rule(
                    Rule::on("checkout/state")
                        .verbs([Verb::Get, Verb::List, Verb::Watch])
                        .fields(FieldRule::default().deny_paths(["secret"])),
                ),
            );
            ac.bind(RoleBinding::new(Subject::integrator("cast"), "reader"));
        }
        let ctx = Arc::new(RwLock::new(AccessContext::default()));
        let owner = StoreHandle::new(
            Arc::clone(&store),
            Subject::reconciler("checkout"),
            Arc::clone(&access),
            Arc::clone(&ctx),
        );
        let reader = StoreHandle::new(store, Subject::integrator("cast"), access, ctx);

        owner
            .create("o", json!({"public": 1, "secret": 2}))
            .await
            .unwrap();
        // Reader sees the object without the denied field.
        let got = reader.get(&key("o")).await.unwrap();
        assert_eq!(got.value, json!({"public": 1}));
        // Reader cannot write.
        assert!(matches!(
            reader.update(&key("o"), json!({}), None).await,
            Err(Error::Forbidden(_))
        ));
        // Watch events are redacted too.
        let mut w = reader.watch().unwrap();
        let e = w.recv().await.unwrap();
        assert_eq!(e.value, json!({"public": 1}));
    }

    #[tokio::test]
    async fn retention_via_handle() {
        let h = open_handle();
        h.create("a", json!(1)).await.unwrap();
        h.register_consumer(&key("a"), "me").await.unwrap();
        let collected = h.mark_processed(&key("a"), "me").await.unwrap();
        assert!(collected.is_empty(), "default retention keeps everything");
    }
}
