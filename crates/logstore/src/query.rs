//! Dataflow operators over log records (the Sync integrator's vocabulary).
//!
//! A [`Query`] is an ordered pipeline of [`Op`]s executed over a stream of
//! record payloads. Operators are schema-on-read: a missing field reads as
//! `null`, and records that fail an expression (e.g. filtering on a field
//! that holds a string in one record and a number in the next) are
//! *dropped with a count*, not fatal — telemetry streams are heterogeneous
//! by nature and one malformed reading must not wedge composition.

use knactor_expr::{Env, Expr, FnRegistry};
use knactor_types::{Error, FieldPath, Result, Value};
use std::collections::BTreeMap;

/// Aggregation functions for [`Op::Aggregate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Last value wins (useful for "current reading" rollups).
    Last,
}

impl AggFn {
    pub fn parse(s: &str) -> Result<AggFn> {
        match s {
            "count" => Ok(AggFn::Count),
            "sum" => Ok(AggFn::Sum),
            "avg" => Ok(AggFn::Avg),
            "min" => Ok(AggFn::Min),
            "max" => Ok(AggFn::Max),
            "last" => Ok(AggFn::Last),
            other => Err(Error::Dxg(format!("unknown aggregate '{other}'"))),
        }
    }
}

/// One pipeline stage.
#[derive(Debug, Clone)]
pub enum Op {
    /// Keep records where the expression (record bound as `this`) is truthy.
    Filter(Expr),
    /// Rename a top-level field (`triggered` → `motion`, Fig. 4). Records
    /// without the field pass through unchanged.
    Rename { from: String, to: String },
    /// Keep only the named fields.
    Project(Vec<String>),
    /// Add (or overwrite) a field computed from the record.
    Derive { field: String, expr: Expr },
    /// Stable sort by a field path; `null`s sort first.
    Sort { by: FieldPath, descending: bool },
    /// Group by a field (optional) and fold each group.
    Aggregate {
        group_by: Option<String>,
        agg: AggFn,
        /// Field the aggregate reads (ignored by `Count`).
        field: Option<FieldPath>,
        /// Output field name for the aggregate value.
        as_field: String,
    },
    /// Keep the first `n` records.
    Limit(usize),
}

/// A compiled pipeline.
#[derive(Debug, Clone, Default)]
pub struct Query {
    pub ops: Vec<Op>,
}

/// Outcome counters for a run (how many records each lossy stage dropped).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub dropped_errors: usize,
}

impl Query {
    pub fn new() -> Query {
        Query::default()
    }

    pub fn filter(mut self, expr_src: &str) -> Result<Query> {
        self.ops
            .push(Op::Filter(knactor_expr::parse_expr(expr_src)?));
        Ok(self)
    }

    pub fn rename(mut self, from: impl Into<String>, to: impl Into<String>) -> Query {
        self.ops.push(Op::Rename {
            from: from.into(),
            to: to.into(),
        });
        self
    }

    pub fn project<I, S>(mut self, fields: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.ops
            .push(Op::Project(fields.into_iter().map(Into::into).collect()));
        self
    }

    pub fn derive(mut self, field: impl Into<String>, expr_src: &str) -> Result<Query> {
        self.ops.push(Op::Derive {
            field: field.into(),
            expr: knactor_expr::parse_expr(expr_src)?,
        });
        Ok(self)
    }

    pub fn sort(mut self, by: &str, descending: bool) -> Result<Query> {
        self.ops.push(Op::Sort {
            by: FieldPath::parse(by)?,
            descending,
        });
        Ok(self)
    }

    pub fn aggregate(
        mut self,
        group_by: Option<&str>,
        agg: AggFn,
        field: Option<&str>,
        as_field: impl Into<String>,
    ) -> Result<Query> {
        let field = field.map(FieldPath::parse).transpose()?;
        self.ops.push(Op::Aggregate {
            group_by: group_by.map(|s| s.to_string()),
            agg,
            field,
            as_field: as_field.into(),
        });
        Ok(self)
    }

    pub fn limit(mut self, n: usize) -> Query {
        self.ops.push(Op::Limit(n));
        self
    }

    /// Run the pipeline with the standard function registry.
    pub fn run(&self, records: impl Iterator<Item = Value>) -> Result<Vec<Value>> {
        self.run_with(records, &FnRegistry::standard())
            .map(|(v, _)| v)
    }

    /// Run with an explicit registry; also returns drop counters.
    pub fn run_with(
        &self,
        records: impl Iterator<Item = Value>,
        fns: &FnRegistry,
    ) -> Result<(Vec<Value>, QueryStats)> {
        let mut rows: Vec<Value> = records.collect();
        let mut stats = QueryStats::default();
        for op in &self.ops {
            rows = apply(op, rows, fns, &mut stats)?;
        }
        Ok((rows, stats))
    }

    /// Run against a store's segment snapshot: record-wise operators and
    /// aggregates execute per segment (in parallel on big stores, with
    /// columnar fast paths on sealed segments); sort/limit and anything
    /// after an aggregate run on the merged result. Results are
    /// bit-identical to collecting `store.read_all()` and calling
    /// [`Query::run`] — see [`crate::exec`].
    pub fn run_store(&self, store: &crate::store::LogStore) -> Result<Vec<Value>> {
        self.run_store_with(store, &FnRegistry::standard())
            .map(|(v, _)| v)
    }

    /// [`Query::run_store`] with an explicit registry and drop counters.
    pub fn run_store_with(
        &self,
        store: &crate::store::LogStore,
        fns: &FnRegistry,
    ) -> Result<(Vec<Value>, QueryStats)> {
        crate::exec::run_store(self, store, fns)
    }
}

/// Stable operator label for the `knactor_log_query_op_ns{op}` histogram.
pub(crate) fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Filter(_) => "filter",
        Op::Rename { .. } => "rename",
        Op::Project(_) => "project",
        Op::Derive { .. } => "derive",
        Op::Sort { .. } => "sort",
        Op::Aggregate { .. } => "aggregate",
        Op::Limit(_) => "limit",
    }
}

pub(crate) fn eval_on(expr: &Expr, record: &Value, fns: &FnRegistry) -> Result<Value> {
    let mut env = Env::new();
    env.bind("this", record.clone());
    knactor_expr::eval(expr, &env, fns)
}

pub(crate) fn apply(
    op: &Op,
    rows: Vec<Value>,
    fns: &FnRegistry,
    stats: &mut QueryStats,
) -> Result<Vec<Value>> {
    match op {
        Op::Filter(expr) => {
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                match eval_on(expr, &r, fns) {
                    Ok(v) if knactor_expr::eval::truthy(&v) => out.push(r),
                    Ok(_) => {}
                    Err(_) => stats.dropped_errors += 1,
                }
            }
            Ok(out)
        }
        Op::Rename { from, to } => Ok(rows
            .into_iter()
            .map(|mut r| {
                if let Some(map) = r.as_object_mut() {
                    if let Some(v) = map.remove(from) {
                        map.insert(to.clone(), v);
                    }
                }
                r
            })
            .collect()),
        Op::Project(fields) => Ok(rows
            .into_iter()
            .map(|r| {
                let mut out = serde_json::Map::new();
                if let Some(map) = r.as_object() {
                    for f in fields {
                        if let Some(v) = map.get(f) {
                            out.insert(f.clone(), v.clone());
                        }
                    }
                }
                Value::Object(out)
            })
            .collect()),
        Op::Derive { field, expr } => {
            let mut out = Vec::with_capacity(rows.len());
            for mut r in rows {
                match eval_on(expr, &r, fns) {
                    Ok(v) => {
                        if let Some(map) = r.as_object_mut() {
                            map.insert(field.clone(), v);
                        }
                        out.push(r);
                    }
                    Err(_) => {
                        stats.dropped_errors += 1;
                    }
                }
            }
            Ok(out)
        }
        Op::Sort { by, descending } => {
            let mut rows = rows;
            rows.sort_by(|a, b| {
                let av = knactor_types::value::get_path(a, by);
                let bv = knactor_types::value::get_path(b, by);
                let ord = compare_nullable(av, bv);
                if *descending {
                    ord.reverse()
                } else {
                    ord
                }
            });
            Ok(rows)
        }
        Op::Aggregate {
            group_by,
            agg,
            field,
            as_field,
        } => {
            let mut groups: BTreeMap<String, Vec<&Value>> = BTreeMap::new();
            if group_by.is_none() {
                // SQL semantics: an ungrouped aggregate always yields one
                // row, even over an empty input.
                groups.insert(String::new(), Vec::new());
            }
            for r in &rows {
                let key = match group_by {
                    Some(g) => r
                        .get(g)
                        .map(render_group_key)
                        .unwrap_or_else(|| "null".to_string()),
                    None => String::new(),
                };
                groups.entry(key).or_default().push(r);
            }
            let mut out = Vec::with_capacity(groups.len());
            for (key, members) in groups {
                let folded = fold(agg, field.as_ref(), &members);
                let mut obj = serde_json::Map::new();
                if let Some(g) = group_by {
                    // Reparse the rendered key back into its original value
                    // when possible so group labels keep their type.
                    let key_val = members
                        .first()
                        .and_then(|m| m.get(g))
                        .cloned()
                        .unwrap_or(Value::String(key));
                    obj.insert(g.clone(), key_val);
                }
                obj.insert(as_field.clone(), folded);
                out.push(Value::Object(obj));
            }
            Ok(out)
        }
        Op::Limit(n) => Ok(rows.into_iter().take(*n).collect()),
    }
}

pub(crate) fn render_group_key(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

fn compare_nullable(a: Option<&Value>, b: Option<&Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => compare_values(a, b),
    }
}

/// Total order over JSON values (type rank, then value), so sort is total
/// even on heterogeneous logs.
fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .partial_cmp(&y.as_f64())
            .unwrap_or(Ordering::Equal),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

fn fold(agg: &AggFn, field: Option<&FieldPath>, members: &[&Value]) -> Value {
    let nums = || -> Vec<f64> {
        members
            .iter()
            .filter_map(|m| {
                field
                    .and_then(|f| knactor_types::value::get_path(m, f))
                    .and_then(Value::as_f64)
            })
            .collect()
    };
    match agg {
        AggFn::Count => Value::from(members.len() as u64),
        AggFn::Sum => number(nums().iter().sum()),
        AggFn::Avg => {
            let ns = nums();
            if ns.is_empty() {
                Value::Null
            } else {
                number(ns.iter().sum::<f64>() / ns.len() as f64)
            }
        }
        AggFn::Min => nums()
            .into_iter()
            .fold(None::<f64>, |acc, n| Some(acc.map_or(n, |a| a.min(n))))
            .map(number)
            .unwrap_or(Value::Null),
        AggFn::Max => nums()
            .into_iter()
            .fold(None::<f64>, |acc, n| Some(acc.map_or(n, |a| a.max(n))))
            .map(number)
            .unwrap_or(Value::Null),
        AggFn::Last => members
            .last()
            .and_then(|m| field.and_then(|f| knactor_types::value::get_path(m, f)))
            .cloned()
            .unwrap_or(Value::Null),
    }
}

pub(crate) fn number(f: f64) -> Value {
    serde_json::Number::from_f64(f)
        .map(Value::Number)
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn motion_records() -> Vec<Value> {
        vec![
            json!({"triggered": true, "sensitivity": 5, "room": "kitchen"}),
            json!({"triggered": false, "sensitivity": 5, "room": "kitchen"}),
            json!({"triggered": true, "sensitivity": 9, "room": "hall"}),
            json!({"triggered": true, "sensitivity": 2, "room": "hall"}),
        ]
    }

    #[test]
    fn filter_keeps_truthy() {
        let q = Query::new().filter("this.triggered == true").unwrap();
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn rename_triggered_to_motion() {
        // The Fig. 4 Sync example.
        let q = Query::new().rename("triggered", "motion");
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out[0]["motion"], json!(true));
        assert!(out[0].get("triggered").is_none());
    }

    #[test]
    fn rename_missing_field_passes_through() {
        let q = Query::new().rename("absent", "x");
        let out = q.run(vec![json!({"a": 1})].into_iter()).unwrap();
        assert_eq!(out[0], json!({"a": 1}));
    }

    #[test]
    fn project_keeps_only_named() {
        let q = Query::new().project(["room"]);
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out[0], json!({"room": "kitchen"}));
    }

    #[test]
    fn derive_computes_field() {
        let q = Query::new().derive("loud", "this.sensitivity > 4").unwrap();
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out[0]["loud"], json!(true));
        assert_eq!(out[3]["loud"], json!(false));
    }

    #[test]
    fn sort_orders_with_nulls_first() {
        let q = Query::new().sort("sensitivity", false).unwrap();
        let rows = vec![
            json!({"sensitivity": 5}),
            json!({}),
            json!({"sensitivity": 1}),
        ];
        let out = q.run(rows.into_iter()).unwrap();
        assert_eq!(out[0], json!({}));
        assert_eq!(out[1]["sensitivity"], json!(1));
        let q = Query::new().sort("sensitivity", true).unwrap();
        let rows = vec![json!({"sensitivity": 5}), json!({"sensitivity": 1})];
        let out = q.run(rows.into_iter()).unwrap();
        assert_eq!(out[0]["sensitivity"], json!(5));
    }

    #[test]
    fn aggregate_grouped_count_and_sum() {
        let q = Query::new()
            .aggregate(Some("room"), AggFn::Count, None, "n")
            .unwrap();
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(
            out,
            vec![
                json!({"room": "hall", "n": 2}),
                json!({"room": "kitchen", "n": 2})
            ]
        );

        let q = Query::new()
            .aggregate(Some("room"), AggFn::Sum, Some("sensitivity"), "total")
            .unwrap();
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out[0], json!({"room": "hall", "total": 11.0}));
    }

    #[test]
    fn aggregate_ungrouped() {
        let q = Query::new()
            .aggregate(None, AggFn::Avg, Some("sensitivity"), "avg")
            .unwrap();
        let out = q.run(motion_records().into_iter()).unwrap();
        assert_eq!(out, vec![json!({"avg": 5.25})]);
        let q = Query::new()
            .aggregate(None, AggFn::Max, Some("sensitivity"), "m")
            .unwrap();
        assert_eq!(
            q.run(motion_records().into_iter()).unwrap()[0]["m"],
            json!(9.0)
        );
        let q = Query::new()
            .aggregate(None, AggFn::Last, Some("room"), "r")
            .unwrap();
        assert_eq!(
            q.run(motion_records().into_iter()).unwrap()[0]["r"],
            json!("hall")
        );
    }

    #[test]
    fn aggregate_empty_input() {
        let q = Query::new()
            .aggregate(None, AggFn::Avg, Some("x"), "avg")
            .unwrap();
        let out = q.run(Vec::new().into_iter()).unwrap();
        assert_eq!(out, vec![json!({"avg": null})]);
    }

    #[test]
    fn limit_truncates() {
        let q = Query::new().limit(2);
        assert_eq!(q.run(motion_records().into_iter()).unwrap().len(), 2);
    }

    #[test]
    fn pipeline_composes() {
        // kWh rollup: filter to lamp records, rename, sum per device.
        let records = vec![
            json!({"dev": "lamp-1", "kind": "energy", "kwh": 0.2}),
            json!({"dev": "lamp-1", "kind": "energy", "kwh": 0.3}),
            json!({"dev": "lamp-2", "kind": "energy", "kwh": 0.1}),
            json!({"dev": "lamp-1", "kind": "motion"}),
        ];
        let q = Query::new()
            .filter(r#"this.kind == "energy""#)
            .unwrap()
            .aggregate(Some("dev"), AggFn::Sum, Some("kwh"), "energy")
            .unwrap()
            .sort("energy", true)
            .unwrap();
        let out = q.run(records.into_iter()).unwrap();
        assert_eq!(out[0]["dev"], json!("lamp-1"));
        assert!((out[0]["energy"].as_f64().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_records_drop_not_fail() {
        let records = vec![
            json!({"n": 5}),
            json!({"n": "not a number"}),
            json!({"n": 7}),
        ];
        let q = Query::new().filter("this.n > 4").unwrap();
        let (out, stats) = q
            .run_with(records.into_iter(), &FnRegistry::standard())
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.dropped_errors, 1);
    }

    #[test]
    fn agg_fn_parse() {
        assert_eq!(AggFn::parse("sum").unwrap(), AggFn::Sum);
        assert!(AggFn::parse("median").is_err());
    }
}
