//! The YAML-subset parser.
//!
//! Indentation-driven recursive descent over pre-scanned lines. The parser
//! is strict: constructs outside the documented subset (tabs in
//! indentation, flow style, anchors, tags) are errors rather than
//! best-effort guesses, because spec files feed directly into composition
//! logic and a silent misparse would surface as a baffling exchange bug.

use crate::Node;
use knactor_types::{Error, Result};

/// Parse a YAML-subset document into a [`Node`].
///
/// The document root may be a mapping, a sequence, or a single scalar.
/// An empty (or comment-only) document parses as an empty mapping, which
/// is the useful default for configuration files.
pub fn parse(input: &str) -> Result<Node> {
    let mut lines = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        lines.push(scan_line(raw, idx + 1)?);
    }
    let mut p = Parser { lines, pos: 0 };
    p.skip_insignificant();
    if p.pos >= p.lines.len() {
        return Ok(Node::map(Vec::new()));
    }
    let node = p.parse_node(0)?;
    p.skip_insignificant();
    if let Some(line) = p.peek() {
        return Err(Error::Parse {
            line: line.number,
            msg: "trailing content after document root".to_string(),
        });
    }
    Ok(node)
}

/// One scanned source line.
#[derive(Debug, Clone)]
struct Line {
    number: usize,
    indent: usize,
    /// Content with any trailing comment stripped (empty if comment-only).
    content: String,
    /// Raw text (for block scalars, which keep comments and blanks).
    raw: String,
    /// `+kr:` annotation text, if the trailing comment carried one.
    annotation: Option<String>,
}

impl Line {
    fn is_blank(&self) -> bool {
        self.content.is_empty()
    }
}

/// Strip the trailing comment (quote-aware) and extract any `+kr:` text.
fn scan_line(raw: &str, number: usize) -> Result<Line> {
    let indent_len = raw.len() - raw.trim_start_matches(' ').len();
    if raw[..indent_len].contains('\t') || raw.trim_start_matches(' ').starts_with('\t') {
        // Only leading tabs are fatal; tabs inside content are data.
        if raw.trim_start_matches([' ', '\t']).len() < raw.trim_start_matches(' ').len() {
            return Err(Error::Parse {
                line: number,
                msg: "tab in indentation".to_string(),
            });
        }
    }
    let body = &raw[indent_len..];
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    let mut comment_at = None;
    let mut prev_ws = true;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            prev_ws = false;
            continue;
        }
        match c {
            '\\' if in_double => escaped = true,
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double && prev_ws => {
                comment_at = Some(i);
                break;
            }
            _ => {}
        }
        prev_ws = c == ' ' || c == '\t';
    }
    let (content, annotation) = match comment_at {
        Some(i) => {
            let comment = body[i + 1..].trim();
            let ann = comment.strip_prefix("+kr:").map(|s| s.trim().to_string());
            (body[..i].trim_end().to_string(), ann)
        }
        None => (body.trim_end().to_string(), None),
    };
    Ok(Line {
        number,
        indent: indent_len,
        content,
        raw: raw.to_string(),
        annotation,
    })
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn skip_insignificant(&mut self) {
        while let Some(l) = self.lines.get(self.pos) {
            if l.is_blank() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Parse the block starting at the current line, which must be indented
    /// at least `min_indent`.
    fn parse_node(&mut self, min_indent: usize) -> Result<Node> {
        self.skip_insignificant();
        let Some(first) = self.peek() else {
            return Ok(Node::scalar(serde_json::Value::Null));
        };
        if first.indent < min_indent {
            return Ok(Node::scalar(serde_json::Value::Null));
        }
        let base = first.indent;
        if first.content == "-" || first.content.starts_with("- ") {
            self.parse_seq(base)
        } else if split_key(&first.content).is_some() {
            self.parse_map(base)
        } else {
            // Single-line scalar document/value.
            let line = self.lines[self.pos].clone();
            self.pos += 1;
            reject_flow(&line.content, line.number)?;
            let mut node = Node::scalar(parse_scalar(&line.content, line.number)?);
            node.line = line.number;
            if let Some(a) = line.annotation {
                node.annotations.push(a);
            }
            Ok(node)
        }
    }

    fn parse_map(&mut self, base: usize) -> Result<Node> {
        let mut entries: Vec<(String, Node)> = Vec::new();
        let map_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            self.skip_insignificant();
            let Some(line) = self.peek() else { break };
            if line.indent < base {
                break;
            }
            if line.indent > base {
                return Err(Error::Parse {
                    line: line.number,
                    msg: format!("unexpected indent {} (mapping is at {})", line.indent, base),
                });
            }
            if line.content == "-" || line.content.starts_with("- ") {
                return Err(Error::Parse {
                    line: line.number,
                    msg: "sequence item inside mapping".to_string(),
                });
            }
            let line = self.lines[self.pos].clone();
            let Some((key, rest)) = split_key(&line.content) else {
                return Err(Error::Parse {
                    line: line.number,
                    msg: format!("expected 'key:' line, found '{}'", line.content),
                });
            };
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(Error::Parse {
                    line: line.number,
                    msg: format!("duplicate key '{key}'"),
                });
            }
            self.pos += 1;
            let mut value = self.parse_value(&rest, base, line.number)?;
            if let Some(a) = &line.annotation {
                value.annotations.push(a.clone());
            }
            entries.push((key, value));
        }
        let mut node = Node::map(entries);
        node.line = map_line;
        Ok(node)
    }

    fn parse_seq(&mut self, base: usize) -> Result<Node> {
        let mut items = Vec::new();
        let seq_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            self.skip_insignificant();
            let Some(line) = self.peek() else { break };
            if line.indent != base || !(line.content == "-" || line.content.starts_with("- ")) {
                if line.indent > base {
                    return Err(Error::Parse {
                        line: line.number,
                        msg: "unexpected indent in sequence".to_string(),
                    });
                }
                break;
            }
            let number = line.number;
            let annotation = line.annotation.clone();
            let rest = line.content[1..].trim_start().to_string();
            if rest.is_empty() {
                // `-` alone: the item is the following more-indented block.
                self.pos += 1;
                let mut item = self.parse_node(base + 1)?;
                if item.line == 0 {
                    item.line = number;
                }
                items.push(item);
            } else {
                // Rewrite `- x` as `x` at indent base+2 and re-parse, so an
                // item that begins a mapping picks up its following keys.
                let virtual_indent = base + 2;
                {
                    let slot = &mut self.lines[self.pos];
                    slot.indent = virtual_indent;
                    slot.content = rest;
                }
                let mut item = self.parse_node(virtual_indent)?;
                if item.line == 0 {
                    item.line = number;
                }
                if let Some(a) = annotation {
                    if !item.annotations.contains(&a) {
                        item.annotations.push(a);
                    }
                }
                items.push(item);
            }
        }
        let mut node = Node::seq(items);
        node.line = seq_line;
        Ok(node)
    }

    /// Parse a mapping value given the text after `key:`.
    fn parse_value(&mut self, rest: &str, key_indent: usize, key_line: usize) -> Result<Node> {
        let rest = rest.trim();
        if rest.is_empty() {
            // Nested block (or null if nothing more-indented follows).
            let mut node = self.parse_node(key_indent + 1)?;
            if node.line == 0 {
                node.line = key_line;
            }
            return Ok(node);
        }
        if rest == ">" || rest == "|" {
            return self.parse_block_scalar(rest == ">", key_indent, key_line);
        }
        reject_flow(rest, key_line)?;
        let mut node = Node::scalar(parse_scalar(rest, key_line)?);
        node.line = key_line;
        Ok(node)
    }

    /// Folded (`>`) or literal (`|`) block scalar. Consumes every following
    /// line that is blank or indented deeper than the key.
    ///
    /// Both forms strip the trailing newline (YAML's `>-` / `|-` chomping),
    /// which is what spec expressions want.
    fn parse_block_scalar(
        &mut self,
        folded: bool,
        key_indent: usize,
        key_line: usize,
    ) -> Result<Node> {
        let mut raw_lines: Vec<String> = Vec::new();
        while let Some(line) = self.peek() {
            let raw_trimmed = line.raw.trim_end();
            let is_blank_raw = raw_trimmed.trim().is_empty();
            if !is_blank_raw && line.indent <= key_indent {
                break;
            }
            raw_lines.push(line.raw.clone());
            self.pos += 1;
        }
        while raw_lines
            .last()
            .map(|l| l.trim().is_empty())
            .unwrap_or(false)
        {
            raw_lines.pop();
        }
        if raw_lines.is_empty() {
            return Err(Error::Parse {
                line: key_line,
                msg: "empty block scalar".to_string(),
            });
        }
        let block_indent = raw_lines
            .iter()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.len() - l.trim_start_matches(' ').len())
            .min()
            .unwrap_or(0);
        let stripped: Vec<String> = raw_lines
            .iter()
            .map(|l| {
                if l.len() >= block_indent {
                    l[block_indent..].trim_end().to_string()
                } else {
                    String::new()
                }
            })
            .collect();
        let text = if folded {
            // Folding: newlines become spaces; blank lines become newlines.
            let mut out = String::new();
            let mut pending_break = false;
            for l in &stripped {
                if l.is_empty() {
                    out.push('\n');
                    pending_break = false;
                } else {
                    if pending_break {
                        out.push(' ');
                    }
                    out.push_str(l);
                    pending_break = true;
                }
            }
            out
        } else {
            stripped.join("\n")
        };
        let mut node = Node::scalar(serde_json::Value::String(text));
        node.line = key_line;
        Ok(node)
    }
}

/// Split `key: rest` (rest may be empty). Returns `None` if the line does
/// not contain a key separator outside quotes.
fn split_key(content: &str) -> Option<(String, String)> {
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    let chars: Vec<char> = content.chars().collect();
    for i in 0..chars.len() {
        let c = chars[i];
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_double => escaped = true,
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let at_end = i + 1 == chars.len();
                let followed_by_space = chars.get(i + 1) == Some(&' ');
                if at_end || followed_by_space {
                    let raw_key: String = chars[..i].iter().collect();
                    let raw_key = raw_key.trim();
                    if raw_key.is_empty() {
                        return None;
                    }
                    let key = unquote_key(raw_key);
                    let rest: String = if at_end {
                        String::new()
                    } else {
                        chars[i + 1..].iter().collect::<String>().trim().to_string()
                    };
                    return Some((key, rest));
                }
            }
            _ => {}
        }
    }
    None
}

fn unquote_key(raw: &str) -> String {
    if (raw.starts_with('\'') && raw.ends_with('\'') && raw.len() >= 2)
        || (raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2)
    {
        raw[1..raw.len() - 1].to_string()
    } else {
        raw.to_string()
    }
}

/// Reject flow-style and other out-of-subset constructs loudly.
fn reject_flow(s: &str, line: usize) -> Result<()> {
    let first = s.chars().next().unwrap_or(' ');
    if first == '{' || first == '[' {
        return Err(Error::Parse {
            line,
            msg: "flow-style collections are outside the supported subset; \
                  quote the value if it is a literal string"
                .to_string(),
        });
    }
    if first == '&' || first == '*' || first == '!' {
        return Err(Error::Parse {
            line,
            msg: "anchors, aliases, and tags are not supported".to_string(),
        });
    }
    Ok(())
}

/// Coerce a scalar token: quotes force strings; bare tokens try bool,
/// null, integer, float; everything else is a string.
fn parse_scalar(s: &str, line: usize) -> Result<serde_json::Value> {
    if s.starts_with('\'') {
        if s.len() < 2 || !s.ends_with('\'') {
            return Err(Error::Parse {
                line,
                msg: "unterminated single-quoted string".into(),
            });
        }
        // Single quotes: only escape is '' for a literal quote.
        return Ok(serde_json::Value::String(
            s[1..s.len() - 1].replace("''", "'"),
        ));
    }
    if s.starts_with('"') {
        if s.len() < 2 || !s.ends_with('"') {
            return Err(Error::Parse {
                line,
                msg: "unterminated double-quoted string".into(),
            });
        }
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => {
                        return Err(Error::Parse {
                            line,
                            msg: format!("unsupported escape '\\{other}'"),
                        })
                    }
                    None => {
                        return Err(Error::Parse {
                            line,
                            msg: "dangling escape".into(),
                        })
                    }
                }
            } else {
                out.push(c);
            }
        }
        return Ok(serde_json::Value::String(out));
    }
    match s {
        "true" => return Ok(serde_json::Value::Bool(true)),
        "false" => return Ok(serde_json::Value::Bool(false)),
        "null" | "~" => return Ok(serde_json::Value::Null),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(serde_json::Value::from(i));
    }
    if looks_like_float(s) {
        if let Ok(f) = s.parse::<f64>() {
            if let Some(n) = serde_json::Number::from_f64(f) {
                return Ok(serde_json::Value::Number(n));
            }
        }
    }
    Ok(serde_json::Value::String(s.to_string()))
}

/// Only coerce floats that look like numbers (avoid "1.2.3" or "e5").
pub(crate) fn looks_like_float(s: &str) -> bool {
    let body = s.strip_prefix(['-', '+']).unwrap_or(s);
    if body.is_empty() {
        return false;
    }
    let mut dots = 0;
    let mut exps = 0;
    let mut digits = 0;
    for (i, c) in body.char_indices() {
        match c {
            '0'..='9' => digits += 1,
            '.' => dots += 1,
            'e' | 'E' if i > 0 => exps += 1,
            '-' | '+' => {
                // Only valid right after the exponent marker.
                if i == 0 {
                    return false;
                }
                let prev = body.as_bytes()[i - 1];
                if prev != b'e' && prev != b'E' {
                    return false;
                }
            }
            _ => return false,
        }
    }
    digits > 0 && dots <= 1 && exps <= 1 && (dots == 1 || exps == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn parses_fig5_checkout_schema() {
        let src = "\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
";
        let doc = parse(src).unwrap();
        let entries = doc.entries().unwrap();
        assert_eq!(entries.len(), 9);
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "OnlineRetail/v1/Checkout/Order"
        );
        let ship = doc.get("shippingCost").unwrap();
        assert_eq!(ship.as_str().unwrap(), "number");
        assert_eq!(ship.annotations, vec!["external".to_string()]);
        assert!(doc.get("totalCost").unwrap().annotations.is_empty());
    }

    #[test]
    fn parses_fig6_dxg_spec() {
        let src = r#"
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"#;
        let doc = parse(src).unwrap();
        let input = doc.get("Input").unwrap();
        assert_eq!(input.entries().unwrap().len(), 3);
        let dxg = doc.get("DXG").unwrap();
        let c_order = dxg.get("C.order").unwrap();
        let ship = c_order.get("shippingCost").unwrap().as_str().unwrap();
        assert_eq!(
            ship,
            "currency_convert(S.quote.price, S.quote.currency, this.currency)"
        );
        let items = dxg
            .get("S")
            .unwrap()
            .get("items")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(items, "[item.name for item in C.order.items]");
        let method = dxg
            .get("S")
            .unwrap()
            .get("method")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(method, r#""air" if C.order.cost > 1000 else "ground""#);
    }

    #[test]
    fn scalar_coercion() {
        let doc =
            parse("a: 3\nb: -2.5\nc: true\nd: null\ne: ~\nf: hello world\ng: 1.2.3\n").unwrap();
        assert_eq!(doc.get("a").unwrap().to_json(), json!(3));
        assert_eq!(doc.get("b").unwrap().to_json(), json!(-2.5));
        assert_eq!(doc.get("c").unwrap().to_json(), json!(true));
        assert_eq!(doc.get("d").unwrap().to_json(), json!(null));
        assert_eq!(doc.get("e").unwrap().to_json(), json!(null));
        assert_eq!(doc.get("f").unwrap().to_json(), json!("hello world"));
        assert_eq!(doc.get("g").unwrap().to_json(), json!("1.2.3"));
    }

    #[test]
    fn quoted_strings_stay_strings() {
        let doc = parse("a: '42'\nb: \"true\"\nc: 'it''s'\nd: \"x\\ny\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().to_json(), json!("42"));
        assert_eq!(doc.get("b").unwrap().to_json(), json!("true"));
        assert_eq!(doc.get("c").unwrap().to_json(), json!("it's"));
        assert_eq!(doc.get("d").unwrap().to_json(), json!("x\ny"));
    }

    #[test]
    fn hash_inside_quotes_is_not_comment() {
        let doc = parse("a: 'x # y'\nb: \"p # q\" # +kr: external\n").unwrap();
        assert_eq!(doc.get("a").unwrap().to_json(), json!("x # y"));
        assert_eq!(doc.get("b").unwrap().to_json(), json!("p # q"));
        assert_eq!(
            doc.get("b").unwrap().annotations,
            vec!["external".to_string()]
        );
    }

    #[test]
    fn sequences_of_scalars_and_mappings() {
        let src = "\
rules:
  - get
  - list
subjects:
  - name: cast
    role: integrator
  - name: shipping-reconciler
    role: owner
";
        let doc = parse(src).unwrap();
        let rules = doc.get("rules").unwrap().items().unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].to_json(), json!("get"));
        let subjects = doc.get("subjects").unwrap().items().unwrap();
        assert_eq!(subjects.len(), 2);
        assert_eq!(subjects[0].get("name").unwrap().to_json(), json!("cast"));
        assert_eq!(subjects[1].get("role").unwrap().to_json(), json!("owner"));
    }

    #[test]
    fn dash_alone_starts_nested_block() {
        let src = "\
items:
  -
    name: a
  -
    name: b
";
        let doc = parse(src).unwrap();
        let items = doc.get("items").unwrap().items().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("name").unwrap().to_json(), json!("b"));
    }

    #[test]
    fn literal_block_scalar_keeps_newlines() {
        let src = "text: |\n  line one\n  line two\nafter: 1\n";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.get("text").unwrap().to_json(),
            json!("line one\nline two")
        );
        assert_eq!(doc.get("after").unwrap().to_json(), json!(1));
    }

    #[test]
    fn folded_block_scalar_joins_lines() {
        let src = "text: >\n  a b\n  c d\n\n  new para\n";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.get("text").unwrap().to_json(),
            json!("a b c d\nnew para")
        );
    }

    #[test]
    fn nested_mapping_null_when_empty() {
        let doc = parse("a:\nb: 1\n").unwrap();
        assert_eq!(doc.get("a").unwrap().to_json(), json!(null));
        assert_eq!(doc.get("b").unwrap().to_json(), json!(1));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }));
    }

    #[test]
    fn flow_style_rejected() {
        assert!(parse("a: {x: 1}\n").is_err());
        assert!(parse("a: [1, 2]\n").is_err());
        assert!(parse("a: &anchor v\n").is_err());
    }

    #[test]
    fn bad_indent_rejected() {
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }));
    }

    #[test]
    fn tab_indentation_rejected() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn empty_document_is_empty_map() {
        let doc = parse("").unwrap();
        assert_eq!(doc.entries().unwrap().len(), 0);
        let doc = parse("# only a comment\n\n").unwrap();
        assert_eq!(doc.entries().unwrap().len(), 0);
    }

    #[test]
    fn root_scalar_document() {
        assert_eq!(parse("42\n").unwrap().to_json(), json!(42));
        assert_eq!(
            parse("'quoted: not a map'\n").unwrap().to_json(),
            json!("quoted: not a map")
        );
    }

    #[test]
    fn root_sequence_document() {
        let doc = parse("- 1\n- 2\n").unwrap();
        assert_eq!(doc.to_json(), json!([1, 2]));
    }

    #[test]
    fn quoted_keys() {
        let doc = parse("'C.order': 1\n\"with space\": 2\n").unwrap();
        assert_eq!(doc.get("C.order").unwrap().to_json(), json!(1));
        assert_eq!(doc.get("with space").unwrap().to_json(), json!(2));
    }

    #[test]
    fn value_with_colon_no_space_is_scalar() {
        let doc = parse("url: redis://localhost:6379\n").unwrap();
        assert_eq!(
            doc.get("url").unwrap().to_json(),
            json!("redis://localhost:6379")
        );
    }

    #[test]
    fn line_numbers_recorded() {
        let doc = parse("a: 1\nb:\n  c: 2\n").unwrap();
        assert_eq!(doc.get("a").unwrap().line, 1);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().line, 3);
    }

    #[test]
    fn annotation_on_seq_item() {
        let doc = parse("xs:\n  - a # +kr: external\n  - b\n").unwrap();
        let items = doc.get("xs").unwrap().items().unwrap();
        assert_eq!(items[0].annotations, vec!["external".to_string()]);
        assert!(items[1].annotations.is_empty());
    }

    #[test]
    fn float_detection_is_conservative() {
        assert!(looks_like_float("1.5"));
        assert!(looks_like_float("-0.25"));
        assert!(looks_like_float("2e10"));
        assert!(looks_like_float("3.1e-4"));
        assert!(!looks_like_float("1.2.3"));
        assert!(!looks_like_float("e5"));
        assert!(!looks_like_float("1-2"));
        assert!(!looks_like_float("."));
        assert!(!looks_like_float("v1"));
    }
}
