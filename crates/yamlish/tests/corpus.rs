//! Corpus round-trip: every real spec shipped under `crates/apps/assets`
//! (schemas, DXGs, and the Kubernetes-style deployment manifests) must
//! survive parse → emit → parse with structure preserved, and the emitted
//! form must carry every `# +kr:` semantic annotation — those comments
//! are load-bearing (they mark integrator-filled fields), so losing one
//! in a rewrite would silently change a schema's meaning.

use knactor_yamlish::{parse, to_string, Node, Yaml};
use std::path::{Path, PathBuf};

fn corpus_files() -> Vec<PathBuf> {
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/assets");
    let mut files = Vec::new();
    let mut stack = vec![assets];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read assets dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "yaml") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn count_annotations(node: &Node) -> usize {
    let own = node.annotations.len();
    own + match &node.yaml {
        Yaml::Scalar(_) => 0,
        Yaml::Seq(items) => items.iter().map(count_annotations).sum(),
        Yaml::Map(entries) => entries.iter().map(|(_, v)| count_annotations(v)).sum(),
    }
}

/// Trailing `# +kr:` comments in the raw source (full-line comments never
/// attach to a node, so they are excluded from the comparison).
fn count_source_annotations(text: &str) -> usize {
    text.lines()
        .filter(|line| !line.trim_start().starts_with('#'))
        .filter(|line| line.contains("# +kr:"))
        .count()
}

#[test]
fn corpus_roundtrips_with_structure_and_annotations() {
    let files = corpus_files();
    assert!(
        files.len() >= 9,
        "expected the full spec corpus, found only {files:?}"
    );
    let mut annotated_files = 0usize;
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read spec");
        let name = path.file_name().unwrap().to_string_lossy();
        let node = parse(&text).unwrap_or_else(|e| panic!("{name}: does not parse: {e}"));

        // Every trailing +kr: comment in the source is attached somewhere
        // in the tree — the parser dropped none of them.
        let in_tree = count_annotations(&node);
        let in_source = count_source_annotations(&text);
        assert_eq!(
            in_tree, in_source,
            "{name}: {in_source} trailing +kr: comments in source, {in_tree} in tree"
        );
        if in_tree > 0 {
            annotated_files += 1;
        }

        // parse ∘ emit ∘ parse preserves structure AND annotations
        // (structurally_eq compares annotations node-by-node).
        let emitted = to_string(&node);
        let reparsed =
            parse(&emitted).unwrap_or_else(|e| panic!("{name}: emitted form does not parse: {e}"));
        assert!(
            node.structurally_eq(&reparsed),
            "{name}: round-trip changed the tree\n--- emitted ---\n{emitted}"
        );

        // And a second rewrite is a fixpoint: emit is stable.
        assert_eq!(emitted, to_string(&reparsed), "{name}: emit not stable");
    }
    assert!(
        annotated_files >= 4,
        "corpus should include +kr:-annotated schemas, found {annotated_files}"
    );
}

#[test]
fn corpus_annotations_survive_a_programmatic_edit() {
    // The rewrite workflow the annotations exist for: load a schema, add
    // a field, write it back — the external markers must still be there.
    let assets = Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/assets");
    let text = std::fs::read_to_string(assets.join("payment_schema.yaml")).unwrap();
    let node = parse(&text).unwrap();
    let mut entries = node.entries().unwrap().to_vec();
    entries.push(("note".to_string(), Node::scalar("added by test")));
    let edited = Node::map(entries);
    let reparsed = parse(&to_string(&edited)).unwrap();
    assert_eq!(
        count_annotations(&reparsed),
        count_source_annotations(&text)
    );
    assert!(reparsed.get("note").is_some());
    assert_eq!(
        reparsed.get("amount").unwrap().annotations,
        vec!["external".to_string()]
    );
}
