//! Two independent integrators composing the same application: the
//! retail Cast (Fig. 6) and a notifications Cast added later by a
//! different team, with no coordination beyond the published schemas —
//! the paper's §5 "composition by non-developers" scenario.

use knactor::apps::retail::knactor_app::{self, RetailOptions};
use knactor::apps::retail::sample_order;
use knactor::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

#[tokio::test]
async fn notifications_integrator_composes_without_touching_services() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = knactor_app::deploy(Arc::clone(&api), RetailOptions::default())
        .await
        .unwrap();

    // A second integrator arrives later, owned by another team. It knows
    // only the Checkout and Email store schemas.
    let spec =
        std::fs::read_to_string(knactor::apps::crate_file("assets/retail_email_dxg.yaml")).unwrap();
    let mut bindings = BTreeMap::new();
    bindings.insert("C".to_string(), CastBinding::correlated("checkout/state"));
    bindings.insert("E".to_string(), CastBinding::correlated("email/state"));
    let notifications = Cast::new(Arc::clone(&api))
        .spawn(CastConfig {
            name: "notifications".into(),
            dxg: Dxg::parse(&spec).unwrap(),
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        })
        .await
        .unwrap();

    // An order flows through the primary composition…
    app.place_order("notif-1", sample_order(200.0), Duration::from_secs(10))
        .await
        .unwrap();

    // …and the notifications integrator reacts to its completion: the
    // Email knactor receives a notify request, its reconciler sends the
    // mail and logs it.
    let sent = knactor::testkit::await_object_state(
        &api,
        "email/state",
        "notif-1",
        Duration::from_secs(10),
        |v| v.get("sentAt").map(|s| !s.is_null()).unwrap_or(false),
    )
    .await
    .expect("email notification never materialized");
    assert_eq!(
        sent["notify"],
        serde_json::json!("2570 Soda Hall, Berkeley CA")
    );
    let sent_log =
        knactor::testkit::await_log_records(&api, "email/sent", 1, Duration::from_secs(10))
            .await
            .unwrap();
    assert_eq!(sent_log.len(), 1);
    assert_eq!(sent_log[0].fields["order"], serde_json::json!("notif-1"));

    // The notifications DXG is statically clean and diffable.
    let dxg = Dxg::parse(&spec).unwrap();
    assert!(!knactor::dxg::analyze::analyze(&dxg).has_errors());

    notifications.shutdown().await;
    app.shutdown().await;
}
