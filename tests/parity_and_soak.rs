//! Cross-paradigm parity (the two composition styles must agree on
//! business outcomes) and behaviour under churn (reconfiguration while
//! orders are in flight).

use knactor::apps::retail::knactor_app::{self, RetailOptions};
use knactor::apps::retail::rpc_app::{serve_providers, CheckoutRpc};
use knactor::apps::retail::sample_order;
use knactor::apps::smarthome::{knactor_app as home_kn, lamp_kwh, pubsub_app};
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// The RPC and Knactor retail flows must compute identical shipment
/// methods and shipping costs for the same orders.
#[tokio::test]
async fn retail_parity_across_paradigms() {
    // RPC side.
    let server = serve_providers(Duration::ZERO).await.unwrap();
    let checkout = CheckoutRpc::connect(server.local_addr().unwrap())
        .await
        .unwrap();

    // Knactor side.
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = knactor_app::deploy(Arc::clone(&api), RetailOptions::default())
        .await
        .unwrap();

    for (i, cost) in [40.0, 999.0, 1000.0, 1001.0, 5000.0].iter().enumerate() {
        let order = sample_order(*cost);
        let rpc_result = checkout.place_order(&order).await.unwrap();
        let key = format!("parity-{i}");
        let kn_result = app
            .place_order(&key, order, Duration::from_secs(10))
            .await
            .unwrap();
        let shipment = api
            .get("shipping/state".into(), key.as_str().into())
            .await
            .unwrap();
        assert_eq!(
            shipment.value["method"].as_str().unwrap(),
            rpc_result.method,
            "method must agree at cost {cost}"
        );
        let kn_cost = kn_result["order"]["shippingCost"].as_f64().unwrap();
        assert!(
            (kn_cost - rpc_result.shipping_cost).abs() < 1e-9,
            "shippingCost must agree at cost {cost}: {kn_cost} vs {}",
            rpc_result.shipping_cost
        );
    }
    server.shutdown().await;
    app.shutdown().await;
}

/// The Pub/Sub and Knactor smart homes must agree on lamp behaviour and
/// per-activation energy.
#[tokio::test]
async fn smarthome_parity_across_paradigms() {
    // Pub/Sub side. Change-notification barrier, not a sleep/poll loop:
    // the predicate is re-checked whenever a service mutates state.
    let pubsub = pubsub_app::deploy(8.0);
    pubsub.sense_motion(true);
    pubsub
        .wait_for(Duration::from_secs(5), |s| s.lamp_brightness == 8.0)
        .await
        .expect("pubsub lamp never reached target brightness");

    // Knactor side.
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("home"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = home_kn::deploy(Arc::clone(&api)).await.unwrap();
    app.sense_motion(true).await.unwrap();
    app.wait_for_brightness(8.0, Duration::from_secs(5))
        .await
        .unwrap();

    // Same brightness, same energy model. Barrier on the house store's
    // revision stream: the motion-triggered activation must accrue at
    // least one lamp activation's worth of energy. (The knactor lamp may
    // report the initial brightness=0 reading first — energy exists but
    // is still zero — so the predicate waits for the accrued value, not
    // mere presence.)
    let pubsub_brightness = pubsub.state.lock().lamp_brightness;
    assert_eq!(pubsub_brightness, app.lamp_brightness().await.unwrap());
    let expected_kwh = lamp_kwh(8.0);
    knactor::testkit::await_store_state(&api, "house/config", Duration::from_secs(5), |_, v| {
        v.get("energy")
            .and_then(serde_json::Value::as_f64)
            .is_some_and(|e| e >= expected_kwh - 1e-9)
    })
    .await
    .expect("knactor energy never reached the expected kWh");
    // Same barrier on the pub/sub side: House accrues energy one hop
    // after the lamp applies brightness, so a bare assert here races.
    pubsub
        .wait_for(Duration::from_secs(5), |s| {
            s.house_energy_total >= expected_kwh
        })
        .await
        .expect("pubsub energy never reached the expected kWh");

    pubsub.shutdown().await;
    app.shutdown().await;
}

/// Reconfiguring the integrator while orders are flowing loses nothing:
/// every order completes, under whichever policy version saw it.
#[tokio::test]
async fn reconfigure_under_load_loses_no_orders() {
    let (_object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("retail"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = Arc::new(
        knactor_app::deploy(Arc::clone(&api), RetailOptions::default())
            .await
            .unwrap(),
    );

    // Producer: 30 orders, trickled in.
    let producer_api = Arc::clone(&api);
    let producer = tokio::spawn(async move {
        for i in 0..30 {
            producer_api
                .create(
                    "checkout/state".into(),
                    format!("soak-{i}").as_str().into(),
                    sample_order(1500.0),
                )
                .await
                .unwrap();
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    });

    // Meanwhile: three policy reconfigurations mid-stream. Each waits on
    // a revision barrier — order `k` committed in the checkout store —
    // instead of a fixed sleep, so every change verifiably lands while
    // the producer is still trickling orders in.
    let spec =
        std::fs::read_to_string(knactor::apps::crate_file("assets/retail_dxg.yaml")).unwrap();
    for (after_order, threshold) in [(4, 2000), (12, 500), (20, 1000)] {
        let gate = format!("soak-{after_order}");
        knactor::testkit::await_object_state(
            &api,
            "checkout/state",
            gate.as_str(),
            Duration::from_secs(30),
            |v| !v["order"].is_null(),
        )
        .await
        .unwrap_or_else(|e| panic!("producer never committed {gate}: {e}"));
        let new_spec = spec.replace(
            "C.order.cost > 1000",
            &format!("C.order.cost > {threshold}"),
        );
        let report = app.apply_dxg(Dxg::parse(&new_spec).unwrap()).await.unwrap();
        // A threshold tweak is an expression-only change to the S edge:
        // nothing restarts.
        assert!(
            report.spawned.is_empty() && report.stopped.is_empty(),
            "{report:?}"
        );
    }
    producer.await.unwrap();

    // Every order completes (trackingID present): barrier on each
    // order's commit in the checkout store's revision stream instead of
    // polling reads. The watch replays history, so orders that finished
    // before we look are found just as reliably as in-flight ones.
    for i in 0..30 {
        let key = format!("soak-{i}");
        knactor::testkit::await_object_state(
            &api,
            "checkout/state",
            key.as_str(),
            Duration::from_secs(30),
            |v| !v["order"]["trackingID"].is_null(),
        )
        .await
        .unwrap_or_else(|e| panic!("order {key} never completed after reconfigurations: {e}"));
        // Whatever policy version handled it, the method is one of the
        // two valid outcomes.
        let shipment = api
            .get("shipping/state".into(), key.as_str().into())
            .await
            .unwrap();
        let m = shipment.value["method"].clone();
        assert!(m == json!("air") || m == json!("ground"), "{key}: {m}");
    }
    Arc::try_unwrap(app)
        .ok()
        .expect("sole owner")
        .shutdown()
        .await;
}
