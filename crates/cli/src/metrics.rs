//! `knactorctl metrics` — scrape a live exchange and render its registry.
//!
//! Connects over the knactor-net wire, sends a `Metrics` request, and
//! prints a sorted table: counters and gauges first, then histograms with
//! p50/p95/p99/max quantiles. `--watch` re-scrapes every 2 seconds;
//! `--prom` dumps the raw Prometheus text exposition instead (what a
//! Prometheus scrape job would ingest).

use knactor_net::TcpClient;
use knactor_rbac::Subject;
use knactor_types::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::process::ExitCode;
use std::time::Duration;

pub fn run(addr: &str, watch: bool, prom: bool) -> ExitCode {
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("invalid address {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rt = match tokio::runtime::Builder::new_current_thread()
        .enable_all()
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("cannot start runtime: {e}");
            return ExitCode::FAILURE;
        }
    };
    rt.block_on(async move {
        loop {
            let snapshot = match scrape(addr).await {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("scrape failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if prom {
                print!("{}", snapshot.to_prometheus());
            } else {
                if watch {
                    // ANSI clear + home, like `watch(1)`.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_table(&snapshot));
            }
            if !watch {
                return ExitCode::SUCCESS;
            }
            tokio::time::sleep(Duration::from_secs(2)).await;
        }
    })
}

async fn scrape(addr: std::net::SocketAddr) -> knactor_types::Result<MetricsSnapshot> {
    let client = TcpClient::connect(addr, Subject::operator("knactorctl")).await?;
    use knactor_net::ExchangeApi;
    client.metrics().await
}

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", pairs.join(","))
}

fn ms(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{:.3}", s * 1e3),
        None => "-".to_string(),
    }
}

fn histogram_row(h: &HistogramSnapshot) -> String {
    format!(
        "{:<58} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        format!("{}{}", h.name, label_suffix(&h.labels)),
        h.count,
        ms(h.p50()),
        ms(h.p95()),
        ms(h.p99()),
        ms(h.max_seconds()),
    )
}

/// Sorted, aligned, human-first rendering of a snapshot.
pub fn render_table(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str(&format!("{:<58} {:>12}\n", "COUNTER", "VALUE"));
        for c in &snapshot.counters {
            out.push_str(&format!(
                "{:<58} {:>12}\n",
                format!("{}{}", c.name, label_suffix(&c.labels)),
                c.value
            ));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str(&format!("\n{:<58} {:>12}\n", "GAUGE", "VALUE"));
        for g in &snapshot.gauges {
            out.push_str(&format!(
                "{:<58} {:>12}\n",
                format!("{}{}", g.name, label_suffix(&g.labels)),
                g.value
            ));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(&format!(
            "\n{:<58} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "HISTOGRAM", "COUNT", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)"
        ));
        for h in &snapshot.histograms {
            out.push_str(&histogram_row(h));
        }
    }
    if out.is_empty() {
        out.push_str("no metrics registered\n");
    }
    out
}
