//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! value tree: `Value`/`Number`/`Map` live in `serde` and are re-exported
//! here under their usual names, together with the string/byte entry
//! points and the `json!` macro.
#![allow(clippy::all)]

pub use serde::{Error, Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::ser::Serialize;

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::write_json(&value.serialize_value()))
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Append the JSON text of `value` to `out`, reusing its allocation.
/// Hot serialization paths (framing, the WAL) keep one scratch buffer per
/// connection/log instead of allocating a fresh string per message.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<()> {
    serde::write_json_into(out, &value.serialize_value());
    Ok(())
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let v = serde::parse_json(s)?;
    T::deserialize_value(&v)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Construct a [`Value`] from a JSON-like literal.
///
/// Token-tree muncher in the style of the real `serde_json::json!`:
/// arrays and objects accumulate elements token-by-token so nested
/// `{...}`/`[...]` literals (which are not valid Rust expressions)
/// work, while interpolated Rust expressions go through [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_internal!(@object __map () ($($tt)+));
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate finished elements in [..], munch the rest ----

    // Done.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    // Next element is a complete literal/structure followed by ',' or end.
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($arr)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($obj)*}),] $($($rest)*)?)
    };
    // General expression element: everything up to a top-level comma.
    (@array [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($next),] $($($rest)*)?)
    };

    // ---- objects: @object <map> (<partial key>) (<remaining tokens>) ----

    // Done.
    (@object $map:ident () ()) => {};
    // Key complete (saw ':'): value is a structural literal.
    (@object $map:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!(null));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    (@object $map:ident ($($key:tt)+) (: true $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!(true));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    (@object $map:ident ($($key:tt)+) (: false $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!(false));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    (@object $map:ident ($($key:tt)+) (: [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!([$($arr)*]));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    (@object $map:ident ($($key:tt)+) (: {$($obj:tt)*} $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!({$($obj)*}));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    // Key complete: value is a general expression up to a top-level comma.
    (@object $map:ident ($($key:tt)+) (: $value:expr $(, $($rest:tt)*)?)) => {
        $map.insert($crate::json_internal!(@key $($key)+), $crate::json!($value));
        $crate::json_internal!(@object $map () ($($($rest)*)?));
    };
    // Still accumulating key tokens.
    (@object $map:ident ($($key:tt)*) ($kt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $map ($($key)* $kt) ($($rest)*));
    };

    // Keys: string literals or parenthesized expressions.
    (@key $lit:literal) => { $lit };
    (@key ($e:expr)) => { $e };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 5;
        let v = json!({
            "null": null,
            "arr": [1, 2.5, "x", {"nested": true}, [null]],
            "num": n,
            "expr": n + 1,
            "s": "hi",
        });
        assert_eq!(v["null"], Value::Null);
        assert_eq!(v["arr"][0], json!(1));
        assert_eq!(v["arr"][3]["nested"], json!(true));
        assert_eq!(v["num"], json!(5));
        assert_eq!(v["expr"], json!(6));
        assert_eq!(to_string(&v).unwrap(), serde::write_json(&v));
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(json!({}), Value::Object(Map::new()));
    }

    #[test]
    fn int_float_distinction() {
        assert_ne!(json!(1), json!(1.0));
        assert_eq!(to_string(&json!(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(1)).unwrap(), "1");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, json!(1.0));
    }

    #[test]
    fn struct_free_roundtrip() {
        let v = json!({"a": [1, {"b": null}], "c": "x\ny"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let bytes = to_vec(&v).unwrap();
        let back2: Value = from_slice(&bytes).unwrap();
        assert_eq!(v, back2);
    }
}
