//! Zipf-distributed key selection.
//!
//! Web-scale key popularity is heavily skewed — a handful of hot carts,
//! orders, and device states absorb most of the traffic — and a load
//! harness that samples keys uniformly misses every hot-key effect
//! (watch fan-out amplification, OCC conflict pile-ups, cache-friendly
//! reads). The classic model is the Zipfian distribution used by YCSB:
//! key rank `i` (0-based) gets weight `1 / (i + 1)^theta`.
//!
//! The sampler precomputes the normalized cumulative distribution once
//! (`O(n)` setup) and answers each sample with a binary search over it
//! (`O(log n)`), driven by a caller-supplied uniform draw so the whole
//! generator stays deterministic under a seed.

/// A precomputed Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with skew `theta`.
    ///
    /// `theta = 0` degenerates to uniform; YCSB's default skew is
    /// `0.99`. Panics when `n == 0` (an empty keyspace cannot be
    /// sampled) or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty keyspace");
        assert!(theta >= 0.0, "negative zipf skew");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0_f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end: a unit
        // draw of 0.999999... must still land inside the table.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Map a uniform draw in `[0, 1)` to a rank. Rank 0 is the hottest.
    pub fn sample(&self, unit: f64) -> usize {
        let u = unit.clamp(0.0, 1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank` (for tests checking the sampler
    /// against theory).
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        for rank in 0..10 {
            assert!((z.mass(rank) - 0.1).abs() < 1e-9, "rank {rank}");
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 0.99);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(50));
        // The hot head dominates: rank 0 takes a double-digit share.
        assert!(z.mass(0) > 0.1);
    }

    #[test]
    fn sample_covers_and_respects_bounds() {
        let z = Zipf::new(7, 0.99);
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.9999999), 6);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            assert!(z.sample(u) < 7);
        }
    }
}
