//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements `BytesMut` over a `Vec<u8>` with a consumed-prefix offset so
//! `advance`/`split_to` are cheap, plus the `Buf`/`BufMut` trait subset the
//! framing layer and tokio's `read_buf` rely on.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor trait (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn remaining_mut(&self) -> usize {
        usize::MAX
    }
    fn has_remaining_mut(&self) -> bool {
        self.remaining_mut() > 0
    }
}

/// Growable byte buffer with an amortized-O(1) consumed prefix.
#[derive(Clone, Default, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut {
            buf: Vec::new(),
            start: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity() - self.start
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.as_slice()[..at].to_vec();
        self.start += at;
        self.maybe_compact();
        BytesMut {
            buf: head,
            start: 0,
        }
    }

    pub fn freeze(self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn maybe_compact(&mut self) {
        // Reclaim the consumed prefix once it dominates the allocation.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.compact();
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
        self.maybe_compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.buf[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.as_slice())
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for BytesMut {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            buf: src.to_vec(),
            start: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf, start: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"abcdef");
        assert_eq!(b.len(), 6);
        b.advance(1);
        let head = b.split_to(2);
        assert_eq!(&head[..], b"bc");
        assert_eq!(&b[..], b"def");
        assert_eq!(b[0], b'd');
    }
}
